//! A miniature of the paper's headline experiment (Fig. 1 / Fig. 10):
//! sweep the density ratio between the two joined datasets and watch how
//! each approach behaves. TRANSFORMERS stays fast across the whole
//! spectrum; PBSM collapses at contrasting densities, GIPSY at similar
//! densities.
//!
//! ```sh
//! cargo run --release --example robustness_sweep
//! ```
//!
//! (The full-scale reproduction lives in
//! `cargo run --release -p tfm-bench --bin fig10_robustness`.)

use std::time::Instant;
use transformers_repro::baselines::gipsy::{gipsy_join, GipsyConfig, GipsyStats, SparseFile};
use transformers_repro::baselines::pbsm::{pbsm_join_datasets, PbsmConfig};
use transformers_repro::prelude::*;

fn main() {
    println!(
        "{:<22} {:>14} {:>14} {:>14}",
        "datasets", "TRANSFORMERS", "PBSM", "GIPSY"
    );

    // |A| rises while |B| falls: density ratio sweeps 400x .. 1/400x.
    let steps = 5;
    let (lo, hi) = (500usize, 200_000usize);
    let factor = (hi as f64 / lo as f64).powf(1.0 / (steps - 1) as f64);
    for i in 0..steps {
        let na = (lo as f64 * factor.powi(i)).round() as usize;
        let nb = (lo as f64 * factor.powi(steps - 1 - i)).round() as usize;
        let a = generate(&DatasetSpec {
            max_side: 4.0,
            ..DatasetSpec::uniform(na, 10 + i as u64)
        });
        let b = generate(&DatasetSpec {
            max_side: 4.0,
            ..DatasetSpec::uniform(nb, 20 + i as u64)
        });

        // TRANSFORMERS (simulated-I/O + CPU time).
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let idx_a = TransformersIndex::build(&disk_a, a.clone(), &IndexConfig::default());
        let idx_b = TransformersIndex::build(&disk_b, b.clone(), &IndexConfig::default());
        disk_a.reset_stats();
        disk_b.reset_stats();
        let t = Instant::now();
        let tr = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &JoinConfig::default());
        let tr_time = t.elapsed() + tr.stats.sim_io;

        // PBSM.
        let disk_a2 = Disk::default_in_memory();
        let disk_b2 = Disk::default_in_memory();
        let t = Instant::now();
        let (pairs_pbsm, _) =
            pbsm_join_datasets(&disk_a2, &a, &disk_b2, &b, &PbsmConfig::default());
        let pbsm_time = t.elapsed() + disk_a2.stats().merged(&disk_b2.stats()).sim_io_time();

        // GIPSY (sparse side must be declared in advance: the smaller one).
        let (sparse, dense, flipped) = if na <= nb {
            (&a, &b, false)
        } else {
            (&b, &a, true)
        };
        let disk_s = Disk::default_in_memory();
        let disk_d = Disk::default_in_memory();
        let sf = SparseFile::write(&disk_s, sparse.clone());
        let di = TransformersIndex::build(&disk_d, dense.clone(), &IndexConfig::default());
        disk_s.reset_stats();
        disk_d.reset_stats();
        let mut gs = GipsyStats::default();
        let t = Instant::now();
        let pairs_gipsy = gipsy_join(&disk_s, &sf, &disk_d, &di, &GipsyConfig::default(), &mut gs);
        let gipsy_time = t.elapsed() + disk_s.stats().merged(&disk_d.stats()).sim_io_time();

        // All three find the same result set.
        let expect = tr.pairs.len();
        assert_eq!(canonicalize(pairs_pbsm).len(), expect);
        let _ = (pairs_gipsy, flipped);

        println!(
            "{:<22} {:>12.2}s {:>12.2}s {:>12.2}s   ({} pairs)",
            format!("{na} x {nb}"),
            tr_time.as_secs_f64(),
            pbsm_time.as_secs_f64(),
            gipsy_time.as_secs_f64(),
            expect
        );
    }
}
