//! Synapse detection on the neuroscience surrogate — the paper's motivating
//! application (§II-B): axons and dendrites of a brain model are spatially
//! joined, and a synapse is placed wherever an axon intersects a dendrite.
//!
//! ```sh
//! cargo run --release --example synapse_detection
//! ```

use transformers_repro::prelude::*;

fn main() {
    // 60 % axons / 40 % dendrites, as in the paper's combined dataset.
    // Axons concentrate near the top of the volume, dendrites lower —
    // similar spatial extent, divergent distributions (paper Fig. 3).
    let total = 120_000;
    let (axons, dendrites) = neuro::axon_dendrite_pair(total, 42);
    println!(
        "brain-model surrogate: {} axon segments, {} dendrite segments",
        axons.len(),
        dendrites.len()
    );

    let mean_z =
        |v: &[SpatialElement]| v.iter().map(|e| e.mbb.center().z).sum::<f64>() / v.len() as f64;
    println!(
        "mean z: axons {:.0} µm, dendrites {:.0} µm (skewed distributions)",
        mean_z(&axons),
        mean_z(&dendrites)
    );

    let disk_a = Disk::default_in_memory();
    let disk_d = Disk::default_in_memory();
    let idx_a = TransformersIndex::build(&disk_a, axons, &IndexConfig::default());
    let idx_d = TransformersIndex::build(&disk_d, dendrites, &IndexConfig::default());

    disk_a.reset_stats();
    disk_d.reset_stats();
    let outcome = transformers_join(&idx_a, &disk_a, &idx_d, &disk_d, &JoinConfig::default());

    println!("\ndetected {} candidate synapses", outcome.pairs.len());
    println!(
        "join: {} pages read, {} element tests, {} transformations",
        outcome.stats.pages_read,
        outcome.stats.mem.element_tests,
        outcome.stats.transformations(),
    );

    // Where do synapses form? Histogram over z — they should concentrate in
    // the overlap band between the axon and dendrite distributions.
    let mut pool = BufferPool::with_default_capacity(&disk_a);
    let mut histogram = [0usize; 10];
    let mut centers = std::collections::HashMap::new();
    for unit in idx_a.units() {
        for e in idx_a.read_unit(&mut pool, unit.id) {
            centers.insert(e.id, e.mbb.center().z);
        }
    }
    for (axon_id, _) in &outcome.pairs {
        let z = centers[axon_id];
        let bucket = ((z / 100.0) as usize).min(9);
        histogram[bucket] += 1;
    }
    println!("\nsynapse distribution along z (0..1000):");
    let max = histogram.iter().copied().max().unwrap_or(1).max(1);
    for (i, count) in histogram.iter().enumerate() {
        let bar = "#".repeat(count * 50 / max);
        println!("  {:>4}-{:<4} {:>7} {bar}", i * 100, (i + 1) * 100, count);
    }
}
