//! Quickstart: index two datasets and join them with TRANSFORMERS.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use transformers_repro::prelude::*;

fn main() {
    // Two synthetic datasets with contrasting local densities: a handful of
    // dense clusters against a uniform background (the situation the paper
    // targets).
    let clustered = generate(&DatasetSpec {
        max_side: 4.0,
        ..DatasetSpec::with_distribution(
            30_000,
            Distribution::MassiveCluster {
                clusters: 5,
                elements_per_cluster: 4_000,
            },
            7,
        )
    });
    let uniform = generate(&DatasetSpec {
        max_side: 4.0,
        ..DatasetSpec::uniform(30_000, 8)
    });

    // Each dataset lives on its own (simulated) disk and is indexed
    // independently — indexes are reusable across joins.
    let disk_a = Disk::default_in_memory();
    let disk_b = Disk::default_in_memory();
    let idx_a = TransformersIndex::build(&disk_a, clustered, &IndexConfig::default());
    let idx_b = TransformersIndex::build(&disk_b, uniform, &IndexConfig::default());
    println!(
        "indexed: A = {} elements / {} units / {} nodes; B = {} elements / {} units / {} nodes",
        idx_a.len(),
        idx_a.units().len(),
        idx_a.nodes().len(),
        idx_b.len(),
        idx_b.units().len(),
        idx_b.nodes().len(),
    );

    disk_a.reset_stats();
    disk_b.reset_stats();

    // The join adapts its strategy (guide/follower roles) and data layout
    // (node -> unit -> element pivots) to the local density ratio.
    let outcome = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &JoinConfig::default());
    let stats = &outcome.stats;

    println!("\nresult: {} intersecting pairs", outcome.pairs.len());
    println!("pages read:              {}", stats.pages_read);
    println!("element tests:           {}", stats.mem.element_tests);
    println!("metadata comparisons:    {}", stats.metadata_tests);
    println!(
        "transformations:         {} role, {} node->unit, {} unit->element",
        stats.role_transformations,
        stats.layout_transformations,
        stats.element_layout_transformations
    );
    println!(
        "time: {:.1} ms simulated I/O + {:.1} ms CPU join + {:.1} ms exploration overhead",
        stats.sim_io.as_secs_f64() * 1e3,
        stats.join_cpu.as_secs_f64() * 1e3,
        stats.exploration_overhead.as_secs_f64() * 1e3,
    );

    if let Some((a, b)) = outcome.pairs.first() {
        println!("\nfirst pair: element {a} of A intersects element {b} of B");
    }
}
