//! Index reuse — the amortization argument of §VII-C2.
//!
//! PBSM partitions both datasets *together* (its grid depends on the
//! combination), so its partitions cannot be reused for a different join.
//! TRANSFORMERS indexes each dataset independently: an index built once
//! joins against any number of other indexed datasets, amortizing the
//! indexing cost.
//!
//! ```sh
//! cargo run --release --example index_reuse
//! ```

use std::time::Instant;
use transformers_repro::prelude::*;

fn main() {
    // One reference dataset R, joined against three different datasets.
    let r = generate(&DatasetSpec {
        max_side: 4.0,
        ..DatasetSpec::uniform(60_000, 1)
    });
    let partners: Vec<(String, Vec<SpatialElement>)> = vec![
        (
            "uniform".into(),
            generate(&DatasetSpec {
                max_side: 4.0,
                ..DatasetSpec::uniform(60_000, 2)
            }),
        ),
        (
            "dense clusters".into(),
            generate(&DatasetSpec {
                max_side: 4.0,
                ..DatasetSpec::with_distribution(
                    60_000,
                    Distribution::DenseCluster { clusters: 40 },
                    3,
                )
            }),
        ),
        (
            "massive clusters".into(),
            generate(&DatasetSpec {
                max_side: 4.0,
                ..DatasetSpec::with_distribution(
                    60_000,
                    Distribution::MassiveCluster {
                        clusters: 5,
                        elements_per_cluster: 8_000,
                    },
                    4,
                )
            }),
        ),
    ];

    // Index R once.
    let disk_r = Disk::default_in_memory();
    let t = Instant::now();
    let idx_r = TransformersIndex::build(&disk_r, r, &IndexConfig::default());
    let index_r_time = t.elapsed() + disk_r.stats().sim_io_time();
    println!(
        "indexed R once: {:.2}s ({} nodes, {} units)\n",
        index_r_time.as_secs_f64(),
        idx_r.nodes().len(),
        idx_r.units().len()
    );

    // Join R against each partner, reusing R's index every time.
    for (name, data) in partners {
        let disk_p = Disk::default_in_memory();
        let t = Instant::now();
        let idx_p = TransformersIndex::build(&disk_p, data, &IndexConfig::default());
        let index_p = t.elapsed() + disk_p.stats().sim_io_time();

        disk_r.reset_stats();
        disk_p.reset_stats();
        let t = Instant::now();
        let out = transformers_join(&idx_r, &disk_r, &idx_p, &disk_p, &JoinConfig::default());
        let join = t.elapsed() + out.stats.sim_io;

        println!(
            "R x {:<18} index partner {:.2}s + join {:.2}s -> {} pairs ({} transformations)",
            name,
            index_p.as_secs_f64(),
            join.as_secs_f64(),
            out.pairs.len(),
            out.stats.transformations()
        );
    }

    println!("\nR's indexing cost was paid once and amortized over all three joins.");
}
