//! On-page node layout.
//!
//! Leaf and inner entries are both 56 bytes, so leaves and inner nodes have
//! the same page-derived fanout:
//!
//! * leaf record: element id (`u64`) + MBB (6 × `f64`);
//! * inner entry: child page id (`u64`) + MBB (6 × `f64`).

use bytes::{Buf, BufMut};
use tfm_geom::{Aabb, Point3, SpatialElement};
use tfm_storage::PageId;

const LEAF_TAG: u8 = 1;
const INNER_TAG: u8 = 0;
const HEADER: usize = 1 + 2;
const ENTRY: usize = 56;

/// An inner-node entry: a child page and its bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeEntry {
    /// Bounding box of the child subtree.
    pub mbb: Aabb,
    /// Page id of the child node.
    pub child: PageId,
}

/// A decoded R-Tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum RtreeNode {
    /// Leaf node: the indexed elements.
    Leaf(Vec<SpatialElement>),
    /// Inner node: child entries.
    Inner(Vec<NodeEntry>),
}

/// Maximum entries per node for a page size.
pub fn capacity(page_size: usize) -> usize {
    assert!(
        page_size >= HEADER + ENTRY,
        "page size {page_size} too small for an R-Tree node"
    );
    (page_size - HEADER) / ENTRY
}

/// Encodes a leaf page.
pub fn encode_leaf(page_size: usize, elements: &[SpatialElement]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(page_size);
    encode_leaf_into(page_size, elements, &mut buf);
    buf
}

/// Encodes a leaf page into `buf` (cleared first; the build pipeline's
/// sequential path reuses one buffer across the whole level).
pub fn encode_leaf_into(page_size: usize, elements: &[SpatialElement], buf: &mut Vec<u8>) {
    assert!(elements.len() <= capacity(page_size));
    buf.clear();
    buf.reserve(page_size);
    buf.put_u8(LEAF_TAG);
    buf.put_u16_le(elements.len() as u16);
    for e in elements {
        buf.put_u64_le(e.id);
        put_aabb(buf, &e.mbb);
    }
}

/// Encodes an inner page.
#[cfg_attr(not(test), allow(dead_code))]
pub fn encode_inner(page_size: usize, entries: &[NodeEntry]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(page_size);
    encode_inner_into(page_size, entries, &mut buf);
    buf
}

/// Encodes an inner page into `buf` (cleared first; see
/// [`encode_leaf_into`]).
pub fn encode_inner_into(page_size: usize, entries: &[NodeEntry], buf: &mut Vec<u8>) {
    assert!(entries.len() <= capacity(page_size));
    buf.clear();
    buf.reserve(page_size);
    buf.put_u8(INNER_TAG);
    buf.put_u16_le(entries.len() as u16);
    for e in entries {
        buf.put_u64_le(e.child.0);
        put_aabb(buf, &e.mbb);
    }
}

impl RtreeNode {
    /// Decodes a node page.
    pub fn decode(page: &[u8]) -> Self {
        let mut buf = page;
        let tag = buf.get_u8();
        let count = buf.get_u16_le() as usize;
        if tag == LEAF_TAG {
            let mut elems = Vec::with_capacity(count);
            for _ in 0..count {
                let id = buf.get_u64_le();
                let mbb = get_aabb(&mut buf);
                elems.push(SpatialElement::new(id, mbb));
            }
            RtreeNode::Leaf(elems)
        } else {
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let child = PageId(buf.get_u64_le());
                let mbb = get_aabb(&mut buf);
                entries.push(NodeEntry { mbb, child });
            }
            RtreeNode::Inner(entries)
        }
    }
}

fn put_aabb(buf: &mut Vec<u8>, mbb: &Aabb) {
    buf.put_f64_le(mbb.min.x);
    buf.put_f64_le(mbb.min.y);
    buf.put_f64_le(mbb.min.z);
    buf.put_f64_le(mbb.max.x);
    buf.put_f64_le(mbb.max.y);
    buf.put_f64_le(mbb.max.z);
}

fn get_aabb(buf: &mut &[u8]) -> Aabb {
    let min = Point3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
    let max = Point3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
    Aabb::new(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_for_default_page() {
        assert_eq!(capacity(8192), (8192 - 3) / 56); // 146
    }

    #[test]
    fn leaf_roundtrip() {
        let elems = vec![
            SpatialElement::new(
                3,
                Aabb::new(Point3::new(0.0, 1.0, 2.0), Point3::new(3.0, 4.0, 5.0)),
            ),
            SpatialElement::new(
                9,
                Aabb::new(Point3::new(-1.0, -2.0, -3.0), Point3::new(0.0, 0.0, 0.0)),
            ),
        ];
        let page = encode_leaf(1024, &elems);
        assert_eq!(RtreeNode::decode(&page), RtreeNode::Leaf(elems));
    }

    #[test]
    fn inner_roundtrip() {
        let entries = vec![
            NodeEntry {
                mbb: Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0)),
                child: PageId(42),
            },
            NodeEntry {
                mbb: Aabb::new(Point3::new(5.0, 5.0, 5.0), Point3::new(9.0, 9.0, 9.0)),
                child: PageId(77),
            },
        ];
        let page = encode_inner(1024, &entries);
        assert_eq!(RtreeNode::decode(&page), RtreeNode::Inner(entries));
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let page = encode_leaf(128, &[]);
        assert_eq!(RtreeNode::decode(&page), RtreeNode::Leaf(vec![]));
    }

    #[test]
    #[should_panic]
    fn too_small_page_panics() {
        capacity(32);
    }
}
