//! R-Tree join algorithms.

use crate::{RTree, RtreeNode, RtreeStats};
use tfm_geom::SpatialElement;
use tfm_memjoin::{plane_sweep_join, ResultPair};
use tfm_storage::{PageId, PageReads};

/// Synchronized R-Tree traversal join (Brinkhoff et al., SIGMOD '93).
///
/// Both trees are traversed top-down in lockstep: when two inner nodes'
/// entries intersect, the corresponding subtrees are joined recursively;
/// at the leaves, elements are joined with a plane sweep (paper §VII-A:
/// "R-TREE uses the plane sweep"). When the trees have different heights,
/// the taller tree is descended first until the levels align.
///
/// Node pages are read through per-tree caches (any [`PageReads`]
/// implementor — a private `BufferPool` or a handle onto the shared
/// `SharedPageCache`), so the re-reads caused by structural overlap hit
/// the disk only when they exceed the cache — exactly the behaviour the
/// paper attributes to the R-Tree baseline.
pub fn sync_join<CA: PageReads, CB: PageReads>(
    pool_a: &mut CA,
    tree_a: &RTree,
    pool_b: &mut CB,
    tree_b: &RTree,
    stats: &mut RtreeStats,
) -> Vec<ResultPair> {
    let mut out = Vec::new();
    if tree_a.is_empty() || tree_b.is_empty() {
        return out;
    }
    stats.node_tests += 1;
    if !tree_a.root_mbb().intersects(&tree_b.root_mbb()) {
        return out;
    }
    join_rec(
        pool_a,
        tree_a.root(),
        tree_a.height(),
        pool_b,
        tree_b.root(),
        tree_b.height(),
        stats,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn join_rec<CA: PageReads, CB: PageReads>(
    pool_a: &mut CA,
    page_a: PageId,
    level_a: u32,
    pool_b: &mut CB,
    page_b: PageId,
    level_b: u32,
    stats: &mut RtreeStats,
    out: &mut Vec<ResultPair>,
) {
    // Align heights by descending the taller side against the other node's
    // bounding region (approximated by testing child MBBs against the other
    // node's children later; here we simply descend every child — the
    // intersection filter happens in the aligned case below, and unaligned
    // descent only occurs near the root).
    if level_a > level_b {
        let children = inner_entries(pool_a, page_a);
        let b_mbb = node_mbb(pool_b, page_b);
        for c in children {
            stats.node_tests += 1;
            if c.mbb.intersects(&b_mbb) {
                join_rec(
                    pool_a,
                    c.child,
                    level_a - 1,
                    pool_b,
                    page_b,
                    level_b,
                    stats,
                    out,
                );
            }
        }
        return;
    }
    if level_b > level_a {
        let children = inner_entries(pool_b, page_b);
        let a_mbb = node_mbb(pool_a, page_a);
        for c in children {
            stats.node_tests += 1;
            if c.mbb.intersects(&a_mbb) {
                join_rec(
                    pool_a,
                    page_a,
                    level_a,
                    pool_b,
                    c.child,
                    level_b - 1,
                    stats,
                    out,
                );
            }
        }
        return;
    }

    if level_a == 0 {
        // Leaf vs leaf: plane sweep.
        let elems_a = leaf_elements(pool_a, page_a);
        let elems_b = leaf_elements(pool_b, page_b);
        out.extend(plane_sweep_join(&elems_a, &elems_b, &mut stats.mem));
        return;
    }

    // Inner vs inner at the same level: pairwise child comparison.
    let children_a = inner_entries(pool_a, page_a);
    let children_b = inner_entries(pool_b, page_b);
    for ca in &children_a {
        for cb in &children_b {
            stats.node_tests += 1;
            if ca.mbb.intersects(&cb.mbb) {
                join_rec(
                    pool_a,
                    ca.child,
                    level_a - 1,
                    pool_b,
                    cb.child,
                    level_b - 1,
                    stats,
                    out,
                );
            }
        }
    }
}

fn inner_entries<C: PageReads>(pool: &mut C, page: PageId) -> Vec<crate::NodeEntry> {
    match RtreeNode::decode(&pool.page(page)) {
        RtreeNode::Inner(entries) => entries,
        RtreeNode::Leaf(_) => panic!("expected inner node at {page}"),
    }
}

fn leaf_elements<C: PageReads>(pool: &mut C, page: PageId) -> Vec<SpatialElement> {
    match RtreeNode::decode(&pool.page(page)) {
        RtreeNode::Leaf(elems) => elems,
        RtreeNode::Inner(_) => panic!("expected leaf node at {page}"),
    }
}

fn node_mbb<C: PageReads>(pool: &mut C, page: PageId) -> tfm_geom::Aabb {
    match RtreeNode::decode(&pool.page(page)) {
        RtreeNode::Leaf(elems) => tfm_geom::Aabb::union_all(elems.iter().map(|e| e.mbb)),
        RtreeNode::Inner(entries) => tfm_geom::Aabb::union_all(entries.iter().map(|e| e.mbb)),
    }
}

/// Indexed nested-loop join (paper §VIII-A): probes `tree_a` with every
/// element of `probe_side`. "Given the considerable cost of a query, this
/// approach clearly is only efficient in case A >> B" — reproduced here as
/// an ablation baseline.
pub fn indexed_nested_loop_join<C: PageReads>(
    pool_a: &mut C,
    tree_a: &RTree,
    probe_side: &[SpatialElement],
    stats: &mut RtreeStats,
) -> Vec<ResultPair> {
    let mut out = Vec::new();
    for b in probe_side {
        for a_id in tree_a.range_query(pool_a, &b.mbb, stats) {
            out.push((a_id, b.id));
        }
    }
    stats.mem.results += out.len() as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RTree;
    use tfm_datagen::{generate, DatasetSpec, Distribution};
    use tfm_memjoin::{canonicalize, nested_loop_join, JoinStats};
    use tfm_storage::{BufferPool, Disk};

    fn check_against_oracle(spec_a: DatasetSpec, spec_b: DatasetSpec) {
        let a = generate(&spec_a);
        let b = generate(&spec_b);
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let tree_a = RTree::bulk_load(&disk_a, a.clone());
        let tree_b = RTree::bulk_load(&disk_b, b.clone());
        let mut pool_a = BufferPool::with_default_capacity(&disk_a);
        let mut pool_b = BufferPool::with_default_capacity(&disk_b);
        let mut stats = RtreeStats::default();
        let got = canonicalize(sync_join(
            &mut pool_a,
            &tree_a,
            &mut pool_b,
            &tree_b,
            &mut stats,
        ));
        let mut oracle_stats = JoinStats::default();
        let expected = canonicalize(nested_loop_join(&a, &b, &mut oracle_stats));
        assert_eq!(got, expected);
        assert_eq!(stats.mem.results, expected.len() as u64);
    }

    #[test]
    fn sync_join_matches_oracle_uniform() {
        check_against_oracle(
            DatasetSpec {
                max_side: 12.0,
                ..DatasetSpec::uniform(800, 10)
            },
            DatasetSpec {
                max_side: 12.0,
                ..DatasetSpec::uniform(800, 11)
            },
        );
    }

    #[test]
    fn sync_join_matches_oracle_different_heights() {
        // Large A (multi-level), tiny B (single leaf).
        check_against_oracle(
            DatasetSpec {
                max_side: 15.0,
                ..DatasetSpec::uniform(3000, 12)
            },
            DatasetSpec {
                max_side: 30.0,
                ..DatasetSpec::uniform(40, 13)
            },
        );
        // And the mirror case.
        check_against_oracle(
            DatasetSpec {
                max_side: 30.0,
                ..DatasetSpec::uniform(40, 14)
            },
            DatasetSpec {
                max_side: 15.0,
                ..DatasetSpec::uniform(3000, 15)
            },
        );
    }

    #[test]
    fn sync_join_matches_oracle_clustered() {
        check_against_oracle(
            DatasetSpec {
                max_side: 8.0,
                ..DatasetSpec::with_distribution(
                    1000,
                    Distribution::DenseCluster { clusters: 12 },
                    16,
                )
            },
            DatasetSpec {
                max_side: 8.0,
                ..DatasetSpec::with_distribution(
                    1000,
                    Distribution::UniformCluster { clusters: 5 },
                    17,
                )
            },
        );
    }

    #[test]
    fn sync_join_empty_sides() {
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let tree_a = RTree::bulk_load(&disk_a, vec![]);
        let tree_b = RTree::bulk_load(&disk_b, generate(&DatasetSpec::uniform(100, 1)));
        let mut pool_a = BufferPool::with_default_capacity(&disk_a);
        let mut pool_b = BufferPool::with_default_capacity(&disk_b);
        let mut stats = RtreeStats::default();
        assert!(sync_join(&mut pool_a, &tree_a, &mut pool_b, &tree_b, &mut stats).is_empty());
        assert!(sync_join(&mut pool_b, &tree_b, &mut pool_a, &tree_a, &mut stats).is_empty());
    }

    #[test]
    fn inl_join_matches_oracle() {
        let a = generate(&DatasetSpec {
            max_side: 10.0,
            ..DatasetSpec::uniform(1200, 20)
        });
        let b = generate(&DatasetSpec {
            max_side: 10.0,
            ..DatasetSpec::uniform(150, 21)
        });
        let disk_a = Disk::default_in_memory();
        let tree_a = RTree::bulk_load(&disk_a, a.clone());
        let mut pool_a = BufferPool::with_default_capacity(&disk_a);
        let mut stats = RtreeStats::default();
        let got = canonicalize(indexed_nested_loop_join(
            &mut pool_a,
            &tree_a,
            &b,
            &mut stats,
        ));
        let mut oracle_stats = JoinStats::default();
        let expected = canonicalize(nested_loop_join(&a, &b, &mut oracle_stats));
        assert_eq!(got, expected);
    }
}
