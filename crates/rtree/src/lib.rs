//! Disk-based R-Tree and the synchronized-traversal join baseline.
//!
//! The paper's "R-TREE" baseline (§VII-A) is a synchronized R-Tree
//! traversal join (Brinkhoff et al., SIGMOD '93) over two R-Trees
//! bulk-loaded with STR (Leutenegger et al., ICDE '97), using plane sweep
//! as the in-memory kernel. This crate implements exactly that:
//!
//! * [`RTree`] — page-aligned nodes on a [`Disk`], STR bulk-loaded through
//!   the shared [`IndexBuildPipeline`] (so `--build-threads` parallelizes
//!   this baseline's build exactly like the TRANSFORMERS build);
//! * [`sync_join`] — the synchronized traversal;
//! * [`indexed_nested_loop_join`] — the classic INL join (paper §VIII-A),
//!   provided for completeness and as an ablation point;
//! * [`RTree::range_query`] — used by the INL join and on its own.
//!
//! The R-Tree's structural weakness the paper highlights — *overlap* between
//! sibling MBBs forcing extra reads and comparisons — emerges naturally
//! here and is visible in the `node_tests` counter of [`RtreeStats`].

#![warn(missing_docs)]

mod join;
mod node;

pub use join::{indexed_nested_loop_join, sync_join};
pub use node::{NodeEntry, RtreeNode};

use tfm_geom::{Aabb, ElementId, SpatialElement};
use tfm_memjoin::JoinStats;
use tfm_partition::IndexBuildPipeline;
use tfm_storage::{Disk, PageId, PageReads};

/// Counters for R-Tree operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RtreeStats {
    /// Node-MBB vs node-MBB (or query) intersection tests — the metadata
    /// comparisons caused by structural overlap.
    pub node_tests: u64,
    /// Element-level counters (intersection tests, results).
    pub mem: JoinStats,
}

/// A read-only, STR-bulk-loaded R-Tree whose nodes live on a [`Disk`].
#[derive(Debug)]
pub struct RTree {
    root: PageId,
    height: u32,
    len: usize,
    root_mbb: Aabb,
}

/// Bulk-load packing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Packing {
    Str,
    Hilbert,
}

/// Internal helper tying a child page to its MBB for STR packing of inner
/// levels.
#[derive(Debug, Clone)]
struct ChildRef {
    page: PageId,
    mbb: Aabb,
}

impl tfm_geom::HasMbb for ChildRef {
    fn mbb(&self) -> Aabb {
        self.mbb
    }
}

impl RTree {
    /// Bulk-loads an R-Tree over `elements` using STR.
    ///
    /// Leaf pages hold as many 56-byte element records as fit; inner pages
    /// hold (MBB, child) entries of the same size, giving the paper's
    /// page-derived fanout (≈146 for 8 KiB pages; the paper's 135 reflects
    /// its slightly larger header). Each level is written contiguously.
    pub fn bulk_load(disk: &Disk, elements: Vec<SpatialElement>) -> Self {
        Self::bulk_load_with(
            disk,
            elements,
            Packing::Str,
            &IndexBuildPipeline::sequential(),
        )
    }

    /// [`RTree::bulk_load`] on a caller-supplied build pipeline: every
    /// level's STR pass and page encoding fan out over the pipeline's
    /// workers; the tree is byte-identical at any thread count.
    pub fn bulk_load_pipelined(
        disk: &Disk,
        elements: Vec<SpatialElement>,
        pipeline: &IndexBuildPipeline,
    ) -> Self {
        Self::bulk_load_with(disk, elements, Packing::Str, pipeline)
    }

    /// Bulk-loads with Hilbert packing (Kamel & Faloutsos, CIKM '93):
    /// elements are sorted by the Hilbert value of their center and chunked
    /// into leaves. The paper notes (§VIII-A) that "Hilbert and STR perform
    /// similarly, outperforming the others on real-world data" — the
    /// `ablation/rtree_packing` bench checks that claim here.
    pub fn bulk_load_hilbert(disk: &Disk, elements: Vec<SpatialElement>) -> Self {
        Self::bulk_load_with(
            disk,
            elements,
            Packing::Hilbert,
            &IndexBuildPipeline::sequential(),
        )
    }

    fn bulk_load_with(
        disk: &Disk,
        mut elements: Vec<SpatialElement>,
        packing: Packing,
        pipeline: &IndexBuildPipeline,
    ) -> Self {
        let capacity = node::capacity(disk.page_size());
        let len = elements.len();

        if elements.is_empty() {
            let page = disk.allocate();
            disk.write_page(page, &node::encode_leaf(disk.page_size(), &[]));
            return Self {
                root: page,
                height: 0,
                len: 0,
                root_mbb: Aabb::empty(),
            };
        }

        // Leaf level: STR runs on the shared pipeline (Hilbert packing
        // keys on a space-filling curve instead and stays sequential —
        // it is the ablation variant, not the paper's default).
        let parts = match packing {
            Packing::Str => pipeline.partition(elements, capacity),
            Packing::Hilbert => {
                let universe = Aabb::union_all(elements.iter().map(|e| e.mbb));
                elements
                    .sort_by_key(|e| tfm_geom::hilbert::index_of_point(&e.mbb.center(), &universe));
                elements
                    .chunks(capacity)
                    .map(|chunk| tfm_partition::StrPartition {
                        items: chunk.to_vec(),
                        page_mbb: Aabb::union_all(chunk.iter().map(|e| e.mbb)),
                        partition_mbb: Aabb::union_all(chunk.iter().map(|e| e.mbb)),
                    })
                    .collect()
            }
        };
        let first = pipeline.pack_pages(disk, &parts, |p, buf| {
            node::encode_leaf_into(disk.page_size(), &p.items, buf)
        });
        let mut level: Vec<ChildRef> = parts
            .iter()
            .enumerate()
            .map(|(i, p)| ChildRef {
                page: PageId(first.0 + i as u64),
                mbb: p.page_mbb,
            })
            .collect();

        // Inner levels, bottom-up through the same pipeline stages.
        let mut height = 0;
        while level.len() > 1 {
            height += 1;
            let parts = pipeline.partition(level, capacity);
            let first = pipeline.pack_pages(disk, &parts, |p, buf| {
                let entries: Vec<NodeEntry> = p
                    .items
                    .iter()
                    .map(|c| NodeEntry {
                        mbb: c.mbb,
                        child: c.page,
                    })
                    .collect();
                node::encode_inner_into(disk.page_size(), &entries, buf)
            });
            level = parts
                .iter()
                .enumerate()
                .map(|(i, p)| ChildRef {
                    page: PageId(first.0 + i as u64),
                    mbb: p.page_mbb,
                })
                .collect();
        }

        Self {
            root: level[0].page,
            height,
            len,
            root_mbb: level[0].mbb,
        }
    }

    /// Number of indexed elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (0 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Root page id.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Bounding box of the whole tree.
    pub fn root_mbb(&self) -> Aabb {
        self.root_mbb
    }

    /// Returns the ids of all elements whose MBB intersects `query`.
    /// Node pages are read through `pool` (any [`PageReads`] implementor:
    /// a private `BufferPool`, a `CacheHandle`, the shared cache).
    pub fn range_query<C: PageReads>(
        &self,
        pool: &mut C,
        query: &Aabb,
        stats: &mut RtreeStats,
    ) -> Vec<ElementId> {
        let mut out = Vec::new();
        self.range_query_visit(pool, query, stats, |e| out.push(e.id));
        out
    }

    /// [`RTree::range_query`] returning the full elements instead of bare
    /// ids, so callers with a finer predicate than box intersection (e.g.
    /// the serving layer's ε-ball queries) can refine the candidates
    /// without a second lookup.
    pub fn range_query_elements<C: PageReads>(
        &self,
        pool: &mut C,
        query: &Aabb,
        stats: &mut RtreeStats,
    ) -> Vec<SpatialElement> {
        let mut out = Vec::new();
        self.range_query_visit(pool, query, stats, |e| out.push(e));
        out
    }

    /// Shared descent: calls `on_hit` for every element whose MBB
    /// intersects `query`.
    fn range_query_visit<C: PageReads>(
        &self,
        pool: &mut C,
        query: &Aabb,
        stats: &mut RtreeStats,
        mut on_hit: impl FnMut(SpatialElement),
    ) {
        if self.is_empty() {
            return;
        }
        stats.node_tests += 1;
        if !self.root_mbb.intersects(query) {
            return;
        }
        let mut stack = vec![(self.root, self.height)];
        while let Some((page, level)) = stack.pop() {
            let n = RtreeNode::decode(&pool.page(page));
            match n {
                RtreeNode::Leaf(elems) => {
                    for e in elems {
                        stats.mem.element_tests += 1;
                        if e.mbb.intersects(query) {
                            on_hit(e);
                        }
                    }
                }
                RtreeNode::Inner(entries) => {
                    for entry in entries {
                        stats.node_tests += 1;
                        if entry.mbb.intersects(query) {
                            stack.push((entry.child, level - 1));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_datagen::{generate, DatasetSpec};
    use tfm_geom::Point3;
    use tfm_storage::BufferPool;

    fn build(count: usize, seed: u64) -> (Disk, RTree, Vec<SpatialElement>) {
        let disk = Disk::default_in_memory();
        let elems = generate(&DatasetSpec::uniform(count, seed));
        let tree = RTree::bulk_load(&disk, elems.clone());
        (disk, tree, elems)
    }

    #[test]
    fn empty_tree() {
        let disk = Disk::default_in_memory();
        let tree = RTree::bulk_load(&disk, vec![]);
        assert!(tree.is_empty());
        let mut pool = BufferPool::with_default_capacity(&disk);
        let mut stats = RtreeStats::default();
        let q = Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0));
        assert!(tree.range_query(&mut pool, &q, &mut stats).is_empty());
    }

    #[test]
    fn single_leaf_tree() {
        let (disk, tree, elems) = build(50, 1);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.len(), 50);
        let mut pool = BufferPool::with_default_capacity(&disk);
        let mut stats = RtreeStats::default();
        let all = tree.range_query(&mut pool, &tree.root_mbb(), &mut stats);
        assert_eq!(all.len(), elems.len());
    }

    #[test]
    fn multi_level_tree_has_height() {
        let (_, tree, _) = build(2000, 2);
        assert!(tree.height() >= 1);
        assert!(!tree.root_mbb().is_empty());
    }

    #[test]
    fn range_query_matches_scan() {
        let (disk, tree, elems) = build(3000, 3);
        let mut pool = BufferPool::with_default_capacity(&disk);
        let mut stats = RtreeStats::default();
        let q = Aabb::new(
            Point3::new(100.0, 100.0, 100.0),
            Point3::new(400.0, 350.0, 300.0),
        );
        let mut got = tree.range_query(&mut pool, &q, &mut stats);
        got.sort_unstable();
        let mut expected: Vec<u64> = elems
            .iter()
            .filter(|e| e.mbb.intersects(&q))
            .map(|e| e.id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert!(
            stats.mem.element_tests < elems.len() as u64,
            "query should prune"
        );
    }

    #[test]
    fn pipelined_bulk_load_is_byte_identical() {
        let elems = generate(&DatasetSpec::uniform(5000, 9));
        let seq_disk = Disk::default_in_memory();
        let seq = RTree::bulk_load(&seq_disk, elems.clone());
        let dump = |d: &Disk| -> Vec<Vec<u8>> {
            (0..d.allocated_pages())
                .map(|p| d.read_page_vec(PageId(p)))
                .collect()
        };
        let seq_pages = dump(&seq_disk);
        for threads in [2, 4] {
            let disk = Disk::default_in_memory();
            let tree =
                RTree::bulk_load_pipelined(&disk, elems.clone(), &IndexBuildPipeline::new(threads));
            assert_eq!(tree.root(), seq.root(), "threads = {threads}");
            assert_eq!(tree.height(), seq.height());
            assert_eq!(tree.root_mbb(), seq.root_mbb());
            assert_eq!(dump(&disk), seq_pages, "threads = {threads}");
        }
    }

    #[test]
    fn hilbert_bulk_load_matches_str_results() {
        let elems = generate(&DatasetSpec {
            max_side: 10.0,
            ..DatasetSpec::uniform(4000, 5)
        });
        let disk_str = Disk::default_in_memory();
        let disk_hil = Disk::default_in_memory();
        let t_str = RTree::bulk_load(&disk_str, elems.clone());
        let t_hil = RTree::bulk_load_hilbert(&disk_hil, elems.clone());
        assert_eq!(t_str.len(), t_hil.len());
        assert_eq!(t_str.root_mbb(), t_hil.root_mbb());
        let q = Aabb::new(
            Point3::new(200.0, 200.0, 200.0),
            Point3::new(500.0, 600.0, 400.0),
        );
        let mut pool_s = BufferPool::with_default_capacity(&disk_str);
        let mut pool_h = BufferPool::with_default_capacity(&disk_hil);
        let mut ss = RtreeStats::default();
        let mut sh = RtreeStats::default();
        let mut rs = t_str.range_query(&mut pool_s, &q, &mut ss);
        let mut rh = t_hil.range_query(&mut pool_h, &q, &mut sh);
        rs.sort_unstable();
        rh.sort_unstable();
        assert_eq!(rs, rh);
    }

    #[test]
    fn hilbert_sync_join_matches_oracle() {
        use tfm_memjoin::{canonicalize, nested_loop_join, JoinStats};
        let a = generate(&DatasetSpec {
            max_side: 12.0,
            ..DatasetSpec::uniform(1500, 6)
        });
        let b = generate(&DatasetSpec {
            max_side: 12.0,
            ..DatasetSpec::uniform(1500, 7)
        });
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let tree_a = RTree::bulk_load_hilbert(&disk_a, a.clone());
        let tree_b = RTree::bulk_load_hilbert(&disk_b, b.clone());
        let mut pool_a = BufferPool::with_default_capacity(&disk_a);
        let mut pool_b = BufferPool::with_default_capacity(&disk_b);
        let mut stats = RtreeStats::default();
        let got = canonicalize(crate::sync_join(
            &mut pool_a,
            &tree_a,
            &mut pool_b,
            &tree_b,
            &mut stats,
        ));
        let mut s = JoinStats::default();
        assert_eq!(got, canonicalize(nested_loop_join(&a, &b, &mut s)));
    }

    #[test]
    fn range_query_outside_root_is_free() {
        let (disk, tree, _) = build(500, 4);
        let mut pool = BufferPool::with_default_capacity(&disk);
        let mut stats = RtreeStats::default();
        let q = Aabb::new(
            Point3::new(-50.0, -50.0, -50.0),
            Point3::new(-10.0, -10.0, -10.0),
        );
        assert!(tree.range_query(&mut pool, &q, &mut stats).is_empty());
        assert_eq!(stats.mem.element_tests, 0);
        assert_eq!(pool.misses(), 0);
    }
}
