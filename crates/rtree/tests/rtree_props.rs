//! Property tests for the R-Tree: range queries and the synchronized join
//! must match brute force on arbitrary inputs.

use proptest::prelude::*;
use tfm_geom::{Aabb, Point3, SpatialElement};
use tfm_memjoin::{canonicalize, nested_loop_join, JoinStats};
use tfm_rtree::{sync_join, RTree, RtreeStats};
use tfm_storage::{BufferPool, Disk};

fn arb_elems(max: usize) -> impl Strategy<Value = Vec<SpatialElement>> {
    prop::collection::vec(
        (
            0.0..200.0f64,
            0.0..200.0f64,
            0.0..200.0f64,
            0.0..15.0f64,
            0.0..15.0f64,
            0.0..15.0f64,
        ),
        0..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(id, (x, y, z, dx, dy, dz))| {
                SpatialElement::new(
                    id as u64,
                    Aabb::new(Point3::new(x, y, z), Point3::new(x + dx, y + dy, z + dz)),
                )
            })
            .collect()
    })
}

fn arb_query() -> impl Strategy<Value = Aabb> {
    (
        0.0..200.0f64,
        0.0..200.0f64,
        0.0..200.0f64,
        0.0..100.0f64,
        0.0..100.0f64,
        0.0..100.0f64,
    )
        .prop_map(|(x, y, z, dx, dy, dz)| {
            Aabb::new(Point3::new(x, y, z), Point3::new(x + dx, y + dy, z + dz))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn range_query_matches_scan(elems in arb_elems(150), query in arb_query()) {
        // Small page size forces several tree levels even on small inputs.
        let disk = Disk::in_memory(256);
        let tree = RTree::bulk_load(&disk, elems.clone());
        let mut pool = BufferPool::with_default_capacity(&disk);
        let mut stats = RtreeStats::default();
        let mut got = tree.range_query(&mut pool, &query, &mut stats);
        got.sort_unstable();
        let mut expected: Vec<u64> = elems
            .iter()
            .filter(|e| e.mbb.intersects(&query))
            .map(|e| e.id)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn sync_join_matches_oracle(a in arb_elems(100), b in arb_elems(100)) {
        let disk_a = Disk::in_memory(256);
        let disk_b = Disk::in_memory(512); // deliberately different heights
        let tree_a = RTree::bulk_load(&disk_a, a.clone());
        let tree_b = RTree::bulk_load(&disk_b, b.clone());
        let mut pool_a = BufferPool::with_default_capacity(&disk_a);
        let mut pool_b = BufferPool::with_default_capacity(&disk_b);
        let mut stats = RtreeStats::default();
        let got = canonicalize(sync_join(&mut pool_a, &tree_a, &mut pool_b, &tree_b, &mut stats));
        let mut s = JoinStats::default();
        prop_assert_eq!(got, canonicalize(nested_loop_join(&a, &b, &mut s)));
    }

    #[test]
    fn sync_join_reports_each_pair_once(a in arb_elems(80), b in arb_elems(80)) {
        let disk_a = Disk::in_memory(256);
        let disk_b = Disk::in_memory(256);
        let tree_a = RTree::bulk_load(&disk_a, a);
        let tree_b = RTree::bulk_load(&disk_b, b);
        let mut pool_a = BufferPool::with_default_capacity(&disk_a);
        let mut pool_b = BufferPool::with_default_capacity(&disk_b);
        let mut stats = RtreeStats::default();
        let got = sync_join(&mut pool_a, &tree_a, &mut pool_b, &tree_b, &mut stats);
        let n = got.len();
        prop_assert_eq!(canonicalize(got).len(), n, "duplicate pairs emitted");
    }
}
