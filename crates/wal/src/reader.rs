//! The scan side: reading segment directories back into record streams.

use crate::record::{
    decode_record, decode_segment_header, Decoded, WalRecord, SEGMENT_HEADER_BYTES,
};
use std::io;
use std::path::{Path, PathBuf};

/// Path of segment `seq` under `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.log"))
}

/// One scanned segment file.
#[derive(Debug, Clone)]
pub struct SegmentInfo {
    /// Sequence number (from the file name, verified against the header).
    pub seq: u64,
    /// The segment file.
    pub path: PathBuf,
    /// Total file bytes.
    pub bytes: u64,
    /// Offset just past the last complete, checksum-valid record — the
    /// truncation point when the segment ends in a torn tail.
    pub valid_end: u64,
}

/// Everything a directory scan learned.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// All complete records, in LSN order.
    pub records: Vec<WalRecord>,
    /// Segments in sequence order.
    pub segments: Vec<SegmentInfo>,
    /// Index into `segments` of the segment with a torn tail, if any.
    /// Scanning stops at the tear.
    pub torn: Option<usize>,
    /// Total bytes scanned.
    pub bytes_scanned: u64,
    /// Highest LSN seen (0 when the log is empty).
    pub max_lsn: u64,
    /// Highest transaction id seen (0 when the log is empty).
    pub max_txn: u64,
}

/// Scans every `wal-*.log` segment under `dir` (a missing directory reads
/// as an empty log), decoding records until the end or the first torn
/// tail. Foreign files, header/name mismatches, gaps in the segment
/// sequence and non-monotonic LSNs are hard `InvalidData` errors —
/// corruption a tear cannot explain.
pub fn scan_dir(dir: &Path) -> io::Result<ScanReport> {
    let mut report = ScanReport::default();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };
    let mut seqs: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            seqs.push((seq, entry.path()));
        }
    }
    seqs.sort();
    for (i, (seq, path)) in seqs.iter().enumerate() {
        if i > 0 && *seq != seqs[i - 1].0 + 1 {
            return Err(invalid(format!(
                "segment sequence gap: {} follows {}",
                seq,
                seqs[i - 1].0
            )));
        }
        let bytes = std::fs::read(path)?;
        report.bytes_scanned += bytes.len() as u64;
        let header_seq = decode_segment_header(&bytes);
        if header_seq != Some(*seq) {
            return Err(invalid(format!(
                "segment {} has a foreign or corrupt header (decoded {:?})",
                path.display(),
                header_seq
            )));
        }
        let mut offset = SEGMENT_HEADER_BYTES;
        let mut torn_here = false;
        while offset < bytes.len() {
            match decode_record(&bytes[offset..]) {
                Decoded::Record(record, size) => {
                    if record.lsn <= report.max_lsn {
                        return Err(invalid(format!(
                            "non-monotonic LSN {} after {} in {}",
                            record.lsn,
                            report.max_lsn,
                            path.display()
                        )));
                    }
                    report.max_lsn = record.lsn;
                    report.max_txn = report.max_txn.max(record.txn);
                    report.records.push(record);
                    offset += size;
                }
                Decoded::Torn => {
                    torn_here = true;
                    break;
                }
                Decoded::End => break,
            }
        }
        report.segments.push(SegmentInfo {
            seq: *seq,
            path: path.clone(),
            bytes: bytes.len() as u64,
            valid_end: offset as u64,
        });
        if torn_here {
            report.torn = Some(report.segments.len() - 1);
            // Record the remaining (unscanned) segments so callers can
            // detect mid-log tears, then stop.
            for (seq, path) in seqs.iter().skip(i + 1) {
                report.segments.push(SegmentInfo {
                    seq: *seq,
                    path: path.clone(),
                    bytes: std::fs::metadata(path)?.len(),
                    valid_end: SEGMENT_HEADER_BYTES as u64,
                });
            }
            break;
        }
    }
    Ok(report)
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}
