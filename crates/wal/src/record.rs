//! On-disk framing of log segments and records.
//!
//! A segment file (`wal-<seq>.log`) is a 16-byte header followed by a
//! packed sequence of records:
//!
//! ```text
//! segment  := magic u64 LE | seq u64 LE | record*
//! record   := len u32 LE | sum u64 LE | payload[len]
//! payload  := lsn u64 LE | kind u8 | txn u64 LE | body
//! body     := page u64 LE | image bytes      (kind = 1, page after-image)
//!           | (empty)                        (kind = 2, commit)
//! ```
//!
//! `sum` is 64-bit FNV-1a over the payload (the same function the
//! checksummed `FileStore` sidecar uses). A record whose frame runs past
//! the segment end, or whose checksum does not match, is a **torn tail**:
//! the incomplete suffix of the last append the process issued before it
//! died. Replay treats everything before the tear as the log and ignores
//! the tear itself — the transaction it belonged to never committed (its
//! commit record would have had to follow the torn record).

use tfm_storage::fnv1a64;

/// First 8 bytes of every segment file ("TFMWAL01", little-endian).
pub const SEGMENT_MAGIC: u64 = u64::from_le_bytes(*b"TFMWAL01");

/// Bytes of the segment header (magic + sequence number).
pub const SEGMENT_HEADER_BYTES: usize = 16;

/// Bytes of framing per record (length prefix + checksum).
pub const RECORD_FRAME_BYTES: usize = 4 + 8;

const KIND_PAGE: u8 = 1;
const KIND_COMMIT: u8 = 2;

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number (strictly increasing across the whole log).
    pub lsn: u64,
    /// Transaction the record belongs to.
    pub txn: u64,
    /// What the record carries.
    pub payload: WalPayload,
}

/// Record body variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalPayload {
    /// Full-page after-image: replaying it writes `image` to page `page`.
    Page {
        /// Target page id on the data disk.
        page: u64,
        /// The complete page bytes after the write.
        image: Vec<u8>,
    },
    /// Transaction commit marker: every record of `txn` with a smaller
    /// LSN is part of the committed state.
    Commit,
}

/// Encodes the segment header for segment `seq`.
pub fn encode_segment_header(seq: u64) -> [u8; SEGMENT_HEADER_BYTES] {
    let mut h = [0u8; SEGMENT_HEADER_BYTES];
    h[..8].copy_from_slice(&SEGMENT_MAGIC.to_le_bytes());
    h[8..].copy_from_slice(&seq.to_le_bytes());
    h
}

/// Decodes and validates a segment header; returns the sequence number.
pub fn decode_segment_header(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < SEGMENT_HEADER_BYTES {
        return None;
    }
    let magic = u64::from_le_bytes(bytes[..8].try_into().unwrap());
    if magic != SEGMENT_MAGIC {
        return None;
    }
    Some(u64::from_le_bytes(bytes[8..16].try_into().unwrap()))
}

/// Encodes one record (frame + payload) into `out`.
pub fn encode_record(record: &WalRecord, out: &mut Vec<u8>) {
    out.clear();
    // Payload first, frame prefix after (length and sum cover the payload).
    let mut payload = Vec::with_capacity(32);
    payload.extend_from_slice(&record.lsn.to_le_bytes());
    match &record.payload {
        WalPayload::Page { page, image } => {
            payload.push(KIND_PAGE);
            payload.extend_from_slice(&record.txn.to_le_bytes());
            payload.extend_from_slice(&page.to_le_bytes());
            payload.extend_from_slice(image);
        }
        WalPayload::Commit => {
            payload.push(KIND_COMMIT);
            payload.extend_from_slice(&record.txn.to_le_bytes());
        }
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Outcome of decoding the record at the start of `bytes`.
#[derive(Debug)]
pub enum Decoded {
    /// A complete, checksum-valid record followed by its total frame size.
    Record(WalRecord, usize),
    /// No more records: `bytes` is empty.
    End,
    /// A torn tail: an incomplete or checksum-failing record prefix.
    Torn,
}

/// Decodes the record at the start of `bytes` (which begins right after a
/// record boundary).
pub fn decode_record(bytes: &[u8]) -> Decoded {
    if bytes.is_empty() {
        return Decoded::End;
    }
    if bytes.len() < RECORD_FRAME_BYTES {
        return Decoded::Torn;
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
    let sum = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    let total = RECORD_FRAME_BYTES + len;
    if bytes.len() < total || len < 17 {
        return Decoded::Torn;
    }
    let payload = &bytes[RECORD_FRAME_BYTES..total];
    if fnv1a64(payload) != sum {
        return Decoded::Torn;
    }
    let lsn = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let kind = payload[8];
    let txn = u64::from_le_bytes(payload[9..17].try_into().unwrap());
    let record = match kind {
        KIND_PAGE if len >= 25 => WalRecord {
            lsn,
            txn,
            payload: WalPayload::Page {
                page: u64::from_le_bytes(payload[17..25].try_into().unwrap()),
                image: payload[25..].to_vec(),
            },
        },
        KIND_COMMIT => WalRecord {
            lsn,
            txn,
            payload: WalPayload::Commit,
        },
        // Unknown kind or malformed body: corruption at a record boundary
        // is treated like a tear (replay stops here).
        _ => return Decoded::Torn,
    };
    Decoded::Record(record, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_record(lsn: u64, txn: u64, page: u64, fill: u8) -> WalRecord {
        WalRecord {
            lsn,
            txn,
            payload: WalPayload::Page {
                page,
                image: vec![fill; 64],
            },
        }
    }

    #[test]
    fn record_roundtrip() {
        let mut buf = Vec::new();
        for r in [
            page_record(1, 10, 3, 0xAB),
            WalRecord {
                lsn: 2,
                txn: 10,
                payload: WalPayload::Commit,
            },
        ] {
            encode_record(&r, &mut buf);
            match decode_record(&buf) {
                Decoded::Record(decoded, size) => {
                    assert_eq!(decoded, r);
                    assert_eq!(size, buf.len());
                }
                other => panic!("expected record, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_frames_and_bad_sums_are_torn() {
        let mut buf = Vec::new();
        encode_record(&page_record(5, 1, 0, 0x11), &mut buf);
        // Any strict prefix is torn, not an error and not a record.
        for cut in [
            1,
            RECORD_FRAME_BYTES - 1,
            RECORD_FRAME_BYTES + 3,
            buf.len() - 1,
        ] {
            assert!(
                matches!(decode_record(&buf[..cut]), Decoded::Torn),
                "cut {cut}"
            );
        }
        // A flipped payload byte fails the checksum.
        let mut bad = buf.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        assert!(matches!(decode_record(&bad), Decoded::Torn));
        assert!(matches!(decode_record(&[]), Decoded::End));
    }

    #[test]
    fn segment_header_roundtrip() {
        let h = encode_segment_header(42);
        assert_eq!(decode_segment_header(&h), Some(42));
        assert_eq!(decode_segment_header(&h[..8]), None);
        let mut foreign = h;
        foreign[0] ^= 1;
        assert_eq!(decode_segment_header(&foreign), None);
    }
}
