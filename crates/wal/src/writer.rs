//! The append side: segmented log files, group commit, crash injection.

use crate::reader::{scan_dir, segment_path};
use crate::record::{
    encode_record, encode_segment_header, WalPayload, WalRecord, SEGMENT_HEADER_BYTES,
};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;
use tfm_storage::{PageId, RedoLog};

/// When `commit` fsyncs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Group commit: a commit whose LSN another thread's fsync already
    /// covered returns without its own fsync; otherwise one fsync makes
    /// every record appended so far durable. The default.
    #[default]
    GroupCommit,
    /// One fsync per commit, unconditionally — the ablation baseline
    /// `bench_wal` compares group commit against.
    EachCommit,
}

/// Tunables of a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the current one exceeds this many
    /// bytes (checked at record boundaries; records are never split).
    pub segment_bytes: u64,
    /// Injected fsync latency: slept while holding the sync lock before
    /// every fsync. Zero (the default) injects nothing; benchmarks use it
    /// to make group-commit batching measurable on hosts whose fsync is
    /// nearly free (tmpfs CI runners).
    pub fsync_latency: Duration,
    /// When `commit` fsyncs.
    pub sync_mode: SyncMode,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            segment_bytes: 4 << 20,
            fsync_latency: Duration::ZERO,
            sync_mode: SyncMode::GroupCommit,
        }
    }
}

/// Point-in-time writer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (page images + commit markers).
    pub records: u64,
    /// Record bytes appended, framing included (segment headers excluded).
    pub bytes: u64,
    /// fsyncs issued against segment files by commit/sync calls.
    pub fsyncs: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Live segment files.
    pub segments: u64,
}

struct Inner {
    file: File,
    seg_seq: u64,
    seg_bytes: u64,
    next_lsn: u64,
    /// Seqs of all live segments, oldest first (current one last).
    segments: Vec<u64>,
    /// Record bytes appended over the log's lifetime (crash-hook clock).
    total_bytes: u64,
    /// Crash injection: abort the process once total appended record
    /// bytes would exceed this, writing only the bytes up to it.
    crash_after_bytes: Option<u64>,
    scratch: Vec<u8>,
}

struct SyncHandle {
    file: File,
}

/// The write-ahead log: an append-only sequence of checksummed,
/// LSN-stamped records in rotating segment files under one directory.
///
/// Appends serialize on an internal lock; fsyncs serialize on a separate
/// lock so appenders never wait behind a device flush — that split is
/// what makes group commit work: while one committer holds the sync lock
/// in `fsync`, others keep appending, and the next fsync makes all of
/// them durable at once.
///
/// [`Wal`] implements [`RedoLog`], so `LoggedPages` handles write through
/// it without knowing the framing.
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    inner: Mutex<Inner>,
    sync_file: Mutex<SyncHandle>,
    /// Last appended LSN (bytes fully written to the current segment).
    appended: AtomicU64,
    /// Highest LSN known fsynced.
    durable: AtomicU64,
    next_txn: AtomicU64,
    open_txns: AtomicI64,
    records: AtomicU64,
    bytes: AtomicU64,
    fsyncs: AtomicU64,
    commits: AtomicU64,
    /// Records appended since the last fsync (group-commit batch clock).
    pending: AtomicU64,
    /// Per-fsync batch sizes, for the group-commit histogram.
    batch_sizes: Mutex<Vec<u64>>,
}

impl Wal {
    /// Opens (or creates) the log in `dir` and starts a fresh segment.
    ///
    /// An existing log is scanned to resume LSN/transaction numbering,
    /// and a torn tail left by a crash is truncated away (its records
    /// belong to a transaction that never committed — see the framing
    /// docs in `record.rs`). Run [`crate::recover`] against the data
    /// disk *before* opening if the image may be behind the log.
    pub fn open<P: AsRef<Path>>(dir: P, opts: WalOptions) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let scan = scan_dir(&dir)?;
        if let Some(torn) = scan.torn {
            if torn != scan.segments.len() - 1 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "torn record in non-final segment {} of {} — mid-log corruption, refusing to open",
                        scan.segments[torn].seq,
                        dir.display()
                    ),
                ));
            }
            let seg = &scan.segments[torn];
            let f = OpenOptions::new().write(true).open(&seg.path)?;
            f.set_len(seg.valid_end)?;
            f.sync_all()?;
        }
        let last_seq = scan.segments.last().map(|s| s.seq).unwrap_or(0);
        let seg_seq = last_seq + 1;
        let file = Self::create_segment(&dir, seg_seq)?;
        let sync_handle = file.try_clone()?;
        Self::sync_dir(&dir)?;
        let mut segments: Vec<u64> = scan.segments.iter().map(|s| s.seq).collect();
        segments.push(seg_seq);
        Ok(Self {
            dir,
            opts,
            inner: Mutex::new(Inner {
                file,
                seg_seq,
                seg_bytes: SEGMENT_HEADER_BYTES as u64,
                next_lsn: scan.max_lsn + 1,
                segments,
                total_bytes: 0,
                crash_after_bytes: None,
                scratch: Vec::new(),
            }),
            sync_file: Mutex::new(SyncHandle { file: sync_handle }),
            appended: AtomicU64::new(scan.max_lsn),
            durable: AtomicU64::new(scan.max_lsn),
            next_txn: AtomicU64::new(scan.max_txn),
            open_txns: AtomicI64::new(0),
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            pending: AtomicU64::new(0),
            batch_sizes: Mutex::new(Vec::new()),
        })
    }

    fn create_segment(dir: &Path, seq: u64) -> io::Result<File> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(segment_path(dir, seq))?;
        file.write_all(&encode_segment_header(seq))?;
        file.sync_data()?;
        Ok(file)
    }

    fn sync_dir(dir: &Path) -> io::Result<()> {
        // Make segment creation/deletion durable (the directory entry).
        File::open(dir)?.sync_all()
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arms crash injection: the append that would push total appended
    /// record bytes past `bytes` writes only the prefix up to the
    /// threshold and aborts the process — a deterministic torn tail at an
    /// arbitrary byte position. Crash-harness only.
    pub fn set_crash_after_bytes(&self, bytes: Option<u64>) {
        self.inner.lock().crash_after_bytes = bytes;
    }

    /// Total record bytes appended by this writer (the crash-hook clock).
    pub fn appended_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Appends one record, handling rotation and crash injection; returns
    /// its LSN.
    fn append(&self, txn: u64, payload: WalPayload) -> u64 {
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        let record = WalRecord { lsn, txn, payload };
        let mut frame = std::mem::take(&mut inner.scratch);
        encode_record(&record, &mut frame);

        if inner.seg_bytes + frame.len() as u64 > self.opts.segment_bytes
            && inner.seg_bytes > SEGMENT_HEADER_BYTES as u64
        {
            self.rotate(&mut inner)
                .expect("wal segment rotation failed");
        }

        if let Some(limit) = inner.crash_after_bytes {
            if inner.total_bytes + frame.len() as u64 > limit {
                // Write only up to the threshold, force it down, and die:
                // the parent process finds a torn tail at an exact byte
                // position chosen by the harness.
                let keep = (limit.saturating_sub(inner.total_bytes)) as usize;
                let _ = inner.file.write_all(&frame[..keep.min(frame.len())]);
                let _ = inner.file.sync_data();
                std::process::abort();
            }
        }

        inner
            .file
            .write_all(&frame)
            .expect("wal append failed (segment write)");
        inner.seg_bytes += frame.len() as u64;
        inner.total_bytes += frame.len() as u64;
        self.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        self.records.fetch_add(1, Ordering::Relaxed);
        self.pending.fetch_add(1, Ordering::Relaxed);
        inner.scratch = frame;
        // Publish the LSN only after write_all returned: sync_to reads it
        // outside the append lock.
        self.appended.store(lsn, Ordering::Release);
        lsn
    }

    /// Rotates to a fresh segment (under the append lock): the old file
    /// is fsynced first, so every record in a non-current segment is
    /// durable by construction.
    fn rotate(&self, inner: &mut Inner) -> io::Result<()> {
        inner.file.sync_data()?;
        // Everything appended so far now *is* durable — credit it, so the
        // next commit's fsync only covers the new segment.
        self.durable
            .fetch_max(self.appended.load(Ordering::Acquire), Ordering::AcqRel);
        let seq = inner.seg_seq + 1;
        let file = Self::create_segment(&self.dir, seq)?;
        let clone = file.try_clone()?;
        Self::sync_dir(&self.dir)?;
        inner.file = file;
        inner.seg_seq = seq;
        inner.seg_bytes = SEGMENT_HEADER_BYTES as u64;
        inner.segments.push(seq);
        // Lock ordering: inner → sync_file (sync_to never takes inner).
        self.sync_file.lock().file = clone;
        Ok(())
    }

    /// Makes everything up to `lsn` durable, riding a concurrent fsync
    /// when one already covers it (group commit).
    fn sync_to(&self, lsn: u64, always_fsync: bool) -> u64 {
        let d = self.durable.load(Ordering::Acquire);
        if d >= lsn && !always_fsync {
            return d;
        }
        let guard = self.sync_file.lock();
        let d = self.durable.load(Ordering::Acquire);
        if d >= lsn && !always_fsync {
            // A racing committer's fsync covered us while we waited.
            return d;
        }
        // While we hold the sync lock no rotation can swap the
        // current segment out from under us, so `appended` is fully
        // contained in (already-durable older segments +) this file.
        let target = self.appended.load(Ordering::Acquire);
        let batch = self.pending.swap(0, Ordering::AcqRel);
        if !self.opts.fsync_latency.is_zero() {
            std::thread::sleep(self.opts.fsync_latency);
        }
        guard.file.sync_data().expect("wal fsync failed");
        drop(guard);
        self.durable.fetch_max(target, Ordering::AcqRel);
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        if batch > 0 {
            self.batch_sizes.lock().push(batch);
        }
        self.durable.load(Ordering::Acquire)
    }

    /// Deletes every segment except a freshly started one. Callable only
    /// at a quiescent point: no open transactions, and the caller must
    /// already have flushed all dirty pages covered by the log and synced
    /// the data disk — after truncation the log can no longer redo them.
    pub fn checkpoint_truncate(&self) -> io::Result<u64> {
        assert_eq!(
            self.open_txns.load(Ordering::SeqCst),
            0,
            "checkpoint with open transactions would lose their redo records"
        );
        let mut inner = self.inner.lock();
        self.rotate(&mut inner)?;
        let keep_from = inner.segments.len() - 1;
        let old: Vec<u64> = inner.segments.drain(..keep_from).collect();
        for seq in &old {
            std::fs::remove_file(segment_path(&self.dir, *seq))?;
        }
        Self::sync_dir(&self.dir)?;
        Ok(old.len() as u64)
    }

    /// Writer counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            records: self.records.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            segments: self.inner.lock().segments.len() as u64,
        }
    }

    /// Group-commit batch sizes, one entry per fsync.
    pub fn batch_sizes(&self) -> Vec<u64> {
        self.batch_sizes.lock().clone()
    }

    /// Publishes the writer-side `wal.*` metrics into `reg`.
    pub fn publish_metrics(&self, reg: &tfm_obs::MetricsRegistry) {
        use tfm_obs::names;
        let s = self.stats();
        reg.counter(names::WAL_RECORDS).add(s.records);
        reg.counter(names::WAL_BYTES).add(s.bytes);
        reg.counter(names::WAL_FSYNCS).add(s.fsyncs);
        reg.counter(names::WAL_COMMITS).add(s.commits);
        let hist = reg.histogram(names::WAL_GROUP_COMMIT_RECORDS);
        for b in self.batch_sizes() {
            hist.record(b);
        }
    }
}

impl RedoLog for Wal {
    fn begin(&self) -> u64 {
        self.open_txns.fetch_add(1, Ordering::SeqCst);
        self.next_txn.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn log_page(&self, txn: u64, page: PageId, image: &[u8]) -> u64 {
        self.append(
            txn,
            WalPayload::Page {
                page: page.0,
                image: image.to_vec(),
            },
        )
    }

    fn commit(&self, txn: u64) -> u64 {
        let lsn = self.append(txn, WalPayload::Commit);
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.open_txns.fetch_sub(1, Ordering::SeqCst);
        self.sync_to(lsn, self.opts.sync_mode == SyncMode::EachCommit)
    }

    fn durable_lsn(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    fn sync(&self) -> u64 {
        let lsn = self.appended.load(Ordering::Acquire);
        if lsn == 0 {
            return self.durable_lsn();
        }
        self.sync_to(lsn, false)
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("durable_lsn", &self.durable_lsn())
            .field("stats", &self.stats())
            .finish()
    }
}
