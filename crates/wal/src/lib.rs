//! `tfm-wal` — the durability subsystem of the reproduction's write path.
//!
//! An append-only, checksummed, LSN-stamped **redo log** in rotating
//! segment files, plus the replay that brings a data image forward after
//! a crash. Together with the dirty tier of
//! [`tfm_storage::SharedPageCache`] it implements classic
//! WAL-before-data:
//!
//! 1. a mutation writes full-page after-images to the log
//!    ([`Wal::log_page`](tfm_storage::RedoLog::log_page) via
//!    `tfm_storage::LoggedPages`), each stamped with an LSN;
//! 2. the same bytes land in the shared cache's dirty tier carrying that
//!    LSN — the data disk is untouched;
//! 3. commit appends a commit marker and fsyncs (group commit: one fsync
//!    covers every record appended by then, so concurrent committers
//!    share the flush);
//! 4. dirty frames reach the disk only through
//!    `SharedPageCache::flush_dirty(durable_lsn)`, whose gate keeps any
//!    page whose record is not yet durable in memory.
//!
//! After a crash, [`recover`] scans the segments (stopping at the torn
//! tail the dying append left behind — every record is individually
//! checksummed), collects the committed transaction set, and rewrites
//! their page images in LSN order. Full-page redo makes replay idempotent
//! by construction; uncommitted work is simply never written. Reopening
//! the [`Wal`] truncates the torn tail and resumes numbering.
//!
//! The no-steal contract: callers only flush state whose transactions
//! committed (the mutable layers flush at batch boundaries), so the log
//! never needs undo records.

#![warn(missing_docs)]

mod reader;
mod record;
mod recover;
mod writer;

pub use reader::{scan_dir, segment_path, ScanReport, SegmentInfo};
pub use record::{WalPayload, WalRecord};
pub use recover::{recover, RecoveryReport};
pub use writer::{SyncMode, Wal, WalOptions, WalStats};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::time::Duration;
    use tfm_storage::{Disk, DiskModel, PageId, RedoLog};

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "tfm_wal_{}_{}_{:?}",
            tag,
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn small_opts() -> WalOptions {
        WalOptions {
            segment_bytes: 4096,
            ..WalOptions::default()
        }
    }

    fn page(fill: u8, len: usize) -> Vec<u8> {
        vec![fill; len]
    }

    #[test]
    fn committed_pages_replay_onto_a_fresh_disk() {
        let dir = temp_dir("replay");
        let wal = Wal::open(&dir, small_opts()).unwrap();
        let t1 = wal.begin();
        wal.log_page(t1, PageId(0), &page(1, 64));
        wal.log_page(t1, PageId(2), &page(3, 64));
        wal.commit(t1);
        // Transaction 2 never commits: its write must not replay.
        let t2 = wal.begin();
        wal.log_page(t2, PageId(1), &page(9, 64));
        drop(wal);

        let disk = Disk::in_memory(64).with_model(DiskModel::free());
        let report = recover(&dir, &disk).unwrap();
        assert_eq!(report.pages_replayed, 2);
        assert_eq!(report.skipped_uncommitted, 1);
        assert_eq!(report.commits, 1);
        assert!(!report.torn_tail);
        assert_eq!(disk.read_page_vec(PageId(0)), page(1, 64));
        assert_eq!(disk.read_page_vec(PageId(2)), page(3, 64));
        assert_eq!(
            disk.read_page_vec(PageId(1)),
            page(0, 64),
            "uncommitted absent"
        );

        // Idempotence: a second replay converges to the same image.
        let again = recover(&dir, &disk).unwrap();
        assert_eq!(again.pages_replayed, 2);
        assert_eq!(disk.read_page_vec(PageId(0)), page(1, 64));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_spreads_records_over_segments_and_replays_in_order() {
        let dir = temp_dir("rotate");
        let wal = Wal::open(&dir, small_opts()).unwrap();
        // Each record is ~64+37 bytes; hundreds of them cross several
        // 4 KiB segments. Later writes to the same page must win.
        for round in 0..10u8 {
            let t = wal.begin();
            for p in 0..20u64 {
                wal.log_page(t, PageId(p), &page(round * 20 + p as u8, 64));
            }
            wal.commit(t);
        }
        assert!(wal.stats().segments > 2, "{:?}", wal.stats());
        drop(wal);
        let disk = Disk::in_memory(64).with_model(DiskModel::free());
        recover(&dir, &disk).unwrap();
        for p in 0..20u64 {
            assert_eq!(disk.read_page_vec(PageId(p))[0], 9 * 20 + p as u8);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_detected_skipped_and_repaired_on_reopen() {
        let dir = temp_dir("torn");
        {
            let wal = Wal::open(&dir, small_opts()).unwrap();
            let t = wal.begin();
            wal.log_page(t, PageId(0), &page(1, 64));
            wal.commit(t);
            let t = wal.begin();
            wal.log_page(t, PageId(0), &page(2, 64));
            wal.commit(t);
        }
        // Tear the last record by chopping bytes off the newest segment.
        let scan = scan_dir(&dir).unwrap();
        let last = scan.segments.last().unwrap();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&last.path)
            .unwrap();
        f.set_len(last.bytes - 5).unwrap();
        drop(f);

        let disk = Disk::in_memory(64).with_model(DiskModel::free());
        let report = recover(&dir, &disk).unwrap();
        assert!(report.torn_tail);
        // The torn commit never happened: only txn 1's state replays.
        assert_eq!(disk.read_page_vec(PageId(0)), page(1, 64));

        // Reopen truncates the tear and writing continues cleanly.
        let wal = Wal::open(&dir, small_opts()).unwrap();
        let t = wal.begin();
        assert!(t >= 2, "txn numbering resumes past the old log");
        wal.log_page(t, PageId(0), &page(7, 64));
        wal.commit(t);
        drop(wal);
        let report = recover(&dir, &disk).unwrap();
        assert!(!report.torn_tail, "tear was repaired");
        assert_eq!(disk.read_page_vec(PageId(0)), page(7, 64));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_shares_fsyncs_across_committers() {
        let dir = temp_dir("group");
        let wal = Wal::open(
            &dir,
            WalOptions {
                fsync_latency: Duration::from_millis(2),
                ..WalOptions::default()
            },
        )
        .unwrap();
        let threads = 4;
        let commits_per_thread = 10;
        std::thread::scope(|s| {
            for w in 0..threads {
                let wal = &wal;
                s.spawn(move || {
                    for i in 0..commits_per_thread {
                        let t = wal.begin();
                        wal.log_page(t, PageId((w * 100 + i) as u64), &page(w as u8, 64));
                        let durable = wal.commit(t);
                        assert!(durable > 0);
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.commits, (threads * commits_per_thread) as u64);
        assert!(
            stats.fsyncs < stats.commits,
            "group commit must batch: {} fsyncs for {} commits",
            stats.fsyncs,
            stats.commits
        );
        let batches = wal.batch_sizes();
        assert!(batches.iter().any(|&b| b > 1), "{batches:?}");
        assert_eq!(batches.iter().sum::<u64>(), stats.records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn each_commit_mode_fsyncs_every_commit() {
        let dir = temp_dir("each");
        let wal = Wal::open(
            &dir,
            WalOptions {
                sync_mode: SyncMode::EachCommit,
                ..WalOptions::default()
            },
        )
        .unwrap();
        for i in 0..5u64 {
            let t = wal.begin();
            wal.log_page(t, PageId(i), &page(i as u8, 64));
            wal.commit(t);
        }
        assert!(wal.stats().fsyncs >= 5, "{:?}", wal.stats());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncate_drops_replayed_segments() {
        let dir = temp_dir("ckpt");
        let disk = Disk::in_memory(64).with_model(DiskModel::free());
        let _ = disk.allocate_contiguous(8);
        let wal = Wal::open(&dir, small_opts()).unwrap();
        for p in 0..8u64 {
            let t = wal.begin();
            wal.log_page(t, PageId(p), &page(p as u8 + 1, 64));
            wal.commit(t);
        }
        // Checkpoint: everything durable is flushed by hand here, then
        // the old segments go away.
        for p in 0..8u64 {
            disk.write_page(PageId(p), &page(p as u8 + 1, 64));
        }
        disk.sync().unwrap();
        let removed = wal.checkpoint_truncate().unwrap();
        assert!(removed >= 1);
        // Replay of the truncated log is a no-op, and the image is intact.
        let report = recover(&dir, &disk).unwrap();
        assert_eq!(report.pages_replayed, 0);
        for p in 0..8u64 {
            assert_eq!(disk.read_page_vec(PageId(p))[0], p as u8 + 1);
        }
        // The log keeps working after a checkpoint.
        let t = wal.begin();
        wal.log_page(t, PageId(0), &page(99, 64));
        wal.commit(t);
        drop(wal);
        let report = recover(&dir, &disk).unwrap();
        assert_eq!(report.pages_replayed, 1);
        assert_eq!(disk.read_page_vec(PageId(0))[0], 99);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_resumes_lsn_numbering() {
        let dir = temp_dir("resume");
        let first_durable;
        {
            let wal = Wal::open(&dir, small_opts()).unwrap();
            let t = wal.begin();
            wal.log_page(t, PageId(0), &page(1, 64));
            first_durable = wal.commit(t);
        }
        {
            let wal = Wal::open(&dir, small_opts()).unwrap();
            assert_eq!(wal.durable_lsn(), first_durable);
            let t = wal.begin();
            let lsn = wal.log_page(t, PageId(1), &page(2, 64));
            assert!(lsn > first_durable, "LSNs continue past the old log");
            wal.commit(t);
        }
        let disk = Disk::in_memory(64).with_model(DiskModel::free());
        let report = recover(&dir, &disk).unwrap();
        assert_eq!(report.pages_replayed, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_publish_under_wal_names() {
        let dir = temp_dir("metrics");
        let wal = Wal::open(&dir, small_opts()).unwrap();
        let t = wal.begin();
        wal.log_page(t, PageId(0), &page(1, 64));
        wal.commit(t);
        let reg = tfm_obs::MetricsRegistry::new();
        reg.set_enabled(true);
        wal.publish_metrics(&reg);
        assert_eq!(reg.counter(tfm_obs::names::WAL_RECORDS).get(), 2);
        assert!(reg.counter(tfm_obs::names::WAL_BYTES).get() > 64);
        assert_eq!(reg.counter(tfm_obs::names::WAL_COMMITS).get(), 1);
        assert!(reg.counter(tfm_obs::names::WAL_FSYNCS).get() >= 1);
        let disk = Disk::in_memory(64).with_model(DiskModel::free());
        let report = recover(wal.dir(), &disk).unwrap();
        report.publish(&reg);
        assert_eq!(reg.counter(tfm_obs::names::WAL_RECOVERY_REPLAYED).get(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
