//! Redo replay: bringing a data disk forward to the log's committed state.

use crate::reader::scan_dir;
use crate::record::WalPayload;
use std::collections::HashSet;
use std::io;
use std::path::Path;
use tfm_storage::{Disk, PageId};

/// What a [`recover`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Complete records scanned from the log.
    pub records_scanned: u64,
    /// Committed page after-images written to the disk.
    pub pages_replayed: u64,
    /// Page records skipped because their transaction never committed.
    pub skipped_uncommitted: u64,
    /// Commit records seen (= committed transactions).
    pub commits: u64,
    /// True when the log ended in a torn record (a crash mid-append).
    pub torn_tail: bool,
    /// Highest LSN in the log (0 when empty).
    pub max_lsn: u64,
}

impl RecoveryReport {
    /// Publishes the replay counters into `reg` under `wal.recovery.*`.
    pub fn publish(&self, reg: &tfm_obs::MetricsRegistry) {
        use tfm_obs::names;
        reg.counter(names::WAL_RECOVERY_REPLAYED)
            .add(self.pages_replayed);
        reg.counter(names::WAL_RECOVERY_SKIPPED)
            .add(self.skipped_uncommitted);
    }
}

/// Replays the log in `dir` against `disk`: every page after-image of a
/// *committed* transaction is rewritten, in LSN order, and the disk is
/// synced. Records of transactions without a commit record — including
/// everything at and after a torn tail — are skipped: uncommitted work
/// vanishes, which is the atomicity contract.
///
/// Replay is **idempotent**: records are full-page images, so running
/// recovery any number of times (including over a disk that already has
/// some or all of the writes) converges to the same image. The log is not
/// modified; torn-tail truncation happens when the [`crate::Wal`] is next
/// opened.
///
/// A missing directory is an empty log (fresh start, nothing to do). A
/// tear anywhere but the final segment is mid-log corruption and errors.
pub fn recover(dir: &Path, disk: &Disk) -> io::Result<RecoveryReport> {
    let scan = scan_dir(dir)?;
    if let Some(torn) = scan.torn {
        if torn != scan.segments.len() - 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "torn record in non-final segment {} of {} — mid-log corruption",
                    scan.segments[torn].seq,
                    dir.display()
                ),
            ));
        }
    }
    let committed: HashSet<u64> = scan
        .records
        .iter()
        .filter(|r| matches!(r.payload, WalPayload::Commit))
        .map(|r| r.txn)
        .collect();
    let mut report = RecoveryReport {
        records_scanned: scan.records.len() as u64,
        commits: committed.len() as u64,
        torn_tail: scan.torn.is_some(),
        max_lsn: scan.max_lsn,
        ..RecoveryReport::default()
    };
    for record in &scan.records {
        if let WalPayload::Page { page, image } = &record.payload {
            if committed.contains(&record.txn) {
                disk.ensure_allocated(page + 1);
                disk.write_page(PageId(*page), image);
                report.pages_replayed += 1;
            } else {
                report.skipped_uncommitted += 1;
            }
        }
    }
    disk.sync()?;
    Ok(report)
}
