//! Property tests for crash recovery: **every byte-prefix of the log is a
//! consistent state**.
//!
//! The acceptance claim of the WAL is that a crash can tear the log at
//! any byte and recovery still produces exactly the state of the
//! transactions whose commit record made it onto disk — no partial
//! transactions, no lost committed writes. These tests build a log from a
//! randomized transaction trace, truncate it at an arbitrary byte (the
//! simulated crash), replay it onto a fresh disk, and compare against a
//! reference image rebuilt from scratch by applying exactly the
//! transactions whose commit record fits inside the prefix.

use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use tfm_storage::{Disk, DiskModel, PageId, RedoLog};
use tfm_wal::{recover, scan_dir, segment_path, Wal, WalOptions};

const PAGE_SIZE: usize = 64;
const PAGES: u64 = 8;
/// Encoded frame sizes (see `record.rs`): frame(12) + lsn/kind/txn(17) +
/// page id(8) + image.
const PAGE_RECORD_BYTES: u64 = 12 + 17 + 8 + PAGE_SIZE as u64;
const COMMIT_RECORD_BYTES: u64 = 12 + 17;
const HEADER_BYTES: u64 = 16;

fn temp_dir(tag: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "tfm_wal_props_{}_{}_{:?}",
        tag,
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn page_image(fill: u8) -> Vec<u8> {
    vec![fill; PAGE_SIZE]
}

/// Applies `txns` to the log in `dir`; every transaction commits.
fn write_log(dir: &PathBuf, txns: &[Vec<(u64, u8)>]) {
    let wal = Wal::open(dir, WalOptions::default()).unwrap();
    for writes in txns {
        let t = wal.begin();
        for &(page, fill) in writes {
            wal.log_page(t, PageId(page), &page_image(fill));
        }
        wal.commit(t);
    }
}

/// The reference: which transactions are fully committed within a log
/// prefix of `cut` bytes, and what disk image they produce. This walks
/// the same record layout the writer produced, independently of the scan
/// code under test.
fn reference_image(txns: &[Vec<(u64, u8)>], cut: u64) -> HashMap<u64, Vec<u8>> {
    let mut offset = HEADER_BYTES;
    let mut image: HashMap<u64, Vec<u8>> = HashMap::new();
    for writes in txns {
        let commit_end = offset + writes.len() as u64 * PAGE_RECORD_BYTES + COMMIT_RECORD_BYTES;
        if commit_end <= cut {
            for &(page, fill) in writes {
                image.insert(page, page_image(fill));
            }
        }
        offset = commit_end;
    }
    image
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Truncate the log at an arbitrary byte and recovery must equal the
    // rebuilt-from-scratch reference for that prefix.
    #[test]
    fn any_log_prefix_recovers_to_the_reference_state(
        txns in prop::collection::vec(
            prop::collection::vec((0u64..PAGES, 1u8..=255), 1..5),
            1..10,
        ),
        cut_permille in 0u64..=1000,
        seed in 0u64..1_000_000,
    ) {
        let dir = temp_dir(seed);
        write_log(&dir, &txns);

        // Simulated crash: chop the (single) segment at an arbitrary byte.
        let scan = scan_dir(&dir).unwrap();
        prop_assert_eq!(scan.segments.len(), 1, "trace fits one segment");
        let total = scan.segments[0].bytes;
        let cut = HEADER_BYTES + (total - HEADER_BYTES) * cut_permille / 1000;
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(segment_path(&dir, scan.segments[0].seq))
            .unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let disk = Disk::in_memory(PAGE_SIZE).with_model(DiskModel::free());
        let report = recover(&dir, &disk).unwrap();

        let reference = reference_image(&txns, cut);
        prop_assert_eq!(
            report.commits as usize,
            txns.iter()
                .scan(HEADER_BYTES, |o, w| {
                    *o += w.len() as u64 * PAGE_RECORD_BYTES + COMMIT_RECORD_BYTES;
                    Some(*o)
                })
                .filter(|end| *end <= cut)
                .count(),
            "committed-transaction count matches the prefix"
        );
        for page in 0..PAGES {
            let expect = reference
                .get(&page)
                .cloned()
                .unwrap_or_else(|| vec![0u8; PAGE_SIZE]);
            let got = if page < disk.allocated_pages() {
                disk.read_page_vec(PageId(page))
            } else {
                vec![0u8; PAGE_SIZE]
            };
            prop_assert_eq!(got, expect, "page {} after cut {}", page, cut);
        }

        // And replaying the same prefix again changes nothing (idempotence).
        let again = recover(&dir, &disk).unwrap();
        prop_assert_eq!(again.pages_replayed, report.pages_replayed);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Reopening a torn log repairs it: the repaired log replays to the
    // same reference state, and new appends extend it cleanly.
    #[test]
    fn reopen_after_tear_preserves_the_prefix_state(
        txns in prop::collection::vec(
            prop::collection::vec((0u64..PAGES, 1u8..=255), 1..4),
            1..6,
        ),
        cut_back in 1u64..40,
        seed in 0u64..1_000_000,
    ) {
        let dir = temp_dir(1_000_000 + seed);
        write_log(&dir, &txns);
        let scan = scan_dir(&dir).unwrap();
        let total = scan.segments[0].bytes;
        let cut = total.saturating_sub(cut_back).max(HEADER_BYTES);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(segment_path(&dir, scan.segments[0].seq))
            .unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        // Reopen (repairs the tear), then append one more transaction.
        let wal = Wal::open(&dir, WalOptions::default()).unwrap();
        let t = wal.begin();
        wal.log_page(t, PageId(0), &page_image(0xEE));
        wal.commit(t);
        drop(wal);

        let disk = Disk::in_memory(PAGE_SIZE).with_model(DiskModel::free());
        let report = recover(&dir, &disk).unwrap();
        prop_assert!(!report.torn_tail, "reopen repaired the tear");

        let mut reference = reference_image(&txns, cut);
        reference.insert(0, page_image(0xEE));
        for (page, expect) in reference {
            prop_assert_eq!(disk.read_page_vec(PageId(page)), expect);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
