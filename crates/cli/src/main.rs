//! `tfm` — command-line front end for the TRANSFORMERS reproduction.
//!
//! ```text
//! tfm generate --count 100000 --distribution uniform --seed 1 --out a.elems
//! tfm generate --count 100000 --distribution dense-cluster --seed 2 --out b.elems
//! tfm join --a a.elems --b b.elems --approach transformers
//! tfm join --a a.elems --b b.elems --approach pbsm --verify
//! tfm info --in a.elems
//! ```

mod io;

use std::process::ExitCode;
use tfm_bench::{run_approach, Approach, RunConfig};
use tfm_datagen::{generate, neuro, DatasetSpec, Distribution};
use tfm_memjoin::{canonicalize, nested_loop_join, JoinStats};
use tfm_storage::StoreBackend;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("join") => cmd_join(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("mutate") => cmd_mutate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`; try `tfm help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "tfm — TRANSFORMERS robust spatial joins (ICDE 2016 reproduction)

USAGE:
  tfm generate --count N --out FILE [--distribution D] [--seed S] [--max-side F]
      D: uniform | dense-cluster | uniform-cluster | massive-cluster | axons | dendrites
  tfm build --in FILE [--page-size N] [--build-threads N]
            [--unit-capacity N] [--node-capacity N]
            [--backend mem|file] [--store DIR]
      builds the TRANSFORMERS index once through the staged pipeline and
      reports hierarchy size, pages and build time; the index is
      byte-identical at any --build-threads setting. With --backend file
      the pages are written to a real on-disk image DIR/build.pages
  tfm join --a FILE --b FILE [--approach A] [--page-size N] [--threads N]
           [--build-threads N] [--no-transform] [--no-prune] [--private-pool]
           [--backend mem|file] [--store DIR] [--io-depth N] [--readahead N]
           [--cache-policy clock|2q] [--verify] [--skew-file PATH]
           [--metrics PATH] [--metrics-format jsonl|prometheus]
           [--metrics-interval-ms N]
      A: transformers | no-tr | pbsm | rtree | gipsy | sssj | s3 (default: transformers)
      --threads N: run the transformers join on N parallel workers (tfm-exec)
      --build-threads N: build the indexes on N parallel workers
                  (transformers, gipsy and rtree builds; default 1)
      --no-transform: parallel path only — workers skip role transformations
      --no-prune: parallel path only — disable the shared cross-worker
                  to-do-list pruning board (workers prune only locally)
      --private-pool: ablation — read join pages through per-worker private
                  buffer pools instead of the process-wide shared page cache
      --skew-file PATH: persist each workload's observed steal fraction in a
                  JSON sidecar and feed it back as the scheduler's recorded
                  skew signal on the next run (parallel path only)
      --io-depth N / --readahead N: on the file backend the parallel
                  transformers path prefetches each chunk's unit-page
                  schedule through N dedicated I/O threads, keeping up to
                  --readahead pages in flight (results stay byte-identical)
      --cache-policy clock|2q: shared-cache eviction policy — 2q adds
                  scan-resistant admission (prefetched pages are
                  probationary); clock is the ablation default
  tfm serve --in FILE [--engine E] [--queries N] [--threads N] [--batch N]
            [--no-hilbert] [--private-pool] [--mix M] [--page-size N]
            [--build-threads N] [--trace-seed S] [--window F] [--eps F]
            [--shards N] [--shard-partitioner hilbert|str] [--shed]
            [--backend mem|file] [--store DIR] [--io-depth N] [--readahead N]
            [--cache-policy clock|2q] [--auto-batch]
            [--verify] [--metrics PATH] [--metrics-format jsonl|prometheus]
            [--metrics-interval-ms N]
      builds the chosen index once, generates a deterministic query trace
      (window / point-enclosure / distance probes) and replays it on N
      serve workers with locality-aware (Hilbert-ordered) batching
      E: transformers | gipsy | rtree  (default: transformers)
      M: uniform | clustered | neuro   (default: uniform)
      --batch N: queries per batch (default 64); --no-hilbert replays each
                  batch in arrival order instead of Hilbert order;
                  --private-pool serves from per-worker pools instead of the
                  shared page cache (ablation)
      --shards N: serve through a sharded scatter-gather cluster of N
                  self-contained index shards (each with its own page cache
                  and worker pool of --threads workers); probes are routed
                  only to the shards their probe box intersects, and merged
                  results stay byte-identical to the unsharded path.
                  --shard-partitioner picks the dataset split (default
                  hilbert); --shed swaps blocking admission for load
                  shedding on the per-shard bounded queues
      --auto-batch: let the serve loop retune its batch size from the
                  observed cache hit fraction and sequential-read fraction
                  (multi-worker path; results stay byte-identical)
      --cache-policy clock|2q: shared-cache eviction policy (see tfm join)
  tfm mutate --in FILE [--ops N] [--write-permille N] [--insert-permille N]
             [--wal-dir DIR] [--threads N] [--batch N] [--seed S]
             [--page-size N] [--build-threads N] [--verify]
      builds the TRANSFORMERS index, adopts it into the mutable overlay
      and replays a deterministic mixed read/write trace against it:
      probes are served on N workers while inserts/deletes apply in
      write-ahead-logged batches (chunk size --batch)
      --ops N: total operations, reads + writes (default 1000)
      --write-permille N: fraction of ops that are writes, 0..=1000
                  (default 200); --insert-permille N: fraction of writes
                  that are inserts (default 700, rest are deletes)
      --wal-dir DIR: write every batch through a write-ahead log in DIR
                  (group commit, segment rotation); without it mutations
                  apply unlogged — fine for throughput runs, no crash
                  safety. The log is left in place for inspection;
                  recovery replays it via the tfm-wal crate
      --verify: after the replay, check every probe of the trace against
                  a full scan of the mutated dataset
  tfm info --in FILE
  tfm help

STORAGE BACKEND (build + join + serve):
  --backend file: keep every page in a real on-disk image under --store
      DIR (default: a per-run temp directory), read with positional I/O;
      the default mem backend keeps pages in memory. --backend
      file-checksummed adds a per-page checksum sidecar so torn
      data-page writes are detected on read (the write path's posture). On the file backend
      `tfm serve` and the parallel `tfm join` run a prefetch pipeline:
      --io-depth N puts N dedicated I/O threads behind the workers and
      --readahead N keeps up to N pages in flight — serve follows each
      batch's Hilbert-ordered page schedule, join follows each chunk's
      unit-page schedule from the claimed pivot run (shared-cache runs;
      results stay byte-identical).
      --store/--io-depth/--readahead require --backend file.

METRICS (join + serve):
  --metrics PATH: enable the tfm-obs registry for the run and export the
      cache/IO/latency/stage-timing metrics to PATH — JSON lines by default,
      Prometheus text with --metrics-format prometheus; serve additionally
      appends one trace line per query (queue-wait/service split and
      buffer-pool attribution). --metrics-interval-ms N makes a background
      thread append a registry snapshot every N ms (JSON lines only)."
    );
}

/// Looks up the value following `--name`.
fn opt<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn required<'a>(args: &'a [String], name: &str) -> Result<&'a str, String> {
    opt(args, name).ok_or_else(|| format!("missing required option {name} VALUE"))
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
}

/// Parses a worker-count flag (default 1), rejecting 0 with a uniform
/// message.
fn parse_worker_count(args: &[String], name: &str) -> Result<usize, String> {
    let n: usize = parse(opt(args, name).unwrap_or("1"), name)?;
    if n == 0 {
        return Err(format!(
            "{name} must be at least 1 (0 workers cannot make progress)"
        ));
    }
    Ok(n)
}

/// Storage-backend options shared by `tfm build`, `tfm join` and
/// `tfm serve`.
struct StoreOpts {
    backend: StoreBackend,
    io_depth: usize,
    readahead: usize,
}

impl StoreOpts {
    /// The on-disk page-image directory, when the backend is a file.
    fn dir(&self) -> Option<&std::path::Path> {
        match &self.backend {
            StoreBackend::File(dir) | StoreBackend::FileChecksummed(dir) => Some(dir),
            StoreBackend::Mem => None,
        }
    }
}

/// Parses `--backend mem|file [--store DIR] [--io-depth N]
/// [--readahead N]`.
///
/// The page-image directory and the prefetch knobs only mean something
/// when pages live in a real file, so on the default mem backend every
/// flag of the group is rejected (same orphan-flag pattern as `--shed`
/// without `--shards`); `--io-depth 0` fails like `--threads 0` — the
/// depth is the number of dedicated I/O workers.
fn parse_store_opts(args: &[String]) -> Result<StoreOpts, String> {
    match opt(args, "--backend").unwrap_or("mem") {
        "mem" => {
            for name in ["--store", "--io-depth", "--readahead"] {
                if opt(args, name).is_some() {
                    return Err(format!("{name} requires --backend file"));
                }
            }
            Ok(StoreOpts {
                backend: StoreBackend::Mem,
                io_depth: 1,
                readahead: 0,
            })
        }
        kind @ ("file" | "file-checksummed") => {
            let dir = opt(args, "--store").map_or_else(
                || std::env::temp_dir().join(format!("tfm_store_{}", std::process::id())),
                std::path::PathBuf::from,
            );
            let io_depth = parse_worker_count(args, "--io-depth")?;
            let readahead: usize = parse(opt(args, "--readahead").unwrap_or("0"), "--readahead")?;
            let backend = if kind == "file" {
                StoreBackend::File(dir)
            } else {
                // Per-page checksum sidecar: torn data-page writes are
                // detected on read (the write path's default posture).
                StoreBackend::FileChecksummed(dir)
            };
            Ok(StoreOpts {
                backend,
                io_depth,
                readahead,
            })
        }
        other => Err(format!(
            "unknown backend `{other}` (mem | file | file-checksummed)"
        )),
    }
}

/// Parses `--cache-policy clock|2q` (default clock) for the commands that
/// read pages through the shared page cache (`tfm join`, `tfm serve`).
fn parse_cache_policy(args: &[String]) -> Result<tfm_storage::CachePolicy, String> {
    match opt(args, "--cache-policy") {
        Some(s) => s
            .parse::<tfm_storage::CachePolicy>()
            .map_err(|e| format!("invalid --cache-policy: {e}")),
        None => Ok(tfm_storage::CachePolicy::Clock),
    }
}

/// `--metrics` export options shared by `tfm join` and `tfm serve`.
struct MetricsOpts {
    path: String,
    prometheus: bool,
    interval: Option<std::time::Duration>,
}

/// Parses `--metrics PATH [--metrics-format jsonl|prometheus]
/// [--metrics-interval-ms N]`; `None` when `--metrics` is absent.
fn parse_metrics(args: &[String]) -> Result<Option<MetricsOpts>, String> {
    let Some(path) = opt(args, "--metrics") else {
        if opt(args, "--metrics-format").is_some() || opt(args, "--metrics-interval-ms").is_some() {
            return Err("--metrics-format/--metrics-interval-ms require --metrics PATH".into());
        }
        return Ok(None);
    };
    let prometheus = match opt(args, "--metrics-format").unwrap_or("jsonl") {
        "jsonl" => false,
        "prometheus" => true,
        other => {
            return Err(format!(
                "unknown metrics format `{other}` (jsonl | prometheus)"
            ))
        }
    };
    let interval = match opt(args, "--metrics-interval-ms") {
        None => None,
        Some(v) => {
            let ms: u64 = parse(v, "--metrics-interval-ms")?;
            if ms == 0 {
                return Err("--metrics-interval-ms must be at least 1".into());
            }
            Some(std::time::Duration::from_millis(ms))
        }
    };
    if prometheus && interval.is_some() {
        return Err(
            "periodic snapshots (--metrics-interval-ms) are JSON-lines only; \
             drop `--metrics-format prometheus`"
                .into(),
        );
    }
    Ok(Some(MetricsOpts {
        path: path.to_string(),
        prometheus,
        interval,
    }))
}

/// Arms the global registry (cleared, enabled) and starts the periodic
/// snapshot writer if an interval was requested. Runs before the index
/// build so the `build.*` stage timings land in this run's export.
fn start_metrics(m: &MetricsOpts) -> Result<Option<tfm_obs::SnapshotThread>, String> {
    tfm_obs::set_enabled(true);
    tfm_obs::global().reset();
    // Truncate any stale file from a previous run: both the snapshot
    // thread and the final export append.
    std::fs::write(&m.path, "").map_err(|e| format!("creating {}: {e}", m.path))?;
    match m.interval {
        Some(iv) => tfm_obs::SnapshotThread::start(tfm_obs::global(), m.path.clone().into(), iv)
            .map(Some)
            .map_err(|e| format!("starting snapshot thread: {e}")),
        None => Ok(None),
    }
}

/// Stops the snapshot writer, appends the final export (plus one trace
/// line per query in JSON-lines mode), parses the file back as a
/// self-check, and prints a one-line summary.
fn finish_metrics(
    m: &MetricsOpts,
    snap: Option<tfm_obs::SnapshotThread>,
    traces: &[tfm_obs::QueryTrace],
) -> Result<(), String> {
    use std::io::Write as _;
    if let Some(t) = snap {
        t.stop()
            .map_err(|e| format!("stopping snapshot thread: {e}"))?;
    }
    let snapshot = tfm_obs::global().snapshot();
    tfm_obs::set_enabled(false);
    let io_err = |e: std::io::Error| format!("writing {}: {e}", m.path);
    if m.prometheus {
        std::fs::write(&m.path, snapshot.to_prometheus()).map_err(io_err)?;
    } else {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&m.path)
            .map_err(io_err)?;
        f.write_all(snapshot.to_jsonl().as_bytes())
            .map_err(io_err)?;
        for t in traces {
            writeln!(f, "{}", t.to_json()).map_err(io_err)?;
        }
        f.flush().map_err(io_err)?;
        // Self-check: the export must round-trip through the parser even
        // with interleaved snapshot headers and trace lines.
        let text = std::fs::read_to_string(&m.path)
            .map_err(|e| format!("reading back {}: {e}", m.path))?;
        tfm_obs::MetricsSnapshot::parse_jsonl(&text)
            .map_err(|e| format!("{}: exported metrics failed to parse back: {e}", m.path))?;
    }
    let traces_note = if traces.is_empty() {
        String::new()
    } else {
        format!(" + {} query traces", traces.len())
    };
    println!(
        "metrics:         {} series{traces_note} -> {}",
        snapshot.entries.len(),
        m.path
    );
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let count: usize = parse(required(args, "--count")?, "--count")?;
    let out = required(args, "--out")?;
    let seed: u64 = parse(opt(args, "--seed").unwrap_or("0"), "--seed")?;
    let max_side: f64 = parse(opt(args, "--max-side").unwrap_or("1.0"), "--max-side")?;
    let dist = opt(args, "--distribution").unwrap_or("uniform");

    let elements = match dist {
        "uniform" => generate(&DatasetSpec {
            max_side,
            ..DatasetSpec::uniform(count, seed)
        }),
        "dense-cluster" => generate(&DatasetSpec {
            max_side,
            ..DatasetSpec::with_distribution(count, Distribution::dense_cluster_default(), seed)
        }),
        "uniform-cluster" => generate(&DatasetSpec {
            max_side,
            ..DatasetSpec::with_distribution(count, Distribution::uniform_cluster_default(), seed)
        }),
        "massive-cluster" => generate(&DatasetSpec {
            max_side,
            ..DatasetSpec::with_distribution(count, Distribution::massive_cluster_for(count), seed)
        }),
        "axons" => neuro::axons(count, seed),
        "dendrites" => neuro::dendrites(count, seed),
        other => return Err(format!("unknown distribution `{other}`")),
    };
    io::write_elements(out, &elements).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} elements to {out}", elements.len());
    Ok(())
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    use transformers::{IndexConfig, TransformersIndex};

    let path = required(args, "--in")?;
    let page_size: usize = parse(opt(args, "--page-size").unwrap_or("2048"), "--page-size")?;
    let build_threads = parse_worker_count(args, "--build-threads")?;
    let store = parse_store_opts(args)?;
    if opt(args, "--io-depth").is_some() || opt(args, "--readahead").is_some() {
        return Err(
            "--io-depth/--readahead drive the join/serve prefetch pipelines; \
             `tfm build` only writes the page image"
                .into(),
        );
    }
    if opt(args, "--cache-policy").is_some() {
        return Err(
            "--cache-policy selects the join/serve read-cache eviction policy; \
             `tfm build` only writes the page image"
                .into(),
        );
    }
    let mut cfg = IndexConfig::default().with_build_threads(build_threads);
    if let Some(v) = opt(args, "--unit-capacity") {
        cfg.unit_capacity = Some(parse(v, "--unit-capacity")?);
    }
    if let Some(v) = opt(args, "--node-capacity") {
        cfg.node_capacity = Some(parse(v, "--node-capacity")?);
    }

    let elems = io::read_elements(path).map_err(|e| format!("reading {path}: {e}"))?;
    let disk = tfm_storage::Disk::for_backend(&store.backend, page_size, "build")
        .map_err(|e| format!("creating page store: {e}"))?;
    let t = std::time::Instant::now();
    let idx = TransformersIndex::try_build(&disk, elems, &cfg)?;
    let wall = t.elapsed();
    let io = disk.stats();

    println!("dataset:         {path}");
    println!("elements:        {}", idx.len());
    println!(
        "hierarchy:       {} nodes, {} units (unit cap {}, node cap {})",
        idx.nodes().len(),
        idx.units().len(),
        idx.unit_capacity(),
        idx.node_capacity()
    );
    println!(
        "pages:           {} total ({} metadata)",
        disk.allocated_pages(),
        idx.metadata_pages()
    );
    println!("build threads:   {build_threads}");
    println!(
        "build time:      {:.3}s  ({:.3}s sim I/O + {:.3}s CPU)",
        wall.as_secs_f64() + io.sim_io_time().as_secs_f64(),
        io.sim_io_time().as_secs_f64(),
        wall.as_secs_f64()
    );
    if let Some(dir) = store.dir() {
        println!(
            "page image:      {} ({} bytes)",
            dir.join("build.pages").display(),
            disk.store_len()
        );
    }
    Ok(())
}

fn parse_approach(name: &str) -> Result<Approach, String> {
    Ok(match name {
        "transformers" => Approach::transformers(),
        "no-tr" => Approach::no_tr(),
        "pbsm" => Approach::Pbsm,
        "rtree" => Approach::Rtree,
        "gipsy" => Approach::Gipsy,
        "sssj" => Approach::Sssj,
        "s3" => Approach::S3,
        other => return Err(format!("unknown approach `{other}`")),
    })
}

fn cmd_join(args: &[String]) -> Result<(), String> {
    let path_a = required(args, "--a")?;
    let path_b = required(args, "--b")?;
    let approach = parse_approach(opt(args, "--approach").unwrap_or("transformers"))?;
    let page_size: usize = parse(opt(args, "--page-size").unwrap_or("2048"), "--page-size")?;
    let threads = parse_worker_count(args, "--threads")?;
    let build_threads = parse_worker_count(args, "--build-threads")?;
    let no_transform = flag(args, "--no-transform");
    let no_prune = flag(args, "--no-prune");
    let private_pool = flag(args, "--private-pool");
    let store = parse_store_opts(args)?;
    let cache_policy = parse_cache_policy(args)?;
    let parallel_transformers = threads > 1 && matches!(approach, Approach::Transformers(_));
    if (no_transform || no_prune) && !parallel_transformers {
        eprintln!(
            "note: --no-transform/--no-prune only affect the parallel transformers path \
             (--approach transformers --threads N > 1); ignored here"
        );
    }
    // Join prefetch runs where the unit-page schedule exists: the parallel
    // transformers path reading through the shared cache. Anywhere else a
    // requested readahead would silently demand-page, so say so.
    if store.readahead > 0 && (!parallel_transformers || private_pool) {
        eprintln!(
            "note: join prefetch (--readahead/--io-depth) engages on the parallel \
             transformers path with the shared page cache; this run demand-pages"
        );
    }

    // `--threads N` (N > 1) routes TRANSFORMERS through the parallel
    // execution subsystem (`tfm-exec`); other approaches are sequential.
    let approach = match (approach, threads) {
        (Approach::Transformers(mut join_cfg), t) => {
            join_cfg = join_cfg.with_cache_policy(cache_policy);
            if private_pool {
                join_cfg = join_cfg.with_private_pools();
            }
            if t > 1 {
                if no_transform {
                    join_cfg = join_cfg.without_worker_transforms();
                }
                if no_prune {
                    join_cfg = join_cfg.without_cross_worker_pruning();
                }
                // The exec layer turns these into the chunk-schedule
                // prefetch pipeline (no-ops with readahead 0).
                join_cfg = join_cfg
                    .with_readahead(store.readahead)
                    .with_io_depth(store.io_depth);
                Approach::TransformersParallel(join_cfg, t)
            } else {
                Approach::Transformers(join_cfg)
            }
        }
        (other, t) => {
            if t > 1 {
                eprintln!(
                    "note: --threads only affects the transformers approach; running sequentially"
                );
            }
            if opt(args, "--cache-policy").is_some() {
                eprintln!(
                    "note: --cache-policy only affects the transformers approach; ignored here"
                );
            }
            other
        }
    };

    let metrics = parse_metrics(args)?;
    let snap = match &metrics {
        Some(m) => start_metrics(m)?,
        None => None,
    };

    let a = io::read_elements(path_a).map_err(|e| format!("reading {path_a}: {e}"))?;
    let b = io::read_elements(path_b).map_err(|e| format!("reading {path_b}: {e}"))?;

    let cfg = RunConfig {
        page_size,
        build_threads,
        shared_cache: !private_pool,
        backend: store.backend.clone(),
        ..RunConfig::default()
    };
    // With --skew-file, the parallel path closes the steal-skew feedback
    // loop through the persistent sidecar: read the recorded signal before
    // the run, write the observed fraction after it. Keyed by the full
    // input paths — same-named files in different directories are
    // different workloads.
    let workload = format!("{path_a}|{path_b}");
    let (m, pairs) = match opt(args, "--skew-file") {
        Some(skew_path) => {
            let mut store = tfm_bench::SkewStore::load(skew_path);
            let recorded = store.recorded(&workload);
            let out =
                tfm_bench::run_approach_with_skew(&approach, &workload, &a, &b, &cfg, &mut store);
            store
                .save()
                .map_err(|e| format!("writing {skew_path}: {e}"))?;
            match (recorded, store.recorded(&workload)) {
                (Some(prev), _) => println!("skew:            recorded {prev:.3} fed back"),
                (None, Some(now)) => println!("skew:            {now:.3} recorded for next run"),
                _ => {}
            }
            out
        }
        None => run_approach(&approach, "cli", &a, &b, &cfg),
    };

    println!("approach:        {}", m.approach);
    if let Some(dir) = store.dir() {
        println!(
            "backend:         file ({}; io depth {}, readahead {} pages)",
            dir.display(),
            store.io_depth,
            store.readahead
        );
    }
    if cache_policy != tfm_storage::CachePolicy::Clock {
        println!("cache policy:    {cache_policy}");
    }
    println!("datasets:        |A| = {}, |B| = {}", m.n_a, m.n_b);
    println!("result pairs:    {}", m.results);
    println!(
        "build time:      {:.3}s  ({:.3}s sim I/O + {:.3}s CPU, {} build thread{})",
        m.index_time().as_secs_f64(),
        m.index_sim_io.as_secs_f64(),
        m.index_wall.as_secs_f64(),
        m.build_threads,
        if m.build_threads == 1 { "" } else { "s" }
    );
    println!(
        "join time:       {:.3}s  ({:.3}s sim I/O + {:.3}s CPU)",
        m.join_time().as_secs_f64(),
        m.join_sim_io.as_secs_f64(),
        m.join_wall.as_secs_f64()
    );
    println!(
        "join I/O:        {} pages ({} random, {} sequential)",
        m.pages_read, m.rand_reads, m.seq_reads
    );
    if m.prefetch_issued > 0 {
        println!(
            "join prefetch:   {} pages issued ({} hit, {} unused — {:.1}% unused)",
            m.prefetch_issued,
            m.prefetch_hits,
            m.prefetch_unused,
            m.prefetch_unused as f64 / m.prefetch_issued as f64 * 100.0
        );
    }
    println!("intersection tests: {}", m.tests);
    if m.transformations > 0 {
        println!("transformations: {}", m.transformations);
    }
    if let Some(mo) = &metrics {
        finish_metrics(mo, snap, &[])?;
    }

    if flag(args, "--verify") {
        let mut s = JoinStats::default();
        let expected = canonicalize(nested_loop_join(&a, &b, &mut s));
        if canonicalize(pairs) == expected {
            println!(
                "verify:          OK ({} pairs match the nested-loop oracle)",
                expected.len()
            );
        } else {
            return Err("result set does NOT match the nested-loop oracle".into());
        }
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use tfm_bench::{run_serve, run_serve_traced, ServeEngineKind};
    use tfm_datagen::{generate_trace, ProbeMix, QueryTraceSpec};
    use tfm_serve::ServeConfig;

    let path = required(args, "--in")?;
    let engine = match opt(args, "--engine").unwrap_or("transformers") {
        "transformers" => ServeEngineKind::Transformers,
        "gipsy" => ServeEngineKind::Gipsy,
        "rtree" => ServeEngineKind::Rtree,
        other => return Err(format!("unknown serve engine `{other}`")),
    };
    let mix = match opt(args, "--mix").unwrap_or("uniform") {
        "uniform" => ProbeMix::Uniform,
        "clustered" => ProbeMix::Clustered { clusters: 8 },
        "neuro" => ProbeMix::NeuroCorrelated,
        other => return Err(format!("unknown probe mix `{other}`")),
    };
    let queries: usize = parse(opt(args, "--queries").unwrap_or("1000"), "--queries")?;
    let threads = parse_worker_count(args, "--threads")?;
    let batch: usize = parse(opt(args, "--batch").unwrap_or("64"), "--batch")?;
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let page_size: usize = parse(opt(args, "--page-size").unwrap_or("2048"), "--page-size")?;
    let build_threads = parse_worker_count(args, "--build-threads")?;
    let trace_seed: u64 = parse(opt(args, "--trace-seed").unwrap_or("1"), "--trace-seed")?;
    let window: f64 = parse(opt(args, "--window").unwrap_or("20"), "--window")?;
    let eps: f64 = parse(opt(args, "--eps").unwrap_or("5"), "--eps")?;
    let store = parse_store_opts(args)?;
    let cache_policy = parse_cache_policy(args)?;
    let auto_batch = flag(args, "--auto-batch");
    if opt(args, "--shards").is_some() {
        // The sharded cluster keeps per-shard CLOCK caches and a fixed
        // batch loop; fail fast before any file I/O.
        if auto_batch {
            return Err(
                "--auto-batch tunes the unsharded serve batch loop; not supported with --shards"
                    .into(),
            );
        }
        if opt(args, "--cache-policy").is_some() {
            return Err(
                "--cache-policy applies to the unsharded serve path; shard caches are CLOCK".into(),
            );
        }
    }
    if auto_batch && threads == 1 {
        eprintln!(
            "note: --auto-batch tunes the queued (multi-worker) batch loop; \
             the single-threaded inline path ignores it"
        );
    }

    let elems = io::read_elements(path).map_err(|e| format!("reading {path}: {e}"))?;
    let trace = generate_trace(&QueryTraceSpec {
        max_window_side: window,
        max_eps: eps,
        ..QueryTraceSpec::with_mix(queries, mix, trace_seed)
    });
    let run_cfg = RunConfig {
        page_size,
        build_threads,
        backend: store.backend.clone(),
        ..RunConfig::default()
    };
    let serve_cfg = ServeConfig {
        threads,
        batch,
        hilbert_batching: !flag(args, "--no-hilbert"),
        shared_cache: !flag(args, "--private-pool"),
        io_depth: store.io_depth,
        readahead: store.readahead,
        auto_batch,
        cache_policy,
        ..ServeConfig::default()
    };
    let metrics = parse_metrics(args)?;

    // --shards N switches to the sharded scatter-gather cluster: the
    // dataset is split into N self-contained index shards, each with its
    // own cache and worker pool, behind the probe-box router.
    if let Some(shards_str) = opt(args, "--shards") {
        let shards: usize = parse(shards_str, "--shards")?;
        if shards == 0 {
            return Err("--shards must be at least 1".into());
        }
        let partitioner = match opt(args, "--shard-partitioner").unwrap_or("hilbert") {
            "hilbert" => tfm_serve::ShardPartitioner::Hilbert,
            "str" => tfm_serve::ShardPartitioner::Str,
            other => {
                return Err(format!(
                    "unknown shard partitioner `{other}` (hilbert | str)"
                ))
            }
        };
        let spec = tfm_serve::ShardSpec {
            shards,
            partitioner,
            page_size,
            backend: store.backend.clone(),
            ..tfm_serve::ShardSpec::default()
        };
        let shard_cfg = tfm_serve::ShardServeConfig {
            workers_per_shard: threads,
            batch,
            hilbert_batching: !flag(args, "--no-hilbert"),
            shed: flag(args, "--shed"),
            io_depth: store.io_depth,
            readahead: store.readahead,
            ..tfm_serve::ShardServeConfig::default()
        };
        let snap = match &metrics {
            Some(m) => start_metrics(m)?,
            None => None,
        };
        let (m, results) =
            tfm_bench::run_serve_sharded(engine, "cli", &elems, &trace, &spec, &shard_cfg);
        println!("engine:          {} (sharded)", m.engine);
        if let Some(dir) = store.dir() {
            println!(
                "backend:         file ({}; io depth {}, readahead {} pages)",
                dir.display(),
                store.io_depth,
                store.readahead
            );
        }
        println!("dataset:         {path} ({} elements)", m.n_elements);
        println!(
            "trace:           {} queries ({:?} probes, seed {trace_seed})",
            m.queries, mix
        );
        println!(
            "cluster:         {} shards x {} workers ({:?} split), batch {}",
            m.shards, m.workers_per_shard, partitioner, batch
        );
        println!(
            "throughput:      {:.0} queries/s  ({:.3}s wall)",
            m.qps,
            m.wall.as_secs_f64()
        );
        println!(
            "latency:         p50 {:.1}us  p95 {:.1}us  p99 {:.1}us (critical path)",
            m.p50.as_secs_f64() * 1e6,
            m.p95.as_secs_f64() * 1e6,
            m.p99.as_secs_f64() * 1e6
        );
        println!(
            "routing:         fanout mean {:.2} max {} ({} partials), \
             peak cluster pressure {:.0}%",
            m.fanout_mean,
            m.fanout_max,
            m.routed_partials,
            m.max_cluster_pressure * 100.0
        );
        if m.shed_partials > 0 {
            println!(
                "shedding:        {} partials shed — results are incomplete",
                m.shed_partials
            );
        }
        println!(
            "serve I/O:       {} pages over {} shard disks, {} pool hits",
            m.pages_read, m.shards, m.pool_hits
        );
        println!("result ids:      {}", m.result_ids);
        if let Some(mo) = &metrics {
            finish_metrics(mo, snap, &[])?;
        }
        if flag(args, "--verify") {
            if m.shed_partials > 0 {
                return Err("cannot --verify a run that shed load".into());
            }
            for (i, q) in trace.iter().enumerate() {
                let mut expected: Vec<u64> = elems
                    .iter()
                    .filter(|e| q.matches(&e.mbb))
                    .map(|e| e.id)
                    .collect();
                expected.sort_unstable();
                if results[i] != expected {
                    return Err(format!("query {i} diverges from the full-scan oracle"));
                }
            }
            println!(
                "verify:          OK (all {} queries match the full scan)",
                m.queries
            );
        }
        return Ok(());
    }
    if flag(args, "--shed") || opt(args, "--shard-partitioner").is_some() {
        return Err("--shed/--shard-partitioner require --shards N".into());
    }

    let snap = match &metrics {
        Some(m) => start_metrics(m)?,
        None => None,
    };
    // With --metrics the run also collects one per-query trace (queue
    // wait / service split, pool attribution) for the JSON-lines export.
    let (m, results, traces) = if metrics.is_some() {
        run_serve_traced(engine, "cli", &elems, &trace, &run_cfg, &serve_cfg)
    } else {
        let (m, results) = run_serve(engine, "cli", &elems, &trace, &run_cfg, &serve_cfg);
        (m, results, Vec::new())
    };

    println!("engine:          {}", m.engine);
    if let Some(dir) = store.dir() {
        println!(
            "backend:         file ({}; io depth {}, readahead {} pages)",
            dir.display(),
            store.io_depth,
            store.readahead
        );
    }
    println!("dataset:         {path} ({} elements)", m.n_elements);
    println!(
        "trace:           {} queries ({:?} probes, seed {trace_seed})",
        m.queries, mix
    );
    println!(
        "serving:         {} worker{}, batch {}, hilbert batching {}",
        m.threads,
        if m.threads == 1 { "" } else { "s" },
        m.batch,
        if m.hilbert_batching { "on" } else { "off" }
    );
    if m.autobatch_retunes > 0 || (auto_batch && m.threads > 1) {
        println!(
            "auto-batch:      {} retunes ({} grew, {} shrank), final batch {}",
            m.autobatch_retunes, m.autobatch_grows, m.autobatch_shrinks, m.autobatch_final_batch
        );
    }
    println!(
        "throughput:      {:.0} queries/s  ({:.3}s wall + {:.3}s sim I/O)",
        m.qps,
        m.wall.as_secs_f64(),
        m.sim_io.as_secs_f64()
    );
    println!(
        "latency:         p50 {:.1}us  p95 {:.1}us  p99 {:.1}us",
        m.p50.as_secs_f64() * 1e6,
        m.p95.as_secs_f64() * 1e6,
        m.p99.as_secs_f64() * 1e6
    );
    if m.threads > 1 {
        println!(
            "queue wait:      p50 {:.1}us  p99 {:.1}us",
            m.queue_wait_p50.as_secs_f64() * 1e6,
            m.queue_wait_p99.as_secs_f64() * 1e6
        );
    }
    println!(
        "serve I/O:       {} pages ({} sequential, {} random — {:.1}% sequential), \
         {} pool hits ({:.1}% hit rate, {} cache)",
        m.pages_read,
        m.seq_reads,
        m.rand_reads,
        m.seq_read_fraction() * 100.0,
        m.pool_hits,
        m.pool_hit_fraction() * 100.0,
        if m.shared_cache { "shared" } else { "private" }
    );
    if m.shared_cache {
        println!(
            "cache:           {} policy, decoded tier {}/{} hits, lock contention {}/{}",
            m.cache_policy,
            m.decoded_hits,
            m.decoded_hits + m.decoded_misses,
            m.lock_contended,
            m.lock_acquisitions
        );
    }
    println!("result ids:      {}", m.result_ids);
    if let Some(mo) = &metrics {
        finish_metrics(mo, snap, &traces)?;
    }

    if flag(args, "--verify") {
        for (i, q) in trace.iter().enumerate() {
            let mut expected: Vec<u64> = elems
                .iter()
                .filter(|e| q.matches(&e.mbb))
                .map(|e| e.id)
                .collect();
            expected.sort_unstable();
            if results[i] != expected {
                return Err(format!("query {i} diverges from the full-scan oracle"));
            }
        }
        println!(
            "verify:          OK (all {} queries match the full scan)",
            m.queries
        );
    }
    Ok(())
}

fn cmd_mutate(args: &[String]) -> Result<(), String> {
    use tfm_datagen::{generate_mixed_trace, MixedOp, MixedTraceSpec};
    use tfm_serve::{serve_trace, MutableTransformersEngine, ServeConfig};
    use tfm_storage::{NoopLog, RedoLog, SharedPageCache};
    use transformers::{IndexConfig, MutableTransformers, MutationOp, TransformersIndex};

    let path = required(args, "--in")?;
    let ops: usize = parse(opt(args, "--ops").unwrap_or("1000"), "--ops")?;
    let write_permille: u32 = parse(
        opt(args, "--write-permille").unwrap_or("200"),
        "--write-permille",
    )?;
    let insert_permille: u32 = parse(
        opt(args, "--insert-permille").unwrap_or("700"),
        "--insert-permille",
    )?;
    for (name, v) in [
        ("--write-permille", write_permille),
        ("--insert-permille", insert_permille),
    ] {
        if v > 1000 {
            return Err(format!("{name} is a permille value (0..=1000), got {v}"));
        }
    }
    let threads = parse_worker_count(args, "--threads")?;
    let batch: usize = parse(opt(args, "--batch").unwrap_or("64"), "--batch")?;
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let seed: u64 = parse(opt(args, "--seed").unwrap_or("1"), "--seed")?;
    let page_size: usize = parse(opt(args, "--page-size").unwrap_or("2048"), "--page-size")?;
    let build_threads = parse_worker_count(args, "--build-threads")?;

    let elems = io::read_elements(path).map_err(|e| format!("reading {path}: {e}"))?;
    let live_ids: Vec<u64> = elems.iter().map(|e| e.id).collect();
    let trace = generate_mixed_trace(
        &MixedTraceSpec {
            ops,
            write_permille,
            insert_permille,
            ..MixedTraceSpec::uniform(ops, write_permille, seed)
        },
        &live_ids,
    );

    let disk = tfm_storage::Disk::in_memory(page_size);
    let cfg = IndexConfig::default().with_build_threads(build_threads);
    let idx = TransformersIndex::try_build(&disk, elems.clone(), &cfg)?;
    let overlay = MutableTransformers::adopt(&idx, &disk);
    let cache = SharedPageCache::new(&disk, tfm_storage::DEFAULT_POOL_PAGES);

    // The redo log: a real segmented WAL under --wal-dir, or the no-op
    // log (instantly "durable", nothing written) without one.
    let wal = match opt(args, "--wal-dir") {
        Some(dir) => Some(
            tfm_wal::Wal::open(dir, tfm_wal::WalOptions::default())
                .map_err(|e| format!("opening WAL in {dir}: {e}"))?,
        ),
        None => None,
    };
    let noop = NoopLog::new();
    let log: &dyn RedoLog = match &wal {
        Some(w) => w,
        None => &noop,
    };

    // Replay in arrival-order chunks: each chunk's writes apply as one
    // WAL transaction, then its probes are served on the worker pool.
    let engine = MutableTransformersEngine::new(&overlay, &cache);
    let serve_cfg = ServeConfig {
        threads,
        batch,
        ..ServeConfig::default()
    };
    let t = std::time::Instant::now();
    let mut inserted = 0u64;
    let mut deleted = 0u64;
    let mut batches = 0u64;
    let mut queries = 0u64;
    let mut result_ids = 0u64;
    for chunk in trace.chunks(batch) {
        let writes: Vec<MutationOp> = chunk
            .iter()
            .filter_map(|op| match op {
                MixedOp::Insert(e) => Some(MutationOp::Insert(*e)),
                MixedOp::Delete(id) => Some(MutationOp::Delete(*id)),
                MixedOp::Query(_) => None,
            })
            .collect();
        if !writes.is_empty() {
            let out = overlay.apply_batch(log, &cache, &writes);
            if out.rejected_inserts + out.missing_deletes > 0 {
                return Err(format!(
                    "generated trace must replay cleanly: {} rejected inserts, {} missing deletes",
                    out.rejected_inserts, out.missing_deletes
                ));
            }
            inserted += out.inserted;
            deleted += out.deleted;
            batches += 1;
        }
        let probes = tfm_datagen::queries_of(chunk);
        if !probes.is_empty() {
            let out = serve_trace(&engine, &probes, &serve_cfg);
            queries += out.stats.queries;
            result_ids += out.stats.result_ids;
        }
    }
    let wall = t.elapsed();

    println!("dataset:         {path} ({} elements)", elems.len());
    println!(
        "trace:           {ops} ops (seed {seed}, {write_permille}permille writes, \
         {insert_permille}permille of writes insert)"
    );
    println!(
        "mutations:       {inserted} inserts + {deleted} deletes in {batches} batches \
         (chunk {batch})"
    );
    println!(
        "index:           {} -> {} elements",
        elems.len(),
        overlay.len()
    );
    println!(
        "reads:           {queries} probes on {threads} worker{}, {result_ids} result ids",
        if threads == 1 { "" } else { "s" }
    );
    println!(
        "replay time:     {:.3}s  ({:.0} ops/s)",
        wall.as_secs_f64(),
        ops as f64 / wall.as_secs_f64().max(1e-9)
    );
    if let Some(w) = &wal {
        let s = w.stats();
        println!(
            "wal:             {} records, {} bytes, {} commits, {} fsyncs, {} segment{} in {}",
            s.records,
            s.bytes,
            s.commits,
            s.fsyncs,
            s.segments,
            if s.segments == 1 { "" } else { "s" },
            w.dir().display()
        );
    } else {
        println!("wal:             off (no --wal-dir; mutations unlogged)");
    }

    if flag(args, "--verify") {
        // Replay the trace over a plain map to get the mutated dataset,
        // then hold every probe of the trace to the full-scan oracle.
        let mut live: std::collections::BTreeMap<u64, tfm_geom::SpatialElement> =
            elems.iter().map(|e| (e.id, *e)).collect();
        for op in &trace {
            match op {
                MixedOp::Insert(e) => {
                    live.insert(e.id, *e);
                }
                MixedOp::Delete(id) => {
                    live.remove(id);
                }
                MixedOp::Query(_) => {}
            }
        }
        let probes = tfm_datagen::queries_of(&trace);
        let out = serve_trace(&engine, &probes, &serve_cfg);
        for (i, q) in probes.iter().enumerate() {
            let mut expected: Vec<u64> = live
                .values()
                .filter(|e| q.matches(&e.mbb))
                .map(|e| e.id)
                .collect();
            expected.sort_unstable();
            if out.results[i] != expected {
                return Err(format!(
                    "probe {i} diverges from the full scan of the mutated dataset"
                ));
            }
        }
        println!(
            "verify:          OK (all {} probes match the mutated full scan)",
            probes.len()
        );
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = required(args, "--in")?;
    let elems = io::read_elements(path).map_err(|e| format!("reading {path}: {e}"))?;
    println!("file:      {path}");
    println!("elements:  {}", elems.len());
    if elems.is_empty() {
        return Ok(());
    }
    let extent = tfm_geom::Aabb::union_all(elems.iter().map(|e| e.mbb));
    println!(
        "extent:    [{:.1}, {:.1}, {:.1}] .. [{:.1}, {:.1}, {:.1}]",
        extent.min.x, extent.min.y, extent.min.z, extent.max.x, extent.max.y, extent.max.z
    );
    let mean_side: f64 = elems
        .iter()
        .map(|e| (e.mbb.extent(0) + e.mbb.extent(1) + e.mbb.extent(2)) / 3.0)
        .sum::<f64>()
        / elems.len() as f64;
    println!("mean side: {mean_side:.3}");
    // Density sketch: elements per z-slab (10 slabs).
    let mut hist = [0usize; 10];
    for e in &elems {
        let t = ((e.mbb.center().z - extent.min.z) / extent.extent(2).max(1e-12)).clamp(0.0, 1.0);
        hist[((t * 10.0) as usize).min(9)] += 1;
    }
    let max = hist.iter().copied().max().unwrap_or(1).max(1);
    println!("z-distribution:");
    for (i, c) in hist.iter().enumerate() {
        println!("  slab {i}: {:>8} {}", c, "#".repeat(c * 40 / max));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_parsing() {
        let args: Vec<String> = ["--count", "5", "--flag"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(opt(&args, "--count"), Some("5"));
        assert_eq!(opt(&args, "--missing"), None);
        assert!(flag(&args, "--flag"));
        assert!(!flag(&args, "--other"));
    }

    #[test]
    fn approach_names() {
        for name in [
            "transformers",
            "no-tr",
            "pbsm",
            "rtree",
            "gipsy",
            "sssj",
            "s3",
        ] {
            assert!(parse_approach(name).is_ok(), "{name}");
        }
        assert!(parse_approach("bogus").is_err());
    }

    #[test]
    fn zero_threads_is_rejected() {
        // `--threads 0` must fail fast with a clear message, before any
        // file I/O or scheduler construction happens.
        let args: Vec<String> = [
            "--a",
            "nonexistent.a",
            "--b",
            "nonexistent.b",
            "--threads",
            "0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = cmd_join(&args).expect_err("--threads 0 must be rejected");
        assert!(
            err.contains("--threads must be at least 1"),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn zero_build_threads_is_rejected() {
        let args: Vec<String> = ["--a", "x.a", "--b", "x.b", "--build-threads", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = cmd_join(&args).expect_err("--build-threads 0 must be rejected");
        assert!(err.contains("--build-threads must be at least 1"), "{err}");
        let args: Vec<String> = ["--in", "x.elems", "--build-threads", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = cmd_build(&args).expect_err("--build-threads 0 must be rejected");
        assert!(err.contains("--build-threads must be at least 1"), "{err}");
    }

    #[test]
    fn build_command_end_to_end() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tfm_cli_build_{}.elems", std::process::id()));
        let gen_args: Vec<String> = [
            "--count",
            "500",
            "--out",
            path.to_str().unwrap(),
            "--seed",
            "7",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_generate(&gen_args).unwrap();
        for threads in ["1", "4"] {
            let build_args: Vec<String> = [
                "--in",
                path.to_str().unwrap(),
                "--build-threads",
                threads,
                "--unit-capacity",
                "16",
                "--node-capacity",
                "8",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            cmd_build(&build_args).unwrap_or_else(|e| panic!("threads {threads}: {e}"));
        }
        // Invalid capacities surface the validation error, not a panic.
        let bad_args: Vec<String> = ["--in", path.to_str().unwrap(), "--unit-capacity", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = cmd_build(&bad_args).expect_err("unit capacity 0 must fail");
        assert!(err.contains("unit_capacity"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_flags_join_end_to_end() {
        let dir = std::env::temp_dir();
        let pa = dir.join(format!("tfm_cli_par_a_{}.elems", std::process::id()));
        let pb = dir.join(format!("tfm_cli_par_b_{}.elems", std::process::id()));
        for (path, seed) in [(&pa, "31"), (&pb, "32")] {
            let gen_args: Vec<String> = [
                "--count",
                "400",
                "--out",
                path.to_str().unwrap(),
                "--seed",
                seed,
                "--max-side",
                "8",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            cmd_generate(&gen_args).unwrap();
        }
        // Every escape-hatch combination must still verify against the
        // nested-loop oracle.
        for extra in [&[][..], &["--no-transform"][..], &["--no-prune"][..]] {
            let mut join_args: Vec<String> = [
                "--a",
                pa.to_str().unwrap(),
                "--b",
                pb.to_str().unwrap(),
                "--threads",
                "2",
                "--build-threads",
                "2",
                "--verify",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            join_args.extend(extra.iter().map(|s| s.to_string()));
            cmd_join(&join_args).unwrap_or_else(|e| panic!("{extra:?}: {e}"));
        }
        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
    }

    #[test]
    fn serve_command_end_to_end() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tfm_cli_serve_{}.elems", std::process::id()));
        let gen_args: Vec<String> = [
            "--count",
            "800",
            "--out",
            path.to_str().unwrap(),
            "--seed",
            "21",
            "--max-side",
            "6",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_generate(&gen_args).unwrap();
        // Every engine serves the generated trace and verifies against the
        // full-scan oracle, batched and unbatched, 1 and 2 workers.
        for engine in ["transformers", "gipsy", "rtree"] {
            for extra in [&[][..], &["--no-hilbert", "--threads", "2"][..]] {
                let mut serve_args: Vec<String> = [
                    "--in",
                    path.to_str().unwrap(),
                    "--engine",
                    engine,
                    "--queries",
                    "60",
                    "--batch",
                    "16",
                    "--verify",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect();
                serve_args.extend(extra.iter().map(|s| s.to_string()));
                cmd_serve(&serve_args).unwrap_or_else(|e| panic!("{engine} {extra:?}: {e}"));
            }
        }
        // Bad flags fail fast with clear messages.
        let bad: Vec<String> = ["--in", path.to_str().unwrap(), "--engine", "bogus"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_serve(&bad).unwrap_err().contains("serve engine"));
        let bad: Vec<String> = ["--in", path.to_str().unwrap(), "--threads", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_serve(&bad).unwrap_err().contains("--threads"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_serve_command_end_to_end() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tfm_cli_shard_{}.elems", std::process::id()));
        let gen_args: Vec<String> = [
            "--count",
            "700",
            "--out",
            path.to_str().unwrap(),
            "--seed",
            "61",
            "--max-side",
            "6",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_generate(&gen_args).unwrap();
        // Sharded serving verifies against the full-scan oracle for both
        // partitioners and a couple of cluster shapes.
        for (shards, partitioner, threads) in [
            ("1", "hilbert", "1"),
            ("3", "hilbert", "2"),
            ("4", "str", "1"),
        ] {
            let serve_args: Vec<String> = [
                "--in",
                path.to_str().unwrap(),
                "--queries",
                "60",
                "--batch",
                "16",
                "--shards",
                shards,
                "--shard-partitioner",
                partitioner,
                "--threads",
                threads,
                "--verify",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            cmd_serve(&serve_args).unwrap_or_else(|e| panic!("shards={shards} {partitioner}: {e}"));
        }
        // Bad shard flags fail fast.
        let bad: Vec<String> = ["--in", path.to_str().unwrap(), "--shards", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_serve(&bad).unwrap_err().contains("--shards"));
        let bad: Vec<String> = [
            "--in",
            path.to_str().unwrap(),
            "--shards",
            "2",
            "--shard-partitioner",
            "bogus",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(cmd_serve(&bad).unwrap_err().contains("shard partitioner"));
        let bad: Vec<String> = ["--in", path.to_str().unwrap(), "--shed"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_serve(&bad).unwrap_err().contains("require --shards"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mutate_command_end_to_end() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let path = dir.join(format!("tfm_cli_mutate_{pid}.elems"));
        let wal_dir = dir.join(format!("tfm_cli_mutate_wal_{pid}"));
        std::fs::remove_dir_all(&wal_dir).ok();
        cmd_generate(&sv(&[
            "--count",
            "600",
            "--out",
            path.to_str().unwrap(),
            "--seed",
            "51",
            "--max-side",
            "6",
        ]))
        .unwrap();

        // Logged and unlogged replays, single- and multi-worker reads,
        // all verified against the mutated full-scan oracle.
        for extra in [
            &[][..],
            &["--threads", "2", "--wal-dir"][..], // dir appended below
        ] {
            let mut mutate_args = sv(&[
                "--in",
                path.to_str().unwrap(),
                "--ops",
                "400",
                "--write-permille",
                "400",
                "--batch",
                "32",
                "--verify",
            ]);
            mutate_args.extend(extra.iter().map(|s| s.to_string()));
            if extra.contains(&"--wal-dir") {
                mutate_args.push(wal_dir.to_str().unwrap().to_string());
            }
            cmd_mutate(&mutate_args).unwrap_or_else(|e| panic!("{extra:?}: {e}"));
        }
        // The logged run left real segment files behind.
        let segments = std::fs::read_dir(&wal_dir)
            .expect("wal dir exists")
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
            .count();
        assert!(segments > 0, "no WAL segments written");

        // Bad flags fail fast.
        let bad = sv(&["--in", path.to_str().unwrap(), "--write-permille", "1500"]);
        assert!(cmd_mutate(&bad).unwrap_err().contains("permille"));
        let bad = sv(&["--in", path.to_str().unwrap(), "--batch", "0"]);
        assert!(cmd_mutate(&bad).unwrap_err().contains("--batch"));
        let bad = sv(&["--in", path.to_str().unwrap(), "--threads", "0"]);
        assert!(cmd_mutate(&bad).unwrap_err().contains("--threads"));

        std::fs::remove_dir_all(&wal_dir).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_export_end_to_end() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let path = dir.join(format!("tfm_cli_metrics_{pid}.elems"));
        let jsonl = dir.join(format!("tfm_cli_metrics_{pid}.jsonl"));
        let prom = dir.join(format!("tfm_cli_metrics_{pid}.prom"));
        let gen_args: Vec<String> = [
            "--count",
            "600",
            "--out",
            path.to_str().unwrap(),
            "--seed",
            "41",
            "--max-side",
            "6",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_generate(&gen_args).unwrap();

        // Serve with a periodic snapshot thread: the accumulated file must
        // parse and carry cache, queue-wait, latency-histogram and
        // per-stage build metrics (the ISSUE's acceptance shape).
        let serve_args: Vec<String> = [
            "--in",
            path.to_str().unwrap(),
            "--queries",
            "80",
            "--threads",
            "2",
            "--batch",
            "16",
            "--metrics",
            jsonl.to_str().unwrap(),
            "--metrics-interval-ms",
            "5",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_serve(&serve_args).unwrap();
        let text = std::fs::read_to_string(&jsonl).unwrap();
        let snap = tfm_obs::MetricsSnapshot::parse_jsonl(&text).unwrap();
        for name in [
            tfm_obs::names::CACHE_HITS,
            tfm_obs::names::SERVE_QUERIES,
            tfm_obs::names::CACHE_LOCK_ACQUISITIONS,
        ] {
            assert!(snap.counter(name).is_some(), "missing counter {name}");
        }
        let build_stage = format!("{}_nanos", tfm_obs::names::BUILD_UNIT_STR);
        for name in [
            tfm_obs::names::SERVE_SERVICE_NANOS,
            tfm_obs::names::SERVE_QUEUE_WAIT_NANOS,
            build_stage.as_str(),
        ] {
            assert!(snap.histogram(name).is_some(), "missing histogram {name}");
        }
        // Per-query trace lines ride along in the same file.
        assert!(
            text.lines().any(|l| l.contains("\"trace_id\"")),
            "no trace lines in export"
        );

        // Join with a Prometheus export.
        let join_args: Vec<String> = [
            "--a",
            path.to_str().unwrap(),
            "--b",
            path.to_str().unwrap(),
            "--threads",
            "2",
            "--metrics",
            prom.to_str().unwrap(),
            "--metrics-format",
            "prometheus",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_join(&join_args).unwrap();
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(text.contains("# TYPE cache_hits counter"), "{text}");
        assert!(text.contains("join_wall_nanos_bucket"), "{text}");

        // Bad flag combinations fail fast.
        let bad: Vec<String> = [
            "--in",
            path.to_str().unwrap(),
            "--metrics",
            jsonl.to_str().unwrap(),
            "--metrics-format",
            "xml",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(cmd_serve(&bad).unwrap_err().contains("metrics format"));
        let bad: Vec<String> = ["--in", path.to_str().unwrap(), "--metrics-interval-ms", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_serve(&bad).unwrap_err().contains("require --metrics"));

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&jsonl).ok();
        std::fs::remove_file(&prom).ok();
    }

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn io_backend_flags_are_validated() {
        // `--io-depth 0` fails fast like `--threads 0`, before any file
        // I/O happens.
        let err = cmd_serve(&sv(&[
            "--in",
            "x.elems",
            "--backend",
            "file",
            "--io-depth",
            "0",
        ]))
        .expect_err("--io-depth 0 must be rejected");
        assert!(err.contains("--io-depth must be at least 1"), "{err}");

        // The page-image and prefetch flags are orphans on the default
        // mem backend — readahead over in-memory pages is meaningless.
        for orphan in [
            &["--io-depth", "4"][..],
            &["--readahead", "64"][..],
            &["--store", "/tmp/x"][..],
        ] {
            let mut serve_args = sv(&["--in", "x.elems"]);
            serve_args.extend(orphan.iter().map(|s| s.to_string()));
            let err = cmd_serve(&serve_args).expect_err("mem-backend orphan must be rejected");
            assert!(err.contains("requires --backend file"), "{err}");
            let mut join_args = sv(&["--a", "x.a", "--b", "x.b"]);
            join_args.extend(orphan.iter().map(|s| s.to_string()));
            let err = cmd_join(&join_args).expect_err("mem-backend orphan must be rejected");
            assert!(err.contains("requires --backend file"), "{err}");
        }

        // Unknown backend names fail with the candidate list.
        let err = cmd_serve(&sv(&["--in", "x.elems", "--backend", "nvme"])).unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");

        // `tfm build` writes the image but has no prefetch pipeline and
        // no read cache.
        let err = cmd_build(&sv(&[
            "--in",
            "x.elems",
            "--backend",
            "file",
            "--io-depth",
            "2",
        ]))
        .expect_err("build must reject prefetch knobs");
        assert!(err.contains("prefetch"), "{err}");
        let err = cmd_build(&sv(&["--in", "x.elems", "--cache-policy", "2q"]))
            .expect_err("build must reject --cache-policy");
        assert!(err.contains("cache-policy"), "{err}");
    }

    #[test]
    fn cache_policy_and_auto_batch_flags_are_validated() {
        // Unknown policy names fail with the candidate list, on both
        // commands that read through the shared cache.
        let err = cmd_join(&sv(&["--a", "x.a", "--b", "x.b", "--cache-policy", "lru"]))
            .expect_err("unknown policy must be rejected");
        assert!(err.contains("unknown cache policy"), "{err}");
        let err = cmd_serve(&sv(&["--in", "x.elems", "--cache-policy", "arc"]))
            .expect_err("unknown policy must be rejected");
        assert!(err.contains("unknown cache policy"), "{err}");

        // The sharded cluster keeps per-shard CLOCK caches and a fixed
        // batch loop: both knobs are orphans with --shards.
        let err = cmd_serve(&sv(&["--in", "x.elems", "--shards", "2", "--auto-batch"]))
            .expect_err("--auto-batch must be rejected with --shards");
        assert!(err.contains("--shards"), "{err}");
        let err = cmd_serve(&sv(&[
            "--in",
            "x.elems",
            "--shards",
            "2",
            "--cache-policy",
            "2q",
        ]))
        .expect_err("--cache-policy must be rejected with --shards");
        assert!(err.contains("unsharded"), "{err}");
    }

    #[test]
    fn file_backend_commands_end_to_end() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let elems = dir.join(format!("tfm_cli_io_{pid}.elems"));
        let store = dir.join(format!("tfm_cli_io_store_{pid}"));
        let store_s = store.to_str().unwrap().to_string();
        cmd_generate(&sv(&[
            "--count",
            "600",
            "--out",
            elems.to_str().unwrap(),
            "--seed",
            "91",
            "--max-side",
            "6",
        ]))
        .unwrap();

        // Build writes a real page image and reports it.
        cmd_build(&sv(&[
            "--in",
            elems.to_str().unwrap(),
            "--backend",
            "file",
            "--store",
            &store_s,
        ]))
        .unwrap();
        let image = store.join("build.pages");
        assert!(image.exists(), "build must write {}", image.display());
        assert!(image.metadata().unwrap().len() > 0, "empty page image");

        // Serve through the file backend with the prefetch pipeline on;
        // results verify against the full-scan oracle.
        cmd_serve(&sv(&[
            "--in",
            elems.to_str().unwrap(),
            "--backend",
            "file",
            "--store",
            &store_s,
            "--threads",
            "2",
            "--io-depth",
            "2",
            "--readahead",
            "64",
            "--queries",
            "60",
            "--batch",
            "16",
            "--auto-batch",
            "--cache-policy",
            "2q",
            "--verify",
        ]))
        .unwrap();
        assert!(store.join("serve.pages").exists(), "serve page image");

        // Sharded cluster: one page image per shard.
        cmd_serve(&sv(&[
            "--in",
            elems.to_str().unwrap(),
            "--backend",
            "file",
            "--store",
            &store_s,
            "--shards",
            "2",
            "--threads",
            "2",
            "--io-depth",
            "2",
            "--readahead",
            "32",
            "--queries",
            "60",
            "--batch",
            "16",
            "--verify",
        ]))
        .unwrap();
        for shard in 0..2 {
            assert!(
                store.join(format!("shard{shard}.pages")).exists(),
                "shard{shard} page image"
            );
        }

        // Parallel join over file-backed indexes with the prefetch
        // pipeline and 2Q admission on verifies against the nested-loop
        // oracle — prefetch and policy must not change results.
        cmd_join(&sv(&[
            "--a",
            elems.to_str().unwrap(),
            "--b",
            elems.to_str().unwrap(),
            "--backend",
            "file",
            "--store",
            &store_s,
            "--threads",
            "2",
            "--io-depth",
            "2",
            "--readahead",
            "64",
            "--cache-policy",
            "2q",
            "--verify",
        ]))
        .unwrap();
        assert!(store.join("tfm_a.pages").exists(), "join page image");

        std::fs::remove_dir_all(&store).ok();
        std::fs::remove_file(&elems).ok();
    }

    #[test]
    fn skew_file_round_trips_through_join() {
        let dir = std::env::temp_dir();
        let pa = dir.join(format!("tfm_cli_skew_a_{}.elems", std::process::id()));
        let pb = dir.join(format!("tfm_cli_skew_b_{}.elems", std::process::id()));
        let skew = dir.join(format!("tfm_cli_skew_{}.json", std::process::id()));
        std::fs::remove_file(&skew).ok();
        for (path, seed) in [(&pa, "71"), (&pb, "72")] {
            let gen_args: Vec<String> = [
                "--count",
                "400",
                "--out",
                path.to_str().unwrap(),
                "--seed",
                seed,
                "--max-side",
                "8",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            cmd_generate(&gen_args).unwrap();
        }
        let join_args: Vec<String> = [
            "--a",
            pa.to_str().unwrap(),
            "--b",
            pb.to_str().unwrap(),
            "--threads",
            "2",
            "--skew-file",
            skew.to_str().unwrap(),
            "--verify",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        // First run records, second feeds back; both must verify.
        cmd_join(&join_args).unwrap();
        assert!(skew.exists(), "sidecar must be written");
        cmd_join(&join_args).unwrap();
        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
        std::fs::remove_file(&skew).ok();
    }

    #[test]
    fn generate_and_join_end_to_end() {
        let dir = std::env::temp_dir();
        let pa = dir.join(format!("tfm_cli_a_{}.elems", std::process::id()));
        let pb = dir.join(format!("tfm_cli_b_{}.elems", std::process::id()));
        let gen_args: Vec<String> = [
            "--count",
            "300",
            "--out",
            pa.to_str().unwrap(),
            "--seed",
            "1",
            "--max-side",
            "8",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_generate(&gen_args).unwrap();
        let gen_args: Vec<String> = [
            "--count",
            "300",
            "--out",
            pb.to_str().unwrap(),
            "--seed",
            "2",
            "--max-side",
            "8",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_generate(&gen_args).unwrap();

        let join_args: Vec<String> = [
            "--a",
            pa.to_str().unwrap(),
            "--b",
            pb.to_str().unwrap(),
            "--approach",
            "transformers",
            "--verify",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        cmd_join(&join_args).unwrap();

        let info_args: Vec<String> = ["--in", pa.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        cmd_info(&info_args).unwrap();

        std::fs::remove_file(&pa).ok();
        std::fs::remove_file(&pb).ok();
    }
}
