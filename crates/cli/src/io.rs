//! Flat element-file format for the CLI: a little-endian header (`magic`,
//! element count) followed by fixed 56-byte records (id + two corners).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use tfm_geom::{Aabb, Point3, SpatialElement};

const MAGIC: &[u8; 8] = b"TFMELEM1";

/// Writes a dataset to `path`.
pub fn write_elements<P: AsRef<Path>>(path: P, elements: &[SpatialElement]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(elements.len() as u64).to_le_bytes())?;
    for e in elements {
        w.write_all(&e.id.to_le_bytes())?;
        for v in [
            e.mbb.min.x,
            e.mbb.min.y,
            e.mbb.min.z,
            e.mbb.max.x,
            e.mbb.max.y,
            e.mbb.max.z,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads a dataset from `path`.
pub fn read_elements<P: AsRef<Path>>(path: P) -> io::Result<Vec<SpatialElement>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a tfm element file (bad magic)",
        ));
    }
    let mut count_buf = [0u8; 8];
    r.read_exact(&mut count_buf)?;
    let count = u64::from_le_bytes(count_buf) as usize;
    let mut out = Vec::with_capacity(count);
    let mut rec = [0u8; 56];
    for _ in 0..count {
        r.read_exact(&mut rec)?;
        let id = u64::from_le_bytes(rec[0..8].try_into().expect("8 bytes"));
        let f =
            |i: usize| f64::from_le_bytes(rec[8 + i * 8..16 + i * 8].try_into().expect("8 bytes"));
        let mbb = Aabb {
            min: Point3::new(f(0), f(1), f(2)),
            max: Point3::new(f(3), f(4), f(5)),
        };
        if !mbb.is_valid() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("element {id} has an invalid bounding box"),
            ));
        }
        out.push(SpatialElement::new(id, mbb));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_datagen::{generate, DatasetSpec};

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tfm_cli_{}_{name}", std::process::id()))
    }

    #[test]
    fn roundtrip() {
        let path = temp("roundtrip.elems");
        let elems = generate(&DatasetSpec::uniform(500, 1));
        write_elements(&path, &elems).unwrap();
        assert_eq!(read_elements(&path).unwrap(), elems);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_roundtrip() {
        let path = temp("empty.elems");
        write_elements(&path, &[]).unwrap();
        assert!(read_elements(&path).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = temp("bad.elems");
        std::fs::write(&path, b"NOTMAGIC\0\0\0\0\0\0\0\0").unwrap();
        assert!(read_elements(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let path = temp("trunc.elems");
        let elems = generate(&DatasetSpec::uniform(10, 2));
        write_elements(&path, &elems).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 20]).unwrap();
        assert!(read_elements(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
