//! Axis-aligned minimum bounding boxes (the paper's "MBB").

use crate::Point3;
use serde::{Deserialize, Serialize};

/// An axis-aligned minimum bounding box in 3-D space.
///
/// Every spatial element, space unit (page), and space node of the
/// TRANSFORMERS hierarchy is summarized by one or two of these boxes
/// (paper §IV: *page MBB* and *partition MBB*).
///
/// Boxes are closed: two boxes that merely touch on a face, edge or corner
/// are considered intersecting. This matters for the connectivity self-join
/// (paper §IV, "Connectivity"), which must link *adjacent* partitions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Point3,
    /// Maximum corner.
    pub max: Point3,
}

impl Aabb {
    /// Creates a box from its two corners.
    ///
    /// # Panics
    /// In debug builds, panics if `min` exceeds `max` in any dimension or if
    /// any coordinate is not finite.
    #[inline]
    pub fn new(min: Point3, max: Point3) -> Self {
        debug_assert!(
            min.is_finite() && max.is_finite(),
            "non-finite Aabb corners"
        );
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "Aabb min {min:?} exceeds max {max:?}"
        );
        Self { min, max }
    }

    /// Creates a box from the component-wise min/max of two arbitrary corners.
    #[inline]
    pub fn from_corners(a: Point3, b: Point3) -> Self {
        Self::new(a.min(&b), a.max(&b))
    }

    /// The degenerate box containing a single point.
    #[inline]
    pub fn from_point(p: Point3) -> Self {
        Self::new(p, p)
    }

    /// An "empty" box that is the identity of [`Aabb::union`].
    ///
    /// It intersects nothing and contains nothing. Use it as the starting
    /// accumulator when folding boxes together.
    #[inline]
    pub fn empty() -> Self {
        Self {
            min: Point3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY),
            max: Point3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// True if this is the empty box (identity of union).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Computes the bounding box of an iterator of boxes.
    ///
    /// Returns [`Aabb::empty`] for an empty iterator.
    pub fn union_all<I: IntoIterator<Item = Aabb>>(boxes: I) -> Aabb {
        boxes
            .into_iter()
            .fold(Aabb::empty(), |acc, b| acc.union(&b))
    }

    /// Side length along dimension `dim`.
    #[inline]
    pub fn extent(&self, dim: usize) -> f64 {
        self.max.coord(dim) - self.min.coord(dim)
    }

    /// Center point of the box.
    #[inline]
    pub fn center(&self) -> Point3 {
        Point3::new(
            (self.min.x + self.max.x) * 0.5,
            (self.min.y + self.max.y) * 0.5,
            (self.min.z + self.max.z) * 0.5,
        )
    }

    /// Volume of the box. Degenerate (flat) boxes have zero volume; the empty
    /// box reports zero as well.
    #[inline]
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.extent(0) * self.extent(1) * self.extent(2)
    }

    /// Surface area of the box (used by some R-Tree heuristics).
    #[inline]
    pub fn surface_area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let (dx, dy, dz) = (self.extent(0), self.extent(1), self.extent(2));
        2.0 * (dx * dy + dy * dz + dz * dx)
    }

    /// Closed-interval intersection test. Touching boxes intersect.
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
            && self.min.z <= other.max.z
            && other.min.z <= self.max.z
    }

    /// True if `other` lies entirely inside `self` (closed intervals).
    #[inline]
    pub fn contains(&self, other: &Aabb) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.min.z <= other.min.z
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
            && self.max.z >= other.max.z
    }

    /// True if point `p` lies inside the box (closed intervals).
    #[inline]
    pub fn contains_point(&self, p: &Point3) -> bool {
        self.min.x <= p.x
            && p.x <= self.max.x
            && self.min.y <= p.y
            && p.y <= self.max.y
            && self.min.z <= p.z
            && p.z <= self.max.z
    }

    /// Smallest box covering both inputs. Union with the empty box is the
    /// other operand.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(&other.min),
            max: self.max.max(&other.max),
        }
    }

    /// The overlap region of two boxes, or `None` if they are disjoint.
    #[inline]
    pub fn intersection(&self, other: &Aabb) -> Option<Aabb> {
        if !self.intersects(other) {
            return None;
        }
        Some(Aabb {
            min: self.min.max(&other.min),
            max: self.max.min(&other.max),
        })
    }

    /// Squared minimum distance between two boxes (0 if they intersect).
    ///
    /// This is the metric the adaptive walk minimizes when navigating the
    /// follower's connectivity graph towards the pivot (paper Alg. 1:
    /// `distance(fr.partitionMBB, pivot)`).
    #[inline]
    pub fn min_distance_sq(&self, other: &Aabb) -> f64 {
        let mut d = 0.0;
        for dim in 0..3 {
            let gap = (other.min.coord(dim) - self.max.coord(dim))
                .max(self.min.coord(dim) - other.max.coord(dim))
                .max(0.0);
            d += gap * gap;
        }
        d
    }

    /// Minimum distance between two boxes (0 if they intersect).
    #[inline]
    pub fn min_distance(&self, other: &Aabb) -> f64 {
        self.min_distance_sq(other).sqrt()
    }

    /// Grows the box by `eps` in every direction. Used to turn "adjacency"
    /// into "overlap" for the connectivity self-join.
    #[inline]
    pub fn inflate(&self, eps: f64) -> Aabb {
        Aabb {
            min: Point3::new(self.min.x - eps, self.min.y - eps, self.min.z - eps),
            max: Point3::new(self.max.x + eps, self.max.y + eps, self.max.z + eps),
        }
    }

    /// True if all corners are finite and min ≤ max in every dimension.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.min.is_finite()
            && self.max.is_finite()
            && self.min.x <= self.max.x
            && self.min.y <= self.max.y
            && self.min.z <= self.max.z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx(min: (f64, f64, f64), max: (f64, f64, f64)) -> Aabb {
        Aabb::new(
            Point3::new(min.0, min.1, min.2),
            Point3::new(max.0, max.1, max.2),
        )
    }

    #[test]
    fn touching_boxes_intersect() {
        let a = bx((0.0, 0.0, 0.0), (1.0, 1.0, 1.0));
        let b = bx((1.0, 0.0, 0.0), (2.0, 1.0, 1.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert_eq!(a.min_distance(&b), 0.0);
    }

    #[test]
    fn disjoint_boxes_do_not_intersect() {
        let a = bx((0.0, 0.0, 0.0), (1.0, 1.0, 1.0));
        let b = bx((2.0, 2.0, 2.0), (3.0, 3.0, 3.0));
        assert!(!a.intersects(&b));
        assert_eq!(a.intersection(&b), None);
        // gap is sqrt(3) along the diagonal
        assert!((a.min_distance(&b) - 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn intersection_region() {
        let a = bx((0.0, 0.0, 0.0), (2.0, 2.0, 2.0));
        let b = bx((1.0, 1.0, 1.0), (3.0, 3.0, 3.0));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, bx((1.0, 1.0, 1.0), (2.0, 2.0, 2.0)));
    }

    #[test]
    fn union_covers_both() {
        let a = bx((0.0, 0.0, 0.0), (1.0, 1.0, 1.0));
        let b = bx((2.0, -1.0, 0.5), (3.0, 0.5, 4.0));
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
        assert_eq!(u, bx((0.0, -1.0, 0.0), (3.0, 1.0, 4.0)));
    }

    #[test]
    fn empty_box_behaviour() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0.0);
        let a = bx((0.0, 0.0, 0.0), (1.0, 1.0, 1.0));
        assert_eq!(e.union(&a), a);
        assert!(!e.intersects(&a));
        assert!(!a.intersects(&e));
    }

    #[test]
    fn union_all_of_nothing_is_empty() {
        assert!(Aabb::union_all(std::iter::empty()).is_empty());
    }

    #[test]
    fn volume_and_surface() {
        let a = bx((0.0, 0.0, 0.0), (2.0, 3.0, 4.0));
        assert_eq!(a.volume(), 24.0);
        assert_eq!(a.surface_area(), 2.0 * (6.0 + 12.0 + 8.0));
    }

    #[test]
    fn contains_point_is_closed() {
        let a = bx((0.0, 0.0, 0.0), (1.0, 1.0, 1.0));
        assert!(a.contains_point(&Point3::new(1.0, 1.0, 1.0)));
        assert!(a.contains_point(&Point3::new(0.0, 0.5, 0.0)));
        assert!(!a.contains_point(&Point3::new(1.0001, 0.5, 0.5)));
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let a = bx((1.0, 1.0, 1.0), (2.0, 2.0, 2.0)).inflate(0.5);
        assert_eq!(a, bx((0.5, 0.5, 0.5), (2.5, 2.5, 2.5)));
    }

    #[test]
    fn from_corners_normalizes() {
        let a = Aabb::from_corners(Point3::new(2.0, 0.0, 5.0), Point3::new(1.0, 3.0, 4.0));
        assert_eq!(a, bx((1.0, 0.0, 4.0), (2.0, 3.0, 5.0)));
    }

    #[test]
    fn min_distance_single_axis_gap() {
        let a = bx((0.0, 0.0, 0.0), (1.0, 1.0, 1.0));
        let b = bx((4.0, 0.0, 0.0), (5.0, 1.0, 1.0));
        assert_eq!(a.min_distance(&b), 3.0);
    }

    #[test]
    fn degenerate_point_box() {
        let p = Point3::new(0.5, 0.5, 0.5);
        let b = Aabb::from_point(p);
        assert_eq!(b.volume(), 0.0);
        assert!(b.contains_point(&p));
        let a = bx((0.0, 0.0, 0.0), (1.0, 1.0, 1.0));
        assert!(a.intersects(&b));
    }
}
