//! 3-D Hilbert space-filling curve.
//!
//! TRANSFORMERS indexes the Hilbert value of the center point of every space
//! node with a B+-Tree and uses it to find a walk start descriptor close to
//! the pivot (paper §V, "Adaptive Walk"). The Hilbert curve is preferred over
//! simpler curves (e.g. Z-order) because consecutive curve positions are
//! always spatially adjacent, making the located start descriptor a good
//! entry point for the connectivity-graph walk.
//!
//! The implementation follows Skilling's transpose algorithm
//! (*J. Skilling, "Programming the Hilbert curve", AIP Conf. Proc. 707,
//! 2004*): axes are converted to a "transposed" Hilbert representation in
//! place, then bit-interleaved into a single integer.

use crate::{Aabb, Point3};

/// Bits of resolution per dimension. `3 * BITS = 63` bits fit in a `u64`.
pub const BITS: u32 = 21;

/// Largest representable grid coordinate per dimension.
pub const MAX_COORD: u32 = (1 << BITS) - 1;

/// Converts grid coordinates (each `< 2^BITS`) to a Hilbert index.
///
/// The mapping is a bijection between `[0, 2^BITS)^3` and
/// `[0, 2^(3·BITS))`: see the property tests.
pub fn index_from_coords(coords: [u32; 3]) -> u64 {
    debug_assert!(coords.iter().all(|&c| c <= MAX_COORD));
    let mut x = coords;
    axes_to_transpose(&mut x, BITS);
    interleave(&x, BITS)
}

/// Inverse of [`index_from_coords`].
pub fn coords_from_index(index: u64) -> [u32; 3] {
    let mut x = deinterleave(index, BITS);
    transpose_to_axes(&mut x, BITS);
    x
}

/// Maps a point in `universe` to its Hilbert index on the `2^BITS` grid.
///
/// Points outside the universe are clamped onto its boundary; a degenerate
/// universe dimension maps to grid coordinate 0.
pub fn index_of_point(p: &Point3, universe: &Aabb) -> u64 {
    let mut coords = [0u32; 3];
    for (dim, coord) in coords.iter_mut().enumerate() {
        let lo = universe.min.coord(dim);
        let hi = universe.max.coord(dim);
        let extent = hi - lo;
        let t = if extent > 0.0 {
            ((p.coord(dim) - lo) / extent).clamp(0.0, 1.0)
        } else {
            0.0
        };
        *coord = (t * MAX_COORD as f64).round() as u32;
    }
    index_from_coords(coords)
}

/// Skilling: axes -> transposed Hilbert representation (in place).
fn axes_to_transpose(x: &mut [u32; 3], bits: u32) {
    let n = 3;
    let m = 1u32 << (bits - 1);

    // Inverse undo excess work.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert low bits of x[0]
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }

    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0;
    q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// Skilling: transposed Hilbert representation -> axes (in place).
fn transpose_to_axes(x: &mut [u32; 3], bits: u32) {
    let n = 3;
    let m = 1u32 << (bits - 1);

    // Gray decode by H ^ (H/2).
    let mut t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;

    // Undo excess work.
    let mut q = 2;
    while q != (m << 1) {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Interleaves the transposed representation MSB-first into one integer.
fn interleave(x: &[u32; 3], bits: u32) -> u64 {
    let mut out = 0u64;
    for bit in (0..bits).rev() {
        for v in x.iter() {
            out = (out << 1) | ((*v >> bit) & 1) as u64;
        }
    }
    out
}

/// Inverse of [`interleave`].
fn deinterleave(index: u64, bits: u32) -> [u32; 3] {
    let mut x = [0u32; 3];
    for bit in (0..bits).rev() {
        for (i, v) in x.iter_mut().enumerate() {
            let shift = bit * 3 + (2 - i as u32);
            *v = (*v << 1) | ((index >> shift) & 1) as u32;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_maps_to_zero() {
        assert_eq!(index_from_coords([0, 0, 0]), 0);
        assert_eq!(coords_from_index(0), [0, 0, 0]);
    }

    #[test]
    fn roundtrip_small_exhaustive() {
        // Exhaustive bijectivity check on the 16^3 grid using a scaled curve:
        // map through the full-resolution curve and back.
        for xc in 0..8u32 {
            for yc in 0..8u32 {
                for zc in 0..8u32 {
                    let idx = index_from_coords([xc, yc, zc]);
                    assert_eq!(coords_from_index(idx), [xc, yc, zc]);
                }
            }
        }
    }

    #[test]
    fn adjacent_indices_are_adjacent_cells() {
        // The defining Hilbert property: consecutive curve positions differ
        // by exactly 1 in exactly one coordinate. Verify over a prefix.
        let mut prev = coords_from_index(0);
        for i in 1..4096u64 {
            let cur = coords_from_index(i);
            let diff: u32 = (0..3)
                .map(|d| (cur[d] as i64 - prev[d] as i64).unsigned_abs() as u32)
                .sum();
            assert_eq!(
                diff,
                1,
                "indices {} -> {} not adjacent: {prev:?} -> {cur:?}",
                i - 1,
                i
            );
            prev = cur;
        }
    }

    #[test]
    fn point_mapping_clamps() {
        let u = Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(10.0, 10.0, 10.0));
        let inside = index_of_point(&Point3::new(5.0, 5.0, 5.0), &u);
        let outside = index_of_point(&Point3::new(-100.0, 5.0, 5.0), &u);
        let clamped = index_of_point(&Point3::new(0.0, 5.0, 5.0), &u);
        assert_eq!(outside, clamped);
        assert_ne!(inside, outside);
    }

    #[test]
    fn degenerate_universe_dimension() {
        let u = Aabb::new(Point3::new(0.0, 0.0, 5.0), Point3::new(10.0, 10.0, 5.0));
        // Must not panic or divide by zero.
        let _ = index_of_point(&Point3::new(5.0, 5.0, 5.0), &u);
    }

    #[test]
    fn corner_coordinates_in_range() {
        let idx = index_from_coords([MAX_COORD, MAX_COORD, MAX_COORD]);
        assert!(idx < 1u64 << (3 * BITS));
        assert_eq!(coords_from_index(idx), [MAX_COORD, MAX_COORD, MAX_COORD]);
    }
}
