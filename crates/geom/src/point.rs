//! 3-D points.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul, Sub};

/// A point in 3-D space.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
    /// z coordinate.
    pub z: f64,
}

impl Point3 {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The origin `(0, 0, 0)`.
    pub const ORIGIN: Point3 = Point3::new(0.0, 0.0, 0.0);

    /// Returns the coordinate along dimension `dim` (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    /// Panics if `dim > 2`.
    #[inline]
    pub fn coord(&self, dim: usize) -> f64 {
        match dim {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("dimension {dim} out of range for Point3"),
        }
    }

    /// Returns a copy with dimension `dim` replaced by `value`.
    #[inline]
    pub fn with_coord(mut self, dim: usize, value: f64) -> Self {
        match dim {
            0 => self.x = value,
            1 => self.y = value,
            2 => self.z = value,
            _ => panic!("dimension {dim} out of range for Point3"),
        }
        self
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(&self, other: &Point3) -> Point3 {
        Point3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(&self, other: &Point3) -> Point3 {
        Point3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn distance_sq(&self, other: &Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point3) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// All coordinates are finite (not NaN / infinite).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, rhs: f64) -> Point3 {
        Point3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn div(self, rhs: f64) -> Point3 {
        Point3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_roundtrip() {
        let p = Point3::new(1.0, 2.0, 3.0);
        assert_eq!(p.coord(0), 1.0);
        assert_eq!(p.coord(1), 2.0);
        assert_eq!(p.coord(2), 3.0);
        let q = p.with_coord(1, 9.0);
        assert_eq!(q, Point3::new(1.0, 9.0, 3.0));
    }

    #[test]
    #[should_panic]
    fn coord_out_of_range_panics() {
        Point3::ORIGIN.coord(3);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point3::new(1.0, 5.0, 3.0);
        let b = Point3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(&b), Point3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(&b), Point3::new(2.0, 5.0, 3.0));
    }

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point3::ORIGIN;
        let b = Point3::new(3.0, 4.0, 0.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Point3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Point3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Point3::new(2.0, 2.5, 3.0));
    }

    #[test]
    fn finiteness() {
        assert!(Point3::new(0.0, 1.0, -5.0).is_finite());
        assert!(!Point3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Point3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
