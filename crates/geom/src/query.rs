//! Spatial point queries: the probe vocabulary of the serving subsystem.
//!
//! The paper's motivating workload (§I–II) is neuroscience analyses firing
//! massive numbers of spatial probes against the built structures: "which
//! elements lie in this sub-volume", "which elements enclose this point",
//! "which elements are within ε of this synapse site". [`SpatialQuery`]
//! captures those three probe kinds; it lives here in the geometry
//! substrate so the trace generators (`tfm-datagen`) and the serving
//! subsystem (`tfm-serve`) can share one vocabulary without depending on
//! each other.

use crate::{Aabb, Point3};
use serde::{Deserialize, Serialize};

/// One spatial probe against an indexed dataset.
///
/// Every query selects the elements whose MBB satisfies the predicate;
/// [`SpatialQuery::matches`] is the exact per-element test and
/// [`SpatialQuery::probe`] the bounding region an index may prefilter
/// with (the probe box is a superset of the match region, so
/// "probe-box-intersects" is a sound candidate filter for all three
/// kinds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpatialQuery {
    /// Window (range) query: all elements whose MBB intersects the window.
    Window(Aabb),
    /// Point-enclosure query: all elements whose MBB contains the point.
    Point(Point3),
    /// Distance (ε-ball) query: all elements whose MBB lies within `eps`
    /// of `center`.
    Distance {
        /// Ball center.
        center: Point3,
        /// Ball radius (must be non-negative).
        eps: f64,
    },
}

impl SpatialQuery {
    /// The bounding box of the match region — the sound prefilter box.
    ///
    /// For a window it is the window itself; for a point the degenerate
    /// point box; for a distance query the ball's bounding cube. An element
    /// MBB that does not intersect this box can never match.
    #[inline]
    pub fn probe(&self) -> Aabb {
        match self {
            SpatialQuery::Window(w) => *w,
            SpatialQuery::Point(p) => Aabb::from_point(*p),
            SpatialQuery::Distance { center, eps } => Aabb::from_point(*center).inflate(*eps),
        }
    }

    /// Exact predicate: does an element with bounding box `mbb` match?
    #[inline]
    pub fn matches(&self, mbb: &Aabb) -> bool {
        match self {
            SpatialQuery::Window(w) => w.intersects(mbb),
            SpatialQuery::Point(p) => mbb.contains_point(p),
            SpatialQuery::Distance { center, eps } => {
                mbb.min_distance_sq(&Aabb::from_point(*center)) <= eps * eps
            }
        }
    }

    /// Center of the probe region — the locality key Hilbert-ordered
    /// batching sorts on.
    #[inline]
    pub fn center(&self) -> Point3 {
        match self {
            SpatialQuery::Window(w) => w.center(),
            SpatialQuery::Point(p) => *p,
            SpatialQuery::Distance { center, .. } => *center,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bx(min: (f64, f64, f64), max: (f64, f64, f64)) -> Aabb {
        Aabb::new(
            Point3::new(min.0, min.1, min.2),
            Point3::new(max.0, max.1, max.2),
        )
    }

    #[test]
    fn window_matches_are_intersections() {
        let q = SpatialQuery::Window(bx((0.0, 0.0, 0.0), (2.0, 2.0, 2.0)));
        assert!(q.matches(&bx((1.0, 1.0, 1.0), (3.0, 3.0, 3.0))));
        assert!(q.matches(&bx((2.0, 0.0, 0.0), (3.0, 1.0, 1.0)))); // touching
        assert!(!q.matches(&bx((2.5, 2.5, 2.5), (3.0, 3.0, 3.0))));
        assert_eq!(q.probe(), bx((0.0, 0.0, 0.0), (2.0, 2.0, 2.0)));
    }

    #[test]
    fn point_enclosure_is_closed() {
        let q = SpatialQuery::Point(Point3::new(1.0, 1.0, 1.0));
        assert!(q.matches(&bx((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)))); // boundary
        assert!(!q.matches(&bx((1.1, 1.1, 1.1), (2.0, 2.0, 2.0))));
        assert_eq!(q.center(), Point3::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn distance_query_refines_its_probe_box() {
        let q = SpatialQuery::Distance {
            center: Point3::new(0.0, 0.0, 0.0),
            eps: 1.0,
        };
        // Inside the probe cube but outside the ball: corner-ward box at
        // distance sqrt(3)*0.9 > 1.
        let corner = bx((0.9, 0.9, 0.9), (1.0, 1.0, 1.0));
        assert!(q.probe().intersects(&corner));
        assert!(!q.matches(&corner));
        // Face-ward box at distance 0.5 matches.
        assert!(q.matches(&bx((0.5, -0.1, -0.1), (0.6, 0.1, 0.1))));
        assert_eq!(q.probe(), bx((-1.0, -1.0, -1.0), (1.0, 1.0, 1.0)));
    }

    #[test]
    fn probe_box_is_a_sound_prefilter() {
        // Anything that matches must intersect the probe box.
        let queries = [
            SpatialQuery::Window(bx((0.0, 0.0, 0.0), (3.0, 1.0, 2.0))),
            SpatialQuery::Point(Point3::new(0.5, 0.5, 0.5)),
            SpatialQuery::Distance {
                center: Point3::new(2.0, 2.0, 2.0),
                eps: 0.75,
            },
        ];
        for q in &queries {
            for i in 0..64 {
                let f = i as f64 * 0.17;
                let b = bx(
                    (f, f * 0.3, f * 0.7),
                    (f + 0.4, f * 0.3 + 0.4, f * 0.7 + 0.4),
                );
                if q.matches(&b) {
                    assert!(q.probe().intersects(&b), "{q:?} vs {b:?}");
                }
            }
        }
    }
}
