//! 3-D geometry substrate for the TRANSFORMERS spatial-join reproduction.
//!
//! This crate provides the spatial primitives every other crate in the
//! workspace is built on:
//!
//! * [`Point3`] — a point in 3-D space,
//! * [`Aabb`] — an axis-aligned minimum bounding box (the paper's "MBB"),
//! * [`SpatialElement`] — an identified MBB, the unit of data being joined,
//! * [`SpatialQuery`] — window / point-enclosure / distance probes, the
//!   vocabulary of the query-serving subsystem (`tfm-serve`),
//! * [`hilbert`] — a 3-D Hilbert space-filling curve used by TRANSFORMERS to
//!   pick adaptive-walk start points (paper §V, "Adaptive Walk").
//!
//! All coordinates are `f64`. The synthetic workloads of the paper live in a
//! `[0, 1000]³` universe (§VII-B), but nothing in this crate assumes that.

#![warn(missing_docs)]

mod aabb;
pub mod hilbert;
mod point;
mod query;

pub use aabb::Aabb;
pub use point::Point3;
pub use query::SpatialQuery;

use serde::{Deserialize, Serialize};

/// Identifier of a spatial element within one dataset.
///
/// Element ids are dense (`0..n`) within a dataset; a join result pair is a
/// pair of ids, one from each side.
pub type ElementId = u64;

/// An identified spatial object, approximated by its minimum bounding box.
///
/// The paper performs the *filtering* step of a spatial join (§VII-B,
/// "Approach"): it detects pairs of elements whose MBBs intersect.
/// Refinement against exact shapes is application-specific and out of scope,
/// exactly as in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialElement {
    /// Dataset-local identifier.
    pub id: ElementId,
    /// Minimum bounding box of the element.
    pub mbb: Aabb,
}

impl SpatialElement {
    /// Creates a new element from an id and its bounding box.
    #[inline]
    pub fn new(id: ElementId, mbb: Aabb) -> Self {
        Self { id, mbb }
    }

    /// Tests whether this element's MBB intersects another element's MBB.
    #[inline]
    pub fn intersects(&self, other: &SpatialElement) -> bool {
        self.mbb.intersects(&other.mbb)
    }
}

/// Anything that exposes a bounding box.
///
/// The STR partitioner and the in-memory join kernels are generic over this
/// trait so that they can operate both on raw [`SpatialElement`]s and on
/// index metadata (space-unit / space-node descriptors).
pub trait HasMbb {
    /// The minimum bounding box of the object.
    fn mbb(&self) -> Aabb;

    /// Center of the bounding box; used for sort keys (STR, Hilbert).
    #[inline]
    fn center(&self) -> Point3 {
        self.mbb().center()
    }
}

impl HasMbb for SpatialElement {
    #[inline]
    fn mbb(&self) -> Aabb {
        self.mbb
    }
}

impl HasMbb for Aabb {
    #[inline]
    fn mbb(&self) -> Aabb {
        *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_intersection_is_symmetric() {
        let a = SpatialElement::new(
            0,
            Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(2.0, 2.0, 2.0)),
        );
        let b = SpatialElement::new(
            1,
            Aabb::new(Point3::new(1.0, 1.0, 1.0), Point3::new(3.0, 3.0, 3.0)),
        );
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
    }

    #[test]
    fn has_mbb_center_matches_aabb_center() {
        let mbb = Aabb::new(Point3::new(0.0, 2.0, 4.0), Point3::new(2.0, 4.0, 6.0));
        let e = SpatialElement::new(7, mbb);
        assert_eq!(e.center(), mbb.center());
        assert_eq!(e.mbb(), mbb);
    }
}
