//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use tfm_geom::hilbert;
use tfm_geom::{Aabb, Point3};

fn arb_point() -> impl Strategy<Value = Point3> {
    (-1000.0..1000.0f64, -1000.0..1000.0f64, -1000.0..1000.0f64)
        .prop_map(|(x, y, z)| Point3::new(x, y, z))
}

fn arb_aabb() -> impl Strategy<Value = Aabb> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Aabb::from_corners(a, b))
}

proptest! {
    #[test]
    fn intersection_symmetric(a in arb_aabb(), b in arb_aabb()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn intersects_iff_zero_distance(a in arb_aabb(), b in arb_aabb()) {
        prop_assert_eq!(a.intersects(&b), a.min_distance_sq(&b) == 0.0);
    }

    #[test]
    fn union_contains_operands(a in arb_aabb(), b in arb_aabb()) {
        let u = a.union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
    }

    #[test]
    fn intersection_contained_in_both(a in arb_aabb(), b in arb_aabb()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains(&i));
            prop_assert!(b.contains(&i));
            prop_assert!(i.is_valid());
        }
    }

    #[test]
    fn containment_implies_intersection(a in arb_aabb(), b in arb_aabb()) {
        if a.contains(&b) {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn volume_nonnegative_and_monotone(a in arb_aabb(), b in arb_aabb()) {
        let u = a.union(&b);
        prop_assert!(a.volume() >= 0.0);
        prop_assert!(u.volume() >= a.volume().max(b.volume()) - 1e-9);
    }

    #[test]
    fn center_inside_box(a in arb_aabb()) {
        prop_assert!(a.contains_point(&a.center()));
    }

    #[test]
    fn inflate_contains_original(a in arb_aabb(), eps in 0.0..10.0f64) {
        prop_assert!(a.inflate(eps).contains(&a));
    }

    #[test]
    fn distance_triangle_inequality_via_union(a in arb_aabb(), b in arb_aabb(), c in arb_aabb()) {
        // dist(a, c) <= dist(a, b) + diameter-ish bound is hard; instead check
        // the weaker, exact property: distance to a union never exceeds the
        // distance to either operand.
        let u = b.union(&c);
        prop_assert!(a.min_distance_sq(&u) <= a.min_distance_sq(&b) + 1e-9);
        prop_assert!(a.min_distance_sq(&u) <= a.min_distance_sq(&c) + 1e-9);
    }

    #[test]
    fn hilbert_roundtrip(x in 0u32..=hilbert::MAX_COORD,
                         y in 0u32..=hilbert::MAX_COORD,
                         z in 0u32..=hilbert::MAX_COORD) {
        let idx = hilbert::index_from_coords([x, y, z]);
        prop_assert_eq!(hilbert::coords_from_index(idx), [x, y, z]);
    }

    #[test]
    fn hilbert_index_in_range(x in 0u32..=hilbert::MAX_COORD,
                              y in 0u32..=hilbert::MAX_COORD,
                              z in 0u32..=hilbert::MAX_COORD) {
        let idx = hilbert::index_from_coords([x, y, z]);
        prop_assert!(idx < 1u64 << (3 * hilbert::BITS));
    }

    #[test]
    fn hilbert_injective_on_pairs(a in any::<[u32; 3]>(), b in any::<[u32; 3]>()) {
        let a = a.map(|v| v & hilbert::MAX_COORD);
        let b = b.map(|v| v & hilbert::MAX_COORD);
        let ia = hilbert::index_from_coords(a);
        let ib = hilbert::index_from_coords(b);
        prop_assert_eq!(a == b, ia == ib);
    }
}
