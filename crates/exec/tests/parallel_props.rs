//! Property tests for the cross-worker pruning structure.
//!
//! Two contracts, checked over randomized workloads, worker counts and
//! index geometries:
//!
//! 1. **Pruning is invisible in the results.** The pruned (shared-board)
//!    and unpruned (independent-worker) parallel joins return the
//!    identical pair set — which is also the sequential join's.
//! 2. **Pruning is sound in the counters.** Cross-worker prunes are a
//!    subset of all prunes; with pruning disabled they are exactly zero;
//!    and a 1-worker adaptive join under *fixed* thresholds reproduces the
//!    sequential join's pruned-candidate count exactly (the board then
//!    carries precisely the sequential `checked` state, so the parallel
//!    path can never prune more candidates than the sequential join — the
//!    multi-worker counts depend on thread interleaving and are checked
//!    against the set-equality contract instead).
//!
//! Fixed thresholds keep the transformation decisions independent of
//! wall-clock measurements, so the 1-worker trace comparison is exact.

use proptest::prelude::*;
use tfm_datagen::{generate, DatasetSpec, Distribution};
use tfm_exec::parallel_join;
use tfm_storage::Disk;
use transformers::{
    transformers_join, IndexConfig, JoinConfig, JoinOutcome, ThresholdPolicy, TransformersIndex,
};

fn dataset(count: usize, dist_pick: u8, seed: u64) -> Vec<tfm_geom::SpatialElement> {
    let distribution = match dist_pick % 4 {
        0 => Distribution::Uniform,
        1 => Distribution::massive_cluster_for(count),
        2 => Distribution::DenseCluster { clusters: 6 },
        _ => Distribution::UniformCluster { clusters: 12 },
    };
    generate(&DatasetSpec {
        max_side: 5.0,
        ..DatasetSpec::with_distribution(count, distribution, seed)
    })
}

struct Fixture {
    disk_a: Disk,
    idx_a: TransformersIndex,
    disk_b: Disk,
    idx_b: TransformersIndex,
    cfg: JoinConfig,
}

impl Fixture {
    fn run_parallel(&self, transforms: bool, pruning: bool, threads: usize) -> JoinOutcome {
        let cfg = JoinConfig {
            worker_role_transforms: transforms,
            cross_worker_pruning: pruning,
            ..self.cfg
        };
        parallel_join(
            &self.idx_a,
            &self.disk_a,
            &self.idx_b,
            &self.disk_b,
            &cfg,
            threads,
        )
    }

    fn run_sequential(&self) -> JoinOutcome {
        transformers_join(
            &self.idx_a,
            &self.disk_a,
            &self.idx_b,
            &self.disk_b,
            &self.cfg,
        )
    }
}

fn fixture(
    na: usize,
    nb: usize,
    dist_a: u8,
    dist_b: u8,
    seed: u64,
    unit_cap: usize,
    node_cap: usize,
) -> Fixture {
    let a = dataset(na, dist_a, seed);
    let b = dataset(nb, dist_b, seed ^ 0x5bf0_3635);
    let disk_a = Disk::default_in_memory();
    let disk_b = Disk::default_in_memory();
    let idx_cfg = IndexConfig {
        unit_capacity: Some(unit_cap),
        node_capacity: Some(node_cap),
        ..IndexConfig::default()
    };
    let idx_a = TransformersIndex::build(&disk_a, a, &idx_cfg);
    let idx_b = TransformersIndex::build(&disk_b, b, &idx_cfg);
    // Aggressive fixed thresholds: plenty of role switches, and decisions
    // that do not depend on wall-clock cost-model calibration.
    let cfg = JoinConfig::default().with_thresholds(ThresholdPolicy::Fixed {
        t_su: 2.0,
        t_so: 4.0,
    });
    Fixture {
        disk_a,
        idx_a,
        disk_b,
        idx_b,
        cfg,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pruned_and_unpruned_parallel_joins_agree(
        na in 400usize..2500,
        nb in 400usize..2500,
        dist_a in 0u8..4,
        dist_b in 0u8..4,
        seed in 0u64..1_000_000,
        unit_cap in 8usize..48,
        node_cap in 4usize..16,
    ) {
        let fx = fixture(na, nb, dist_a, dist_b, seed, unit_cap, node_cap);
        let seq = fx.run_sequential();
        for threads in [1usize, 2, 4] {
            let pruned = fx.run_parallel(true, true, threads);
            let unpruned = fx.run_parallel(true, false, threads);
            // Contract 1: identical pair sets, both equal to sequential.
            prop_assert_eq!(&pruned.pairs, &seq.pairs, "pruned, threads = {}", threads);
            prop_assert_eq!(&unpruned.pairs, &seq.pairs, "unpruned, threads = {}", threads);
            // Contract 2: counter soundness.
            prop_assert!(
                pruned.stats.cross_worker_pruned_units <= pruned.stats.pruned_units,
                "cross-worker prunes must be a subset of all prunes"
            );
            prop_assert_eq!(unpruned.stats.cross_worker_pruned_units, 0);
            prop_assert_eq!(unpruned.stats.pruned_pivots, 0);
        }
    }

    #[test]
    fn single_worker_pruning_matches_the_sequential_trace(
        na in 400usize..2000,
        nb in 400usize..2000,
        dist_a in 0u8..4,
        dist_b in 0u8..4,
        seed in 0u64..1_000_000,
    ) {
        let fx = fixture(na, nb, dist_a, dist_b, seed, 32, 8);
        let seq = fx.run_sequential();
        let par = fx.run_parallel(true, true, 1);
        prop_assert_eq!(&par.pairs, &seq.pairs);
        // One worker sees through the shared board exactly the coverage
        // the sequential join tracks in its `checked` bitmaps, and fixed
        // thresholds make the transformation decisions identical — the
        // whole adaptive trace must therefore match, and in particular the
        // parallel join prunes no more candidates than the sequential one.
        prop_assert_eq!(par.stats.pruned_units, seq.stats.pruned_units);
        prop_assert_eq!(par.stats.role_transformations, seq.stats.role_transformations);
        prop_assert_eq!(par.stats.layout_transformations, seq.stats.layout_transformations);
        prop_assert_eq!(
            par.stats.element_layout_transformations,
            seq.stats.element_layout_transformations
        );
        prop_assert_eq!(par.stats.walk_steps, seq.stats.walk_steps);
        prop_assert_eq!(par.stats.mem.element_tests, seq.stats.mem.element_tests);
    }
}
