//! Pivot scheduling: static sharding plus work stealing, with prune
//! announcements.
//!
//! The guide's space-node pivot list is split into contiguous chunks that
//! are dealt to per-worker deques up front (*static sharding* — contiguous
//! pivot ranges keep the follower walk short, because consecutive STR
//! nodes are spatially adjacent). Pivot cost is highly skewed on
//! non-uniform data — a pivot inside a massive cluster can cost orders of
//! magnitude more than one in empty space — so workers that drain their
//! own deque *steal* chunks from the back of the fullest other deque
//! (stragglers keep the front of their own queue, preserving their
//! locality run).
//!
//! **Prune announcements.** At a chunk boundary a worker that observes the
//! follower dataset fully covered on the shared board calls
//! [`JoinScheduler::announce_prune`]: every pivot still queued would have
//! its entire candidate list pruned (the sequential join's termination
//! condition, recovered across workers). The scheduler then stops dealing —
//! both from a worker's own deque and on the steal path — and the chunks
//! never dispatched are reported by
//! [`chunks_pruned`](JoinScheduler::chunks_pruned).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// A contiguous range of guide pivot indices, `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First pivot index in the chunk.
    pub start: usize,
    /// One past the last pivot index.
    pub end: usize,
}

impl Chunk {
    /// Number of pivots in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the chunk covers no pivots.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Deals pivot chunks to a fixed set of workers, with stealing.
pub struct JoinScheduler {
    queues: Vec<Mutex<VecDeque<Chunk>>>,
    chunks: usize,
    chunk_size: usize,
    steals: AtomicU64,
    dispatched: AtomicU64,
    pruned: AtomicBool,
}

impl JoinScheduler {
    /// Partitions `pivots` pivot indices among `workers` workers in chunks
    /// of at most `chunk_size` pivots each.
    ///
    /// Each worker's static share is one contiguous slab of the pivot
    /// range (worker 0 gets the lowest indices), sliced into chunks so
    /// that stealing has useful granularity.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `chunk_size == 0`.
    pub fn new(pivots: usize, workers: usize, chunk_size: usize) -> Self {
        assert!(workers > 0, "scheduler needs at least one worker");
        assert!(chunk_size > 0, "chunk size must be positive");
        let mut queues: Vec<VecDeque<Chunk>> = (0..workers).map(|_| VecDeque::new()).collect();
        let mut chunks = 0;
        let per_worker = pivots.div_ceil(workers);
        for (w, queue) in queues.iter_mut().enumerate() {
            let slab_start = (w * per_worker).min(pivots);
            let slab_end = ((w + 1) * per_worker).min(pivots);
            let mut start = slab_start;
            while start < slab_end {
                let end = (start + chunk_size).min(slab_end);
                queue.push_back(Chunk { start, end });
                chunks += 1;
                start = end;
            }
        }
        Self {
            queues: queues.into_iter().map(Mutex::new).collect(),
            chunks,
            chunk_size,
            steals: AtomicU64::new(0),
            dispatched: AtomicU64::new(0),
            pruned: AtomicBool::new(false),
        }
    }

    /// Picks a chunk size that balances locality against steal granularity:
    /// aim for several chunks per worker, capped so huge inputs still get
    /// long contiguous runs.
    pub fn default_chunk_size(pivots: usize, workers: usize) -> usize {
        (pivots / (workers * 8)).clamp(1, 256)
    }

    /// Total chunks dealt at construction.
    pub fn chunk_count(&self) -> usize {
        self.chunks
    }

    /// The chunk size used at construction.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Chunks obtained by stealing so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Announces that the rest of the pivot list is prunable (the
    /// follower dataset is fully covered): the scheduler stops dealing
    /// chunks — own-deque pops and steals alike return `None` from now on.
    pub fn announce_prune(&self) {
        self.pruned.store(true, Ordering::Release);
    }

    /// Has a prune been announced?
    pub fn prune_announced(&self) -> bool {
        self.pruned.load(Ordering::Acquire)
    }

    /// Chunks dealt at construction but never dispatched because a prune
    /// announcement discarded them. Meaningful once the workers have
    /// drained (after the join's thread scope ends).
    pub fn chunks_pruned(&self) -> u64 {
        self.chunks as u64 - self.dispatched.load(Ordering::Acquire)
    }

    /// Fetches the next chunk for `worker`: the front of its own deque,
    /// or — once that is empty — the back of the fullest other deque.
    /// Returns `None` when every deque is empty or a prune announcement
    /// has discarded the remaining work.
    ///
    /// # Panics
    /// Panics if `worker` is out of range.
    pub fn next(&self, worker: usize) -> Option<Chunk> {
        if self.prune_announced() {
            return None;
        }
        if let Some(chunk) = self.queues[worker]
            .lock()
            .expect("scheduler lock poisoned")
            .pop_front()
        {
            self.dispatched.fetch_add(1, Ordering::AcqRel);
            return Some(chunk);
        }
        // Own deque drained: steal from the back of the fullest victim so
        // the victim keeps the locality run at the front of its queue.
        loop {
            // Stealing also respects prune announcements — a straggler's
            // backlog is exactly the work a prune makes redundant.
            if self.prune_announced() {
                return None;
            }
            let mut best: Option<(usize, usize)> = None;
            for (v, queue) in self.queues.iter().enumerate() {
                if v == worker {
                    continue;
                }
                let len = queue.lock().expect("scheduler lock poisoned").len();
                if len > 0 && best.is_none_or(|(_, blen)| len > blen) {
                    best = Some((v, len));
                }
            }
            let (victim, _) = best?;
            // The victim may have been drained between the scan and this
            // lock; retry the scan in that case.
            if let Some(chunk) = self.queues[victim]
                .lock()
                .expect("scheduler lock poisoned")
                .pop_back()
            {
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.dispatched.fetch_add(1, Ordering::AcqRel);
                return Some(chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn drain_all(sched: &JoinScheduler, worker: usize) -> Vec<Chunk> {
        std::iter::from_fn(|| sched.next(worker)).collect()
    }

    #[test]
    fn covers_every_pivot_exactly_once() {
        for (pivots, workers, chunk) in [(100, 4, 8), (7, 3, 2), (1, 1, 1), (64, 8, 64)] {
            let sched = JoinScheduler::new(pivots, workers, chunk);
            let mut seen = BTreeSet::new();
            for c in drain_all(&sched, 0) {
                for p in c.start..c.end {
                    assert!(seen.insert(p), "pivot {p} dealt twice");
                }
            }
            assert_eq!(seen.len(), pivots);
            assert_eq!(seen.first().copied(), (pivots > 0).then_some(0));
            assert_eq!(seen.last().copied(), pivots.checked_sub(1));
        }
    }

    #[test]
    fn zero_pivots_yield_nothing() {
        let sched = JoinScheduler::new(0, 4, 16);
        assert_eq!(sched.next(2), None);
        assert_eq!(sched.chunk_count(), 0);
    }

    #[test]
    fn chunks_respect_size_bound() {
        let sched = JoinScheduler::new(1000, 3, 16);
        for c in drain_all(&sched, 1) {
            assert!(c.len() <= 16 && !c.is_empty());
        }
    }

    #[test]
    fn stealing_kicks_in_when_own_queue_is_empty() {
        let sched = JoinScheduler::new(64, 2, 4);
        // Worker 1 drains everything, including worker 0's share.
        let got = drain_all(&sched, 1);
        assert_eq!(got.iter().map(Chunk::len).sum::<usize>(), 64);
        assert!(sched.steals() > 0, "expected steals, got none");
    }

    #[test]
    fn own_chunks_come_in_order() {
        let sched = JoinScheduler::new(32, 2, 4);
        let mut prev = None;
        while let Some(c) = sched.next(0) {
            if sched.steals() > 0 {
                break; // once stealing starts, order is no longer local
            }
            if let Some(p) = prev {
                assert!(c.start >= p, "own chunks must advance");
            }
            prev = Some(c.end);
        }
    }

    #[test]
    fn default_chunk_size_is_sane() {
        assert_eq!(JoinScheduler::default_chunk_size(0, 4), 1);
        assert!(JoinScheduler::default_chunk_size(10_000, 4) <= 256);
        assert!(JoinScheduler::default_chunk_size(100, 2) >= 1);
    }

    #[test]
    fn prune_announcement_discards_remaining_chunks() {
        let sched = JoinScheduler::new(64, 2, 4); // 16 chunks
        assert!(sched.next(0).is_some());
        assert!(sched.next(1).is_some());
        assert!(!sched.prune_announced());
        sched.announce_prune();
        assert!(sched.prune_announced());
        // Own-deque pops and steals both stop.
        assert_eq!(sched.next(0), None);
        assert_eq!(sched.next(1), None);
        assert_eq!(sched.chunks_pruned(), 14);
        assert_eq!(sched.steals(), 0);
    }

    #[test]
    fn full_drain_prunes_nothing() {
        let sched = JoinScheduler::new(100, 3, 7);
        let n = drain_all(&sched, 0).len() as u64;
        assert_eq!(sched.chunks_pruned(), 0);
        assert_eq!(n, sched.chunk_count() as u64);
    }

    #[test]
    fn concurrent_drain_is_exact() {
        let sched = JoinScheduler::new(500, 4, 8);
        let counts: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let sched = &sched;
                    s.spawn(move || drain_all(sched, w).iter().map(Chunk::len).sum::<usize>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        assert_eq!(counts.iter().sum::<usize>(), 500);
    }
}
