//! Pivot scheduling: the generic [`ChunkScheduler`] from `tfm-pool`
//! wearing its join-phase vocabulary, plus the **adaptive chunk sizing**
//! policy.
//!
//! The guide's space-node pivot list is split into contiguous chunks that
//! are dealt to per-worker deques up front (*static sharding* — contiguous
//! pivot ranges keep the follower walk short, because consecutive STR
//! nodes are spatially adjacent). Pivot cost is highly skewed on
//! non-uniform data — a pivot inside a massive cluster can cost orders of
//! magnitude more than one in empty space — so workers that drain their
//! own deque *steal* chunks from the back of the fullest other deque.
//! The mechanics (deques, stealing, cancellation) live in
//! [`tfm_pool::ChunkScheduler`], shared with the index-build pipeline;
//! this wrapper adds the join-specific policy:
//!
//! * **Prune announcements** — [`JoinScheduler::announce_prune`] maps to
//!   the generic cancel switch: once the follower dataset is fully
//!   covered on the shared board, every queued pivot is redundant and the
//!   scheduler stops dealing (see the crate docs for the protocol).
//! * **Adaptive chunk sizing** — the initial chunk size is derived from
//!   the pivot count and worker count, tilted by a *recorded skew signal*
//!   when one is available: [`crate::ExecReport::steal_fraction`] from a
//!   previous run of the same workload, carried in
//!   [`transformers::JoinConfig::recorded_steal_skew`]. High observed
//!   skew → more, smaller chunks (stealing granularity); low skew →
//!   fewer, larger chunks (locality runs). Without a signal a low-skew
//!   default (8 chunks per worker) applies — still derived from the
//!   pivot and worker counts, and corrected by the first run's report.

use tfm_pool::ChunkScheduler;

pub use tfm_pool::Chunk;

/// Deals pivot chunks to a fixed set of workers, with stealing and prune
/// announcements. A thin join-flavored wrapper over
/// [`tfm_pool::ChunkScheduler`].
pub struct JoinScheduler {
    inner: ChunkScheduler,
}

impl JoinScheduler {
    /// Partitions `pivots` pivot indices among `workers` workers in chunks
    /// of at most `chunk_size` pivots each.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `chunk_size == 0`.
    pub fn new(pivots: usize, workers: usize, chunk_size: usize) -> Self {
        Self {
            inner: ChunkScheduler::new(pivots, workers, chunk_size),
        }
    }

    /// The neutral chunk size: [`JoinScheduler::adaptive_chunk_size`]
    /// with no recorded skew signal.
    pub fn default_chunk_size(pivots: usize, workers: usize) -> usize {
        Self::adaptive_chunk_size(pivots, workers, None)
    }

    /// Derives the initial chunk size from the pivot count, the worker
    /// count, and an optional recorded skew signal in `0.0..=1.0`
    /// (typically a previous run's [`crate::ExecReport::steal_fraction`]).
    ///
    /// The size targets a chunks-per-worker budget that moves with the
    /// signal — 4 per worker on perfectly balanced data (long locality
    /// runs, near-zero scheduler traffic) up to 32 per worker on heavily
    /// skewed data (fine-grained stealing); with no signal the budget is
    /// 8 per worker, the low-skew end of the range, since unobserved
    /// workloads still benefit from long runs and the first report
    /// corrects the guess. Two caps bound the result: every worker's
    /// static share must split into at least two chunks (a stealable tail
    /// even on tiny inputs), and no chunk exceeds
    /// [`MAX_CHUNK_PIVOTS`](Self::MAX_CHUNK_PIVOTS) pivots — without that
    /// bound, a first run on a huge pivot list could trap an entire
    /// expensive cluster inside one chunk where no stealing can reach it.
    pub fn adaptive_chunk_size(pivots: usize, workers: usize, skew: Option<f64>) -> usize {
        let workers = workers.max(1);
        if pivots == 0 {
            return 1;
        }
        let chunks_per_worker = match skew {
            None => 8.0,
            Some(s) => 4.0 + 28.0 * s.clamp(0.0, 1.0),
        };
        let cap = pivots
            .div_ceil(workers * 2)
            .clamp(1, Self::MAX_CHUNK_PIVOTS);
        let target = (pivots as f64 / (workers as f64 * chunks_per_worker)).round() as usize;
        target.clamp(1, cap)
    }

    /// Hard upper bound on the chunk size: stealing happens at chunk
    /// granularity, so a chunk is the largest unit of work that can end up
    /// serialized on one worker.
    pub const MAX_CHUNK_PIVOTS: usize = 256;

    /// Total chunks dealt at construction.
    pub fn chunk_count(&self) -> usize {
        self.inner.chunk_count()
    }

    /// The chunk size used at construction.
    pub fn chunk_size(&self) -> usize {
        self.inner.chunk_size()
    }

    /// Chunks obtained by stealing so far.
    pub fn steals(&self) -> u64 {
        self.inner.steals()
    }

    /// Announces that the rest of the pivot list is prunable (the
    /// follower dataset is fully covered): the scheduler stops dealing
    /// chunks — own-deque pops and steals alike return `None` from now on.
    pub fn announce_prune(&self) {
        self.inner.cancel();
    }

    /// Has a prune been announced?
    pub fn prune_announced(&self) -> bool {
        self.inner.is_cancelled()
    }

    /// Chunks dealt at construction but never dispatched because a prune
    /// announcement discarded them. Meaningful once the workers have
    /// drained (after the join's thread scope ends).
    pub fn chunks_pruned(&self) -> u64 {
        self.inner.chunks_cancelled()
    }

    /// Fetches the next chunk for `worker`: the front of its own deque,
    /// or — once that is empty — the back of the fullest other deque.
    /// Returns `None` when every deque is empty or a prune announcement
    /// has discarded the remaining work.
    ///
    /// # Panics
    /// Panics if `worker` is out of range.
    pub fn next(&self, worker: usize) -> Option<Chunk> {
        self.inner.next(worker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_chunk_size_is_sane() {
        assert_eq!(JoinScheduler::adaptive_chunk_size(0, 4, None), 1);
        assert!(JoinScheduler::adaptive_chunk_size(100, 2, None) >= 1);
        // Neutral sizing targets ~8 chunks per worker.
        assert_eq!(JoinScheduler::adaptive_chunk_size(6400, 4, None), 200);
        // Every worker keeps a stealable tail: at least two chunks per
        // static share.
        let tiny = JoinScheduler::adaptive_chunk_size(16, 8, Some(0.0));
        assert!(tiny <= 1, "16 pivots / 8 workers must stay fine-grained");
        // Huge first-run inputs never exceed the hard cap — a chunk is the
        // largest unstealable unit of work.
        assert_eq!(
            JoinScheduler::adaptive_chunk_size(1_000_000, 4, None),
            JoinScheduler::MAX_CHUNK_PIVOTS
        );
        assert_eq!(
            JoinScheduler::adaptive_chunk_size(1_000_000, 4, Some(0.0)),
            JoinScheduler::MAX_CHUNK_PIVOTS
        );
    }

    #[test]
    fn higher_skew_means_smaller_chunks() {
        let pivots = 3_200;
        let workers = 4;
        let balanced = JoinScheduler::adaptive_chunk_size(pivots, workers, Some(0.0));
        let neutral = JoinScheduler::adaptive_chunk_size(pivots, workers, None);
        let skewed = JoinScheduler::adaptive_chunk_size(pivots, workers, Some(1.0));
        assert!(
            balanced > neutral && neutral > skewed,
            "expected monotone sizing, got {balanced} / {neutral} / {skewed}"
        );
        // Out-of-range signals are clamped, not amplified.
        assert_eq!(
            JoinScheduler::adaptive_chunk_size(pivots, workers, Some(42.0)),
            skewed
        );
    }

    #[test]
    fn prune_announcement_discards_remaining_chunks() {
        let sched = JoinScheduler::new(64, 2, 4); // 16 chunks
        assert!(sched.next(0).is_some());
        assert!(sched.next(1).is_some());
        assert!(!sched.prune_announced());
        sched.announce_prune();
        assert!(sched.prune_announced());
        assert_eq!(sched.next(0), None);
        assert_eq!(sched.next(1), None);
        assert_eq!(sched.chunks_pruned(), 14);
        assert_eq!(sched.steals(), 0);
    }

    #[test]
    fn wrapper_deals_every_pivot_exactly_once() {
        let sched = JoinScheduler::new(100, 4, JoinScheduler::default_chunk_size(100, 4));
        let mut seen = std::collections::BTreeSet::new();
        while let Some(c) = sched.next(0) {
            for p in c.start..c.end {
                assert!(seen.insert(p));
            }
        }
        assert_eq!(seen.len(), 100);
        assert_eq!(sched.chunks_pruned(), 0);
    }
}
