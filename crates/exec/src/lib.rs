//! **tfm-exec** — parallel execution subsystem for the TRANSFORMERS
//! spatial join.
//!
//! The sequential [`transformers::transformers_join`] visits the guide's
//! space-node pivots one after the other. Per-pivot work — the adaptive
//! walk, the crawl, page reads and the in-memory grid hash join — only
//! *reads* the two indexes and disks, so once storage access is
//! thread-safe (which `tfm-storage` guarantees: `Disk` reads take `&self`
//! and its I/O counters are atomics), the join is embarrassingly parallel
//! across pivots. This crate supplies the machinery:
//!
//! * [`JoinScheduler`] — partitions the pivot list into contiguous chunks,
//!   statically sharded across workers, with work stealing for the
//!   stragglers that non-uniform data inevitably produces. Its **initial
//!   chunk size is adaptive**: derived from the pivot count and worker
//!   count, and tilted by a recorded skew signal
//!   ([`ExecReport::steal_fraction`] of a previous run, fed back through
//!   [`transformers::JoinConfig::recorded_steal_skew`]) — skewed
//!   workloads get finer chunks for stealing, balanced ones longer
//!   locality runs;
//! * a scoped **worker pool** ([`pool::StagePool`]) where each worker owns
//!   a private [`transformers::PivotEngine`] (its own buffer pools,
//!   exploration scratch, cost model and statistics accumulator);
//! * a **deterministic merge**: raw per-worker pair buffers are
//!   concatenated in worker order, sorted and deduplicated — exactly the
//!   normalization the sequential join applies — so [`parallel_join`]
//!   returns a byte-identical pair vector regardless of thread count or
//!   scheduling; per-worker [`transformers::TransformersStats`] are summed
//!   in worker order.
//!
//! # The extracted pool
//!
//! PR 3 extracted the scheduling and worker-spawn machinery out of this
//! crate's join path into the dependency-free `tfm-pool` crate, re-exported
//! here as [`pool`]: [`pool::ChunkScheduler`] (deques + stealing +
//! cancellation) and [`pool::StagePool`] (scoped workers, deterministic
//! map/merge combinators, parallel stable sort). The join path now runs on
//! those primitives, and so does everything *below* this crate in the
//! dependency graph — `tfm_partition::str_partition_pooled` and the core's
//! `IndexBuildPipeline` fan the index-build stages (STR passes,
//! element-page encoding, connectivity) over the same pool, which is what
//! makes `tfm build --build-threads N` possible. This crate keeps the
//! join-specific policy: pivot vocabulary, prune announcements, adaptive
//! chunk sizing.
//!
//! # The transformation / pruning protocol
//!
//! The paper's defining mechanism is *adaptivity*: role transformations
//! (§VI-A) and to-do-list pruning (§V). Both are stateful, which is why
//! PR 1 disabled them to keep workers independent. They are recovered
//! with one lock-free structure, [`transformers::SharedTodo`] — two
//! atomic bitmaps (*claimed*, *covered*) per dataset plus a remaining
//! counter — and three rules:
//!
//! 1. **Claim before switching.** A worker may role-switch onto follower
//!    node `nf` only after winning `try_claim(nf)` (a test-and-set bit).
//!    Exactly one worker processes each switched pivot; a losing worker
//!    simply continues its own pivot at node granularity, the same
//!    fallback the sequential join uses for an already-checked node.
//! 2. **Cover on completion.** A node's *covered* bit is set (`Release`)
//!    only after its pivot processing has emitted every one of its pairs
//!    into the owning worker's buffer. Candidate filters read the bit with
//!    `Acquire` and prune covered nodes' units. Two in-flight pivots can
//!    therefore never prune each other — that would need each node's
//!    completion to happen-before the other's filter point, a cycle — so
//!    no pair is ever lost, and the merged, normalized result stays
//!    byte-identical to the sequential join's at any thread count.
//! 3. **Announce exhaustion at chunk boundaries.** When the follower
//!    dataset's remaining counter hits zero, every pivot still queued
//!    would have its whole candidate list pruned. The worker that observes
//!    this calls [`JoinScheduler::announce_prune`]; the scheduler stops
//!    dealing chunks (own deques and steals alike) and reports the
//!    discarded tail as [`ExecReport::chunks_pruned`]. Within a chunk,
//!    engines make the same check per pivot
//!    ([`transformers::TransformersStats::pruned_pivots`]).
//!
//! Both features default **on** (see
//! [`transformers::JoinConfig::worker_role_transforms`] and
//! [`transformers::JoinConfig::cross_worker_pruning`]) and can be disabled
//! independently — `tfm join --no-transform` / `--no-prune` — which
//! restores PR 1's fully independent workers as an escape hatch and an
//! ablation baseline. Every combination returns the identical pair set.
//!
//! # Example
//!
//! ```
//! use tfm_storage::Disk;
//! use tfm_datagen::{generate, DatasetSpec};
//! use transformers::{transformers_join, IndexConfig, JoinConfig, TransformersIndex};
//! use tfm_exec::parallel_join;
//!
//! let disk_a = Disk::default_in_memory();
//! let disk_b = Disk::default_in_memory();
//! let idx_a = TransformersIndex::build(&disk_a, generate(&DatasetSpec::uniform(2_000, 1)), &IndexConfig::default());
//! let idx_b = TransformersIndex::build(&disk_b, generate(&DatasetSpec::uniform(2_000, 2)), &IndexConfig::default());
//!
//! let cfg = JoinConfig::default();
//! let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 4);
//! let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);
//! assert_eq!(par.pairs, seq.pairs);
//! ```

#![warn(missing_docs)]

mod scheduler;

pub use scheduler::{Chunk, JoinScheduler};

/// The generic scoped worker pool this subsystem runs on, re-exported from
/// the `tfm-pool` crate — spawn-scoped workers, chunked deque+steal
/// scheduling and deterministic merges, usable by any stage (the index
/// build pipeline in `transformers` fans out over the same primitives).
pub mod pool {
    pub use tfm_pool::{Chunk, ChunkScheduler, StagePool};
}

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tfm_pool::StagePool;
use tfm_storage::{Disk, PageId, PrefetchQueue, SharedPageCache};
use transformers::{
    EngineSide, GuidePick, JoinConfig, JoinOutcome, PivotEngine, SharedTodo, SpaceNode,
    SpaceUnitDesc, TransformersIndex, TransformersStats,
};

/// What one worker hands back: raw pairs, its stats, pivots processed.
type WorkerResult = (Vec<(u64, u64)>, TransformersStats, u64);

/// Bit 63 of a queued page id routes the prefetch to the follower-side
/// cache; the two datasets have independent page-id spaces, so the queue
/// needs an in-band side tag. Page ids are dense allocations far below
/// 2⁶³, so the bit is otherwise unused. The tag never leaves this crate:
/// it is applied when a schedule is pushed and stripped by the I/O thread
/// before the cache sees the id.
const FOLLOWER_PAGE_TAG: u64 = 1 << 63;

/// Derives the unit-page schedule of one claimed pivot chunk and pushes
/// it into the prefetch window (lossy: pages beyond the window are simply
/// demand-paged).
///
/// The schedule mirrors what the engine will read: every unit page of the
/// chunk's guide pivots, plus — the same node→unit MBB prefilter the
/// serve engines use for their readahead — the follower unit pages whose
/// node and unit page MBBs intersect a pivot's page MBB. The follower
/// crawl can reach a little past a pivot's MBB (reach-epsilon expansion),
/// so the prefilter under-approximates slightly; missed pages demand-page
/// while over-fetching would show up as `io.prefetch.join.unused`.
///
/// Stealing needs no special case: chunks are claimed whole from the
/// scheduler, so whichever worker ends up with a stolen chunk pushes the
/// chunk's full schedule before touching its pivots.
fn push_chunk_schedule(
    queue: &PrefetchQueue,
    chunk: &Chunk,
    guide_nodes: &[SpaceNode],
    guide_units: &[SpaceUnitDesc],
    follower_nodes: &[SpaceNode],
    follower_units: &[SpaceUnitDesc],
) {
    let mut pages: Vec<u64> = Vec::new();
    for pivot in &guide_nodes[chunk.start..chunk.end] {
        for u in pivot.unit_range() {
            pages.push(guide_units[u].page.0);
        }
        for fnode in follower_nodes {
            if !fnode.page_mbb.intersects(&pivot.page_mbb) {
                continue;
            }
            for u in fnode.unit_range() {
                if follower_units[u].page_mbb.intersects(&pivot.page_mbb) {
                    pages.push(follower_units[u].page.0 | FOLLOWER_PAGE_TAG);
                }
            }
        }
    }
    // Ascending-id sweep per side (the tag bit sorts the follower run
    // after the guide run), duplicates collapsed within the chunk;
    // cross-chunk duplicates are cheap no-ops in `prefetch_page`.
    pages.sort_unstable();
    pages.dedup();
    for p in pages {
        queue.try_push(PageId(p));
    }
}

/// How a parallel join was executed: scheduling and balance counters.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Workers actually spawned.
    pub threads: usize,
    /// Guide pivots processed (sum over workers).
    pub pivots: u64,
    /// Chunks the pivot list was split into.
    pub chunks: usize,
    /// Pivots per chunk the scheduler aimed for.
    pub chunk_size: usize,
    /// Chunks a worker obtained by stealing from another worker's share.
    pub steals: u64,
    /// Pivots processed by each worker — the skew between entries shows
    /// how unbalanced the workload was before stealing evened it out.
    pub worker_pivots: Vec<u64>,
    /// Chunks discarded by a prune announcement: the follower dataset was
    /// fully covered before these chunks were dispatched, so their pivots
    /// could not have contributed any new pair.
    pub chunks_pruned: u64,
    /// Pages the join prefetch pipeline read and landed into the caches
    /// (both sides; 0 when prefetch is off).
    pub prefetch_issued: u64,
    /// Demand reads served by a join-prefetched frame.
    pub prefetch_hits: u64,
    /// Join-prefetched pages never consumed by a demand read — evicted
    /// early or still untouched at the end of the run. The readahead
    /// window is mis-sized when this grows against `prefetch_issued`.
    pub prefetch_unused: u64,
}

impl ExecReport {
    /// Fraction of dispatched chunks that were obtained by stealing, in
    /// `0.0..=1.0` — the recorded pivot-cost skew signal. Feed it back
    /// through [`transformers::JoinConfig::with_recorded_skew`] to let the
    /// next run of the same workload pick its chunk size adaptively
    /// (high steal fraction → finer chunks).
    pub fn steal_fraction(&self) -> f64 {
        let dispatched = self.chunks as u64 - self.chunks_pruned;
        if dispatched == 0 {
            return 0.0;
        }
        (self.steals as f64 / dispatched as f64).clamp(0.0, 1.0)
    }

    /// Fraction of issued join prefetches never consumed by a demand read,
    /// in `0.0..=1.0` (0 when prefetch was off) — the readahead-window
    /// sizing signal `bench_tune` gates on.
    pub fn unused_prefetch_fraction(&self) -> f64 {
        if self.prefetch_issued == 0 {
            return 0.0;
        }
        (self.prefetch_unused as f64 / self.prefetch_issued as f64).clamp(0.0, 1.0)
    }
}

/// Runs the TRANSFORMERS join in parallel over `threads` workers and also
/// returns the execution report.
///
/// See [`parallel_join`] for the semantics; this variant additionally
/// exposes scheduling counters for benchmarks and the CLI.
pub fn parallel_join_with_report(
    idx_a: &TransformersIndex,
    disk_a: &Disk,
    idx_b: &TransformersIndex,
    disk_b: &Disk,
    cfg: &JoinConfig,
    threads: usize,
) -> (JoinOutcome, ExecReport) {
    let threads = threads.max(1);
    let obs = tfm_obs::global();
    let wall_start = std::time::Instant::now();
    // Resolved once outside the worker loop; `None` while metrics are off,
    // so the per-chunk cost is a single branch.
    let chunk_hist = obs
        .is_enabled()
        .then(|| obs.histogram(tfm_obs::names::JOIN_CHUNK_NANOS));
    let io_before = disk_a.stats().merged(&disk_b.stats());
    let mut stats = TransformersStats::default();

    // Load each side's descriptor tables once (charged as metadata I/O,
    // exactly like the sequential join's startup); workers share them
    // read-only through `Arc`s.
    let (nodes_a, units_a, meta_a) = idx_a.load_metadata(disk_a);
    let (nodes_b, units_b, meta_b) = idx_b.load_metadata(disk_b);
    stats.metadata_pages_read += meta_a + meta_b;
    let (nodes_a, units_a) = (Arc::new(nodes_a), Arc::new(units_a));
    let (nodes_b, units_b) = (Arc::new(nodes_b), Arc::new(units_b));

    // The configured first guide supplies the scheduler's pivot list; role
    // transformations (when enabled) let individual workers locally
    // re-pivot on the other side without changing that list.
    let guide_is_a = matches!(cfg.first_guide, GuidePick::A);
    // One routing decision so index, disk and tables can never pair up
    // inconsistently: (idx, disk, nodes, units) per role.
    let (guide_side, follower_side) = if guide_is_a {
        (
            (idx_a, disk_a, &nodes_a, &units_a),
            (idx_b, disk_b, &nodes_b, &units_b),
        )
    } else {
        (
            (idx_b, disk_b, &nodes_b, &units_b),
            (idx_a, disk_a, &nodes_a, &units_a),
        )
    };

    // The per-dataset page caches shared by every worker (the default):
    // one lock-striped cache per disk, sized to the configured pool budget
    // and sharded for the worker count. `--private-pool` falls back to
    // per-worker pools with the budget split across workers.
    let shards = SharedPageCache::shards_for_threads(threads);
    let cache_a = cfg
        .shared_cache
        .then(|| SharedPageCache::with_policy(disk_a, cfg.pool_pages, shards, cfg.cache_policy));
    let cache_b = cfg
        .shared_cache
        .then(|| SharedPageCache::with_policy(disk_b, cfg.pool_pages, shards, cfg.cache_policy));
    let (guide_cache, follower_cache) = if guide_is_a {
        (cache_a.as_ref(), cache_b.as_ref())
    } else {
        (cache_b.as_ref(), cache_a.as_ref())
    };

    // The join-path prefetch pipeline (the serve tier's readahead, pointed
    // at the exec scheduler's foreknowledge): each claimed chunk's
    // unit-page schedule is pushed into a bounded lossy window, and
    // `io_depth` dedicated I/O threads pop ids and land the pages into
    // recycled cache frames ahead of the workers. Purely a warm-up —
    // results are byte-identical with prefetch on or off.
    let prefetch_on = cfg.shared_cache && cfg.readahead > 0;
    let io_threads = if prefetch_on { cfg.io_depth.max(1) } else { 0 };
    let prefetch_queue = prefetch_on.then(|| PrefetchQueue::new(cfg.readahead));
    // The last join worker to finish closes the window so the I/O threads
    // drain and exit.
    let join_workers_left = AtomicUsize::new(threads);

    let pivots = guide_side.2.len();
    // Adaptive initial chunk size: pivot count, worker count, and — when a
    // previous run recorded one — the observed steal fraction as the skew
    // signal (see the scheduler docs for the policy).
    let chunk_size = JoinScheduler::adaptive_chunk_size(pivots, threads, cfg.recorded_steal_skew);
    let scheduler = JoinScheduler::new(pivots, threads, chunk_size);

    // The shared coverage board recovering the sequential path's
    // to-do-list pruning across workers (see the module docs for the
    // protocol). `--no-prune` drops it: workers then prune only locally.
    let todo = cfg
        .cross_worker_pruning
        .then(|| Arc::new(SharedTodo::new(nodes_a.len(), nodes_b.len())));

    // Private-pool ablation: split the configured buffer-pool budget
    // across the workers so the aggregate page-cache size stays close to
    // the sequential join's instead of silently multiplying by the worker
    // count. (Each pool needs at least one page, so with `threads >
    // pool_pages` the aggregate necessarily exceeds the budget.) In
    // shared mode the budget is the shared cache's capacity and needs no
    // split.
    let worker_cfg = JoinConfig {
        pool_pages: if cfg.shared_cache {
            cfg.pool_pages
        } else {
            (cfg.pool_pages / threads).max(1)
        },
        ..*cfg
    };

    // The scoped worker pool (extracted to `tfm-pool` in PR 3): one worker
    // per thread plus the dedicated prefetch I/O threads, results collected
    // in worker order — the deterministic merge below depends on that
    // order (I/O threads return empty results and are skipped there).
    let worker_pool = StagePool::new(threads + io_threads);
    let worker_results: Vec<WorkerResult> = worker_pool.scoped_run(|w| {
        if w >= threads {
            // Prefetch I/O thread: pop tagged page ids and land the pages
            // into the side's cache until the window closes.
            let pq = prefetch_queue
                .as_ref()
                .expect("I/O threads only spawn with prefetch on");
            let mut scratch = Vec::new();
            while let Some(id) = pq.pop() {
                if id.0 & FOLLOWER_PAGE_TAG != 0 {
                    if let Some(c) = follower_cache {
                        c.prefetch_page(PageId(id.0 & !FOLLOWER_PAGE_TAG), &mut scratch);
                    }
                } else if let Some(c) = guide_cache {
                    c.prefetch_page(id, &mut scratch);
                }
            }
            return (Vec::new(), TransformersStats::default(), 0);
        }
        let guide = EngineSide {
            idx: guide_side.0,
            disk: guide_side.1,
            nodes: Arc::clone(guide_side.2),
            units: Arc::clone(guide_side.3),
            cache: guide_cache,
        };
        let follower = EngineSide {
            idx: follower_side.0,
            disk: follower_side.1,
            nodes: Arc::clone(follower_side.2),
            units: Arc::clone(follower_side.3),
            cache: follower_cache,
        };
        let mut engine = PivotEngine::new(guide, follower, guide_is_a, &worker_cfg)
            .with_role_transforms(worker_cfg.worker_role_transforms);
        if let Some(todo) = &todo {
            engine = engine.with_shared_todo(Arc::clone(todo));
        }
        while let Some(chunk) = scheduler.next(w) {
            // The chunk is claimed (own share or stolen) — push its page
            // schedule before processing so the I/O threads warm the cache
            // while the engine works through the pivots.
            if let Some(pq) = &prefetch_queue {
                push_chunk_schedule(
                    pq,
                    &chunk,
                    guide_side.2,
                    guide_side.3,
                    follower_side.2,
                    follower_side.3,
                );
            }
            let _span = chunk_hist.as_ref().map(|h| h.span());
            for ng in chunk.start..chunk.end {
                engine.process_pivot(ng);
            }
            // Chunk boundary: if the follower dataset is now fully
            // covered, announce it so queued chunks are discarded
            // instead of dispatched.
            if let Some(todo) = &todo {
                if todo.remaining(!guide_is_a) == 0 {
                    scheduler.announce_prune();
                }
            }
        }
        let processed = engine.pivots_processed();
        let (raw, stats) = engine.finish();
        // Last join worker out closes the prefetch window; the I/O
        // threads drain whatever is still queued, then exit.
        if let Some(pq) = &prefetch_queue {
            if join_workers_left.fetch_sub(1, Ordering::AcqRel) == 1 {
                pq.close();
            }
        }
        (raw, stats, processed)
    });

    // Deterministic merge: concatenate in worker order, then normalize the
    // pair set the same way the sequential join does (sort + dedup). The
    // final vector is byte-identical to the sequential result.
    let mut raw = Vec::new();
    let mut worker_pivots = Vec::with_capacity(threads);
    // `.take(threads)` drops the trailing I/O-thread entries (always
    // empty) so the per-worker balance vector only covers join workers.
    for (pairs, worker_stats, processed) in worker_results.into_iter().take(threads) {
        raw.extend(pairs);
        stats.merge(&worker_stats);
        worker_pivots.push(processed);
    }
    raw.sort_unstable();
    raw.dedup();
    stats.unique_results = raw.len() as u64;

    let io_after = disk_a.stats().merged(&disk_b.stats());
    stats.sim_io = io_after.delta_since(&io_before).sim_io_time();

    // Prefetch accounting: sweep still-resident-but-untouched prefetched
    // frames into the unused counter first (the eviction path alone
    // undercounts at end of run), then sum both sides.
    let (mut pf_issued, mut pf_hits, mut pf_unused) = (0, 0, 0);
    for c in [&cache_a, &cache_b].into_iter().flatten() {
        if prefetch_on {
            c.reclaim_unused_prefetch();
        }
        let s = c.stats();
        pf_issued += s.prefetch_issued;
        pf_hits += s.prefetch_hits;
        pf_unused += s.prefetch_unused;
    }

    let report = ExecReport {
        threads,
        pivots: worker_pivots.iter().sum(),
        chunks: scheduler.chunk_count(),
        chunk_size: scheduler.chunk_size(),
        steals: scheduler.steals(),
        worker_pivots,
        chunks_pruned: scheduler.chunks_pruned(),
        prefetch_issued: pf_issued,
        prefetch_hits: pf_hits,
        prefetch_unused: pf_unused,
    };

    // Run-end telemetry: publish the merged record once (workers never
    // publish individually), plus the scheduler's balance counters and the
    // shared caches' internals. `cache.hits`/`cache.misses` come from the
    // merged handle-local pool counters inside `stats`.
    if obs.is_enabled() {
        use tfm_obs::names;
        stats.publish(obs);
        io_after.delta_since(&io_before).publish(obs);
        obs.counter(names::JOIN_PIVOTS).add(report.pivots);
        obs.counter(names::JOIN_CHUNKS).add(report.chunks as u64);
        obs.counter(names::JOIN_CHUNKS_PRUNED)
            .add(report.chunks_pruned);
        obs.counter(names::JOIN_STEALS).add(report.steals);
        obs.histogram(names::JOIN_WALL_NANOS)
            .record(wall_start.elapsed().as_nanos() as u64);
        // The join-path slice of the prefetch pipeline, published under its
        // own prefix so a mis-sized `--readahead` shows up by itself (the
        // generic `io.prefetch.*` totals flow via `publish_shared_extras`).
        if prefetch_on {
            obs.counter(names::IO_PREFETCH_JOIN_ISSUED)
                .add(report.prefetch_issued);
            obs.counter(names::IO_PREFETCH_JOIN_HITS)
                .add(report.prefetch_hits);
            obs.counter(names::IO_PREFETCH_JOIN_UNUSED)
                .add(report.prefetch_unused);
        }
        if let Some(c) = &cache_a {
            c.stats().publish_shared_extras(obs);
        }
        if let Some(c) = &cache_b {
            c.stats().publish_shared_extras(obs);
        }
    }
    (JoinOutcome { pairs: raw, stats }, report)
}

/// Runs the TRANSFORMERS join between two indexed datasets in parallel
/// over `threads` workers (`threads == 0` is treated as 1).
///
/// Guide pivots are sharded across a scoped worker pool; each worker
/// explores and joins its pivots with a private [`PivotEngine`], performing
/// role and layout transformations within its chunks and pruning
/// candidates through the shared coverage board (see the module docs for
/// the protocol; [`JoinConfig::worker_role_transforms`] and
/// [`JoinConfig::cross_worker_pruning`] opt out). The per-worker results
/// are merged deterministically: the returned pair vector is
/// **byte-identical** to [`transformers::transformers_join`]'s for any
/// thread count and feature combination, and the statistics are exact sums
/// of the per-worker counters.
pub fn parallel_join(
    idx_a: &TransformersIndex,
    disk_a: &Disk,
    idx_b: &TransformersIndex,
    disk_b: &Disk,
    cfg: &JoinConfig,
    threads: usize,
) -> JoinOutcome {
    parallel_join_with_report(idx_a, disk_a, idx_b, disk_b, cfg, threads).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_datagen::{generate, DatasetSpec, Distribution};
    use tfm_storage::Disk;
    use transformers::{transformers_join, IndexConfig};

    fn build(spec: &DatasetSpec) -> (Disk, TransformersIndex) {
        let disk = Disk::default_in_memory();
        let idx = TransformersIndex::build(&disk, generate(spec), &IndexConfig::default());
        (disk, idx)
    }

    fn uniform(count: usize, seed: u64) -> DatasetSpec {
        DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(count, seed)
        }
    }

    #[test]
    fn matches_sequential_on_uniform_data() {
        let (disk_a, idx_a) = build(&uniform(3_000, 1));
        let (disk_b, idx_b) = build(&uniform(3_000, 2));
        let cfg = JoinConfig::default();
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);
        for threads in [1, 2, 4] {
            let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, threads);
            assert_eq!(par.pairs, seq.pairs, "threads = {threads}");
            assert_eq!(par.stats.unique_results, seq.stats.unique_results);
        }
    }

    #[test]
    fn matches_sequential_on_skewed_data() {
        let (disk_a, idx_a) = build(&DatasetSpec {
            max_side: 5.0,
            ..DatasetSpec::with_distribution(
                6_000,
                Distribution::MassiveCluster {
                    clusters: 4,
                    elements_per_cluster: 1_500,
                },
                3,
            )
        });
        let (disk_b, idx_b) = build(&uniform(6_000, 4));
        let cfg = JoinConfig::default();
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);
        let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 4);
        assert_eq!(par.pairs, seq.pairs);
    }

    #[test]
    fn guide_pick_b_still_orients_pairs_as_a_b() {
        let (disk_a, idx_a) = build(&uniform(1_500, 5));
        let (disk_b, idx_b) = build(&uniform(4_000, 6));
        let cfg = JoinConfig {
            first_guide: GuidePick::B,
            ..JoinConfig::default()
        };
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);
        let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 3);
        assert_eq!(par.pairs, seq.pairs);
    }

    #[test]
    fn report_accounts_for_every_pivot() {
        let (disk_a, idx_a) = build(&uniform(5_000, 7));
        let (disk_b, idx_b) = build(&uniform(5_000, 8));
        let cfg = JoinConfig::default();
        let (out, report) = parallel_join_with_report(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 4);
        assert!(out.stats.unique_results > 0);
        assert_eq!(report.threads, 4);
        assert_eq!(report.worker_pivots.len(), 4);
        assert_eq!(report.pivots as usize, idx_a.nodes().len());
        assert_eq!(report.worker_pivots.iter().sum::<u64>(), report.pivots);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let (disk_a, idx_a) = build(&uniform(1_000, 9));
        let disk_e = Disk::default_in_memory();
        let idx_e = TransformersIndex::build(&disk_e, Vec::new(), &IndexConfig::default());
        let cfg = JoinConfig::default();
        assert!(parallel_join(&idx_a, &disk_a, &idx_e, &disk_e, &cfg, 4)
            .pairs
            .is_empty());
        assert!(parallel_join(&idx_e, &disk_e, &idx_a, &disk_a, &cfg, 4)
            .pairs
            .is_empty());
        assert!(parallel_join(&idx_e, &disk_e, &idx_e, &disk_e, &cfg, 2)
            .pairs
            .is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let (disk_a, idx_a) = build(&uniform(800, 10));
        let (disk_b, idx_b) = build(&uniform(800, 11));
        let cfg = JoinConfig::default();
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);
        let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 0);
        assert_eq!(par.pairs, seq.pairs);
    }

    #[test]
    fn stats_cover_the_work_done() {
        let (disk_a, idx_a) = build(&uniform(4_000, 12));
        let (disk_b, idx_b) = build(&uniform(4_000, 13));
        let cfg = JoinConfig::default();
        let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 4);
        assert_eq!(par.stats.unique_results, par.pairs.len() as u64);
        assert!(par.stats.pages_read > 0);
        assert!(par.stats.metadata_pages_read > 0);
        assert!(par.stats.walk_steps > 0);
        assert!(par.stats.cross_worker_pruned_units <= par.stats.pruned_units);
    }

    /// Clustered-vs-uniform fixture with node capacities small enough that
    /// the density contrast is *local* and role transformations fire.
    fn adaptive_fixture() -> (Disk, TransformersIndex, Disk, TransformersIndex) {
        let idx_cfg = IndexConfig {
            unit_capacity: Some(32),
            node_capacity: Some(8),
            ..IndexConfig::default()
        };
        let a = generate(&DatasetSpec {
            max_side: 4.0,
            ..DatasetSpec::with_distribution(10_000, Distribution::massive_cluster_for(10_000), 14)
        });
        let b = generate(&DatasetSpec {
            max_side: 4.0,
            ..DatasetSpec::uniform(10_000, 15)
        });
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let idx_a = TransformersIndex::build(&disk_a, a, &idx_cfg);
        let idx_b = TransformersIndex::build(&disk_b, b, &idx_cfg);
        (disk_a, idx_a, disk_b, idx_b)
    }

    #[test]
    fn adaptive_workers_match_sequential_and_transform() {
        let (disk_a, idx_a, disk_b, idx_b) = adaptive_fixture();
        let cfg = JoinConfig::default();
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);
        for threads in [1, 2, 4] {
            let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, threads);
            assert_eq!(par.pairs, seq.pairs, "threads = {threads}");
            assert!(
                par.stats.role_transformations > 0,
                "threads = {threads}: local contrast should switch roles: {:?}",
                par.stats
            );
            assert!(
                par.stats.pruned_units > 0,
                "threads = {threads}: switched pivots should feed the to-do filter: {:?}",
                par.stats
            );
        }
    }

    #[test]
    fn recorded_skew_changes_chunking_not_results() {
        let (disk_a, idx_a, disk_b, idx_b) = adaptive_fixture();
        let base = JoinConfig::default();
        let (seq_out, first_report) =
            parallel_join_with_report(&idx_a, &disk_a, &idx_b, &disk_b, &base, 4);
        let skew = first_report.steal_fraction();
        assert!((0.0..=1.0).contains(&skew), "skew out of range: {skew}");
        // Feed the recorded signal back, at both extremes for good measure.
        for forced in [skew, 0.0, 1.0] {
            let cfg = base.with_recorded_skew(forced);
            let (out, report) =
                parallel_join_with_report(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 4);
            assert_eq!(out.pairs, seq_out.pairs, "skew = {forced}");
            assert_eq!(
                report.chunk_size,
                JoinScheduler::adaptive_chunk_size(report.pivots as usize, 4, Some(forced))
            );
        }
    }

    #[test]
    fn steal_fraction_handles_degenerate_reports() {
        let empty = ExecReport {
            threads: 2,
            pivots: 0,
            chunks: 0,
            chunk_size: 1,
            steals: 0,
            worker_pivots: vec![0, 0],
            chunks_pruned: 0,
            prefetch_issued: 0,
            prefetch_hits: 0,
            prefetch_unused: 0,
        };
        assert_eq!(empty.steal_fraction(), 0.0);
        assert_eq!(empty.unused_prefetch_fraction(), 0.0);
        let all_pruned = ExecReport {
            chunks: 8,
            chunks_pruned: 8,
            ..empty.clone()
        };
        assert_eq!(all_pruned.steal_fraction(), 0.0);
        let half_unused = ExecReport {
            prefetch_issued: 10,
            prefetch_hits: 5,
            prefetch_unused: 5,
            ..empty
        };
        assert_eq!(half_unused.unused_prefetch_fraction(), 0.5);
    }

    #[test]
    fn prefetch_pipeline_matches_sequential_and_issues_pages() {
        let (disk_a, idx_a, disk_b, idx_b) = adaptive_fixture();
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &JoinConfig::default());
        for threads in [1, 2, 4] {
            for io_depth in [1, 4] {
                let cfg = JoinConfig::default()
                    .with_readahead(256)
                    .with_io_depth(io_depth);
                let (par, report) =
                    parallel_join_with_report(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, threads);
                assert_eq!(
                    par.pairs, seq.pairs,
                    "threads={threads} io_depth={io_depth}: prefetch changed results"
                );
                assert!(
                    report.prefetch_issued > 0,
                    "threads={threads} io_depth={io_depth}: no pages prefetched"
                );
                assert_eq!(
                    report.prefetch_issued,
                    report.prefetch_hits + report.prefetch_unused,
                    "threads={threads} io_depth={io_depth}: every issued prefetch \
                     must resolve to a hit or be reclaimed as unused"
                );
                assert_eq!(report.worker_pivots.len(), threads.max(1));
            }
        }
    }

    #[test]
    fn prefetch_under_2q_policy_matches_sequential() {
        let (disk_a, idx_a) = build(&uniform(3_000, 16));
        let (disk_b, idx_b) = build(&uniform(3_000, 17));
        let base = JoinConfig::default();
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &base);
        let cfg = base
            .with_cache_policy(tfm_storage::CachePolicy::TwoQ)
            .with_readahead(128)
            .with_io_depth(2);
        let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 4);
        assert_eq!(par.pairs, seq.pairs);
    }

    #[test]
    fn every_feature_combination_matches_sequential() {
        let (disk_a, idx_a, disk_b, idx_b) = adaptive_fixture();
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &JoinConfig::default());
        for transforms in [false, true] {
            for pruning in [false, true] {
                let cfg = JoinConfig {
                    worker_role_transforms: transforms,
                    cross_worker_pruning: pruning,
                    ..JoinConfig::default()
                };
                for threads in [2, 4] {
                    let (par, report) =
                        parallel_join_with_report(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, threads);
                    assert_eq!(
                        par.pairs, seq.pairs,
                        "transforms={transforms} pruning={pruning} threads={threads}"
                    );
                    if !pruning {
                        assert_eq!(par.stats.cross_worker_pruned_units, 0);
                        assert_eq!(par.stats.pruned_pivots, 0);
                        assert_eq!(report.chunks_pruned, 0);
                    }
                    if !transforms {
                        assert_eq!(par.stats.role_transformations, 0);
                    }
                }
            }
        }
    }
}
