//! **tfm-exec** — parallel execution subsystem for the TRANSFORMERS
//! spatial join.
//!
//! The sequential [`transformers::transformers_join`] visits the guide's
//! space-node pivots one after the other. Per-pivot work — the adaptive
//! walk, the crawl, page reads and the in-memory grid hash join — only
//! *reads* the two indexes and disks, so once storage access is
//! thread-safe (which `tfm-storage` guarantees: `Disk` reads take `&self`
//! and its I/O counters are atomics), the join is embarrassingly parallel
//! across pivots. This crate supplies the machinery:
//!
//! * [`JoinScheduler`] — partitions the pivot list into contiguous chunks,
//!   statically sharded across workers, with work stealing for the
//!   stragglers that non-uniform data inevitably produces. Its **initial
//!   chunk size is adaptive**: derived from the pivot count and worker
//!   count, and tilted by a recorded skew signal
//!   ([`ExecReport::steal_fraction`] of a previous run, fed back through
//!   [`transformers::JoinConfig::recorded_steal_skew`]) — skewed
//!   workloads get finer chunks for stealing, balanced ones longer
//!   locality runs;
//! * a scoped **worker pool** ([`pool::StagePool`]) where each worker owns
//!   a private [`transformers::PivotEngine`] (its own buffer pools,
//!   exploration scratch, cost model and statistics accumulator);
//! * a **deterministic merge**: raw per-worker pair buffers are
//!   concatenated in worker order, sorted and deduplicated — exactly the
//!   normalization the sequential join applies — so [`parallel_join`]
//!   returns a byte-identical pair vector regardless of thread count or
//!   scheduling; per-worker [`transformers::TransformersStats`] are summed
//!   in worker order.
//!
//! # The extracted pool
//!
//! PR 3 extracted the scheduling and worker-spawn machinery out of this
//! crate's join path into the dependency-free `tfm-pool` crate, re-exported
//! here as [`pool`]: [`pool::ChunkScheduler`] (deques + stealing +
//! cancellation) and [`pool::StagePool`] (scoped workers, deterministic
//! map/merge combinators, parallel stable sort). The join path now runs on
//! those primitives, and so does everything *below* this crate in the
//! dependency graph — `tfm_partition::str_partition_pooled` and the core's
//! `IndexBuildPipeline` fan the index-build stages (STR passes,
//! element-page encoding, connectivity) over the same pool, which is what
//! makes `tfm build --build-threads N` possible. This crate keeps the
//! join-specific policy: pivot vocabulary, prune announcements, adaptive
//! chunk sizing.
//!
//! # The transformation / pruning protocol
//!
//! The paper's defining mechanism is *adaptivity*: role transformations
//! (§VI-A) and to-do-list pruning (§V). Both are stateful, which is why
//! PR 1 disabled them to keep workers independent. They are recovered
//! with one lock-free structure, [`transformers::SharedTodo`] — two
//! atomic bitmaps (*claimed*, *covered*) per dataset plus a remaining
//! counter — and three rules:
//!
//! 1. **Claim before switching.** A worker may role-switch onto follower
//!    node `nf` only after winning `try_claim(nf)` (a test-and-set bit).
//!    Exactly one worker processes each switched pivot; a losing worker
//!    simply continues its own pivot at node granularity, the same
//!    fallback the sequential join uses for an already-checked node.
//! 2. **Cover on completion.** A node's *covered* bit is set (`Release`)
//!    only after its pivot processing has emitted every one of its pairs
//!    into the owning worker's buffer. Candidate filters read the bit with
//!    `Acquire` and prune covered nodes' units. Two in-flight pivots can
//!    therefore never prune each other — that would need each node's
//!    completion to happen-before the other's filter point, a cycle — so
//!    no pair is ever lost, and the merged, normalized result stays
//!    byte-identical to the sequential join's at any thread count.
//! 3. **Announce exhaustion at chunk boundaries.** When the follower
//!    dataset's remaining counter hits zero, every pivot still queued
//!    would have its whole candidate list pruned. The worker that observes
//!    this calls [`JoinScheduler::announce_prune`]; the scheduler stops
//!    dealing chunks (own deques and steals alike) and reports the
//!    discarded tail as [`ExecReport::chunks_pruned`]. Within a chunk,
//!    engines make the same check per pivot
//!    ([`transformers::TransformersStats::pruned_pivots`]).
//!
//! Both features default **on** (see
//! [`transformers::JoinConfig::worker_role_transforms`] and
//! [`transformers::JoinConfig::cross_worker_pruning`]) and can be disabled
//! independently — `tfm join --no-transform` / `--no-prune` — which
//! restores PR 1's fully independent workers as an escape hatch and an
//! ablation baseline. Every combination returns the identical pair set.
//!
//! # Example
//!
//! ```
//! use tfm_storage::Disk;
//! use tfm_datagen::{generate, DatasetSpec};
//! use transformers::{transformers_join, IndexConfig, JoinConfig, TransformersIndex};
//! use tfm_exec::parallel_join;
//!
//! let disk_a = Disk::default_in_memory();
//! let disk_b = Disk::default_in_memory();
//! let idx_a = TransformersIndex::build(&disk_a, generate(&DatasetSpec::uniform(2_000, 1)), &IndexConfig::default());
//! let idx_b = TransformersIndex::build(&disk_b, generate(&DatasetSpec::uniform(2_000, 2)), &IndexConfig::default());
//!
//! let cfg = JoinConfig::default();
//! let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 4);
//! let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);
//! assert_eq!(par.pairs, seq.pairs);
//! ```

#![warn(missing_docs)]

mod scheduler;

pub use scheduler::{Chunk, JoinScheduler};

/// The generic scoped worker pool this subsystem runs on, re-exported from
/// the `tfm-pool` crate — spawn-scoped workers, chunked deque+steal
/// scheduling and deterministic merges, usable by any stage (the index
/// build pipeline in `transformers` fans out over the same primitives).
pub mod pool {
    pub use tfm_pool::{Chunk, ChunkScheduler, StagePool};
}

use std::sync::Arc;
use tfm_pool::StagePool;
use tfm_storage::{Disk, SharedPageCache};
use transformers::{
    EngineSide, GuidePick, JoinConfig, JoinOutcome, PivotEngine, SharedTodo, TransformersIndex,
    TransformersStats,
};

/// What one worker hands back: raw pairs, its stats, pivots processed.
type WorkerResult = (Vec<(u64, u64)>, TransformersStats, u64);

/// How a parallel join was executed: scheduling and balance counters.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Workers actually spawned.
    pub threads: usize,
    /// Guide pivots processed (sum over workers).
    pub pivots: u64,
    /// Chunks the pivot list was split into.
    pub chunks: usize,
    /// Pivots per chunk the scheduler aimed for.
    pub chunk_size: usize,
    /// Chunks a worker obtained by stealing from another worker's share.
    pub steals: u64,
    /// Pivots processed by each worker — the skew between entries shows
    /// how unbalanced the workload was before stealing evened it out.
    pub worker_pivots: Vec<u64>,
    /// Chunks discarded by a prune announcement: the follower dataset was
    /// fully covered before these chunks were dispatched, so their pivots
    /// could not have contributed any new pair.
    pub chunks_pruned: u64,
}

impl ExecReport {
    /// Fraction of dispatched chunks that were obtained by stealing, in
    /// `0.0..=1.0` — the recorded pivot-cost skew signal. Feed it back
    /// through [`transformers::JoinConfig::with_recorded_skew`] to let the
    /// next run of the same workload pick its chunk size adaptively
    /// (high steal fraction → finer chunks).
    pub fn steal_fraction(&self) -> f64 {
        let dispatched = self.chunks as u64 - self.chunks_pruned;
        if dispatched == 0 {
            return 0.0;
        }
        (self.steals as f64 / dispatched as f64).clamp(0.0, 1.0)
    }
}

/// Runs the TRANSFORMERS join in parallel over `threads` workers and also
/// returns the execution report.
///
/// See [`parallel_join`] for the semantics; this variant additionally
/// exposes scheduling counters for benchmarks and the CLI.
pub fn parallel_join_with_report(
    idx_a: &TransformersIndex,
    disk_a: &Disk,
    idx_b: &TransformersIndex,
    disk_b: &Disk,
    cfg: &JoinConfig,
    threads: usize,
) -> (JoinOutcome, ExecReport) {
    let threads = threads.max(1);
    let obs = tfm_obs::global();
    let wall_start = std::time::Instant::now();
    // Resolved once outside the worker loop; `None` while metrics are off,
    // so the per-chunk cost is a single branch.
    let chunk_hist = obs
        .is_enabled()
        .then(|| obs.histogram(tfm_obs::names::JOIN_CHUNK_NANOS));
    let io_before = disk_a.stats().merged(&disk_b.stats());
    let mut stats = TransformersStats::default();

    // Load each side's descriptor tables once (charged as metadata I/O,
    // exactly like the sequential join's startup); workers share them
    // read-only through `Arc`s.
    let (nodes_a, units_a, meta_a) = idx_a.load_metadata(disk_a);
    let (nodes_b, units_b, meta_b) = idx_b.load_metadata(disk_b);
    stats.metadata_pages_read += meta_a + meta_b;
    let (nodes_a, units_a) = (Arc::new(nodes_a), Arc::new(units_a));
    let (nodes_b, units_b) = (Arc::new(nodes_b), Arc::new(units_b));

    // The configured first guide supplies the scheduler's pivot list; role
    // transformations (when enabled) let individual workers locally
    // re-pivot on the other side without changing that list.
    let guide_is_a = matches!(cfg.first_guide, GuidePick::A);
    // One routing decision so index, disk and tables can never pair up
    // inconsistently: (idx, disk, nodes, units) per role.
    let (guide_side, follower_side) = if guide_is_a {
        (
            (idx_a, disk_a, &nodes_a, &units_a),
            (idx_b, disk_b, &nodes_b, &units_b),
        )
    } else {
        (
            (idx_b, disk_b, &nodes_b, &units_b),
            (idx_a, disk_a, &nodes_a, &units_a),
        )
    };

    // The per-dataset page caches shared by every worker (the default):
    // one lock-striped cache per disk, sized to the configured pool budget
    // and sharded for the worker count. `--private-pool` falls back to
    // per-worker pools with the budget split across workers.
    let shards = SharedPageCache::shards_for_threads(threads);
    let cache_a = cfg
        .shared_cache
        .then(|| SharedPageCache::with_shards(disk_a, cfg.pool_pages, shards));
    let cache_b = cfg
        .shared_cache
        .then(|| SharedPageCache::with_shards(disk_b, cfg.pool_pages, shards));
    let (guide_cache, follower_cache) = if guide_is_a {
        (cache_a.as_ref(), cache_b.as_ref())
    } else {
        (cache_b.as_ref(), cache_a.as_ref())
    };

    let pivots = guide_side.2.len();
    // Adaptive initial chunk size: pivot count, worker count, and — when a
    // previous run recorded one — the observed steal fraction as the skew
    // signal (see the scheduler docs for the policy).
    let chunk_size = JoinScheduler::adaptive_chunk_size(pivots, threads, cfg.recorded_steal_skew);
    let scheduler = JoinScheduler::new(pivots, threads, chunk_size);

    // The shared coverage board recovering the sequential path's
    // to-do-list pruning across workers (see the module docs for the
    // protocol). `--no-prune` drops it: workers then prune only locally.
    let todo = cfg
        .cross_worker_pruning
        .then(|| Arc::new(SharedTodo::new(nodes_a.len(), nodes_b.len())));

    // Private-pool ablation: split the configured buffer-pool budget
    // across the workers so the aggregate page-cache size stays close to
    // the sequential join's instead of silently multiplying by the worker
    // count. (Each pool needs at least one page, so with `threads >
    // pool_pages` the aggregate necessarily exceeds the budget.) In
    // shared mode the budget is the shared cache's capacity and needs no
    // split.
    let worker_cfg = JoinConfig {
        pool_pages: if cfg.shared_cache {
            cfg.pool_pages
        } else {
            (cfg.pool_pages / threads).max(1)
        },
        ..*cfg
    };

    // The scoped worker pool (extracted to `tfm-pool` in PR 3): one worker
    // per thread, results collected in worker order — the deterministic
    // merge below depends on that order.
    let worker_pool = StagePool::new(threads);
    let worker_results: Vec<WorkerResult> = worker_pool.scoped_run(|w| {
        let guide = EngineSide {
            idx: guide_side.0,
            disk: guide_side.1,
            nodes: Arc::clone(guide_side.2),
            units: Arc::clone(guide_side.3),
            cache: guide_cache,
        };
        let follower = EngineSide {
            idx: follower_side.0,
            disk: follower_side.1,
            nodes: Arc::clone(follower_side.2),
            units: Arc::clone(follower_side.3),
            cache: follower_cache,
        };
        let mut engine = PivotEngine::new(guide, follower, guide_is_a, &worker_cfg)
            .with_role_transforms(worker_cfg.worker_role_transforms);
        if let Some(todo) = &todo {
            engine = engine.with_shared_todo(Arc::clone(todo));
        }
        while let Some(chunk) = scheduler.next(w) {
            let _span = chunk_hist.as_ref().map(|h| h.span());
            for ng in chunk.start..chunk.end {
                engine.process_pivot(ng);
            }
            // Chunk boundary: if the follower dataset is now fully
            // covered, announce it so queued chunks are discarded
            // instead of dispatched.
            if let Some(todo) = &todo {
                if todo.remaining(!guide_is_a) == 0 {
                    scheduler.announce_prune();
                }
            }
        }
        let processed = engine.pivots_processed();
        let (raw, stats) = engine.finish();
        (raw, stats, processed)
    });

    // Deterministic merge: concatenate in worker order, then normalize the
    // pair set the same way the sequential join does (sort + dedup). The
    // final vector is byte-identical to the sequential result.
    let mut raw = Vec::new();
    let mut worker_pivots = Vec::with_capacity(threads);
    for (pairs, worker_stats, processed) in worker_results {
        raw.extend(pairs);
        stats.merge(&worker_stats);
        worker_pivots.push(processed);
    }
    raw.sort_unstable();
    raw.dedup();
    stats.unique_results = raw.len() as u64;

    let io_after = disk_a.stats().merged(&disk_b.stats());
    stats.sim_io = io_after.delta_since(&io_before).sim_io_time();

    let report = ExecReport {
        threads,
        pivots: worker_pivots.iter().sum(),
        chunks: scheduler.chunk_count(),
        chunk_size: scheduler.chunk_size(),
        steals: scheduler.steals(),
        worker_pivots,
        chunks_pruned: scheduler.chunks_pruned(),
    };

    // Run-end telemetry: publish the merged record once (workers never
    // publish individually), plus the scheduler's balance counters and the
    // shared caches' internals. `cache.hits`/`cache.misses` come from the
    // merged handle-local pool counters inside `stats`.
    if obs.is_enabled() {
        use tfm_obs::names;
        stats.publish(obs);
        io_after.delta_since(&io_before).publish(obs);
        obs.counter(names::JOIN_PIVOTS).add(report.pivots);
        obs.counter(names::JOIN_CHUNKS).add(report.chunks as u64);
        obs.counter(names::JOIN_CHUNKS_PRUNED)
            .add(report.chunks_pruned);
        obs.counter(names::JOIN_STEALS).add(report.steals);
        obs.histogram(names::JOIN_WALL_NANOS)
            .record(wall_start.elapsed().as_nanos() as u64);
        if let Some(c) = &cache_a {
            c.stats().publish_shared_extras(obs);
        }
        if let Some(c) = &cache_b {
            c.stats().publish_shared_extras(obs);
        }
    }
    (JoinOutcome { pairs: raw, stats }, report)
}

/// Runs the TRANSFORMERS join between two indexed datasets in parallel
/// over `threads` workers (`threads == 0` is treated as 1).
///
/// Guide pivots are sharded across a scoped worker pool; each worker
/// explores and joins its pivots with a private [`PivotEngine`], performing
/// role and layout transformations within its chunks and pruning
/// candidates through the shared coverage board (see the module docs for
/// the protocol; [`JoinConfig::worker_role_transforms`] and
/// [`JoinConfig::cross_worker_pruning`] opt out). The per-worker results
/// are merged deterministically: the returned pair vector is
/// **byte-identical** to [`transformers::transformers_join`]'s for any
/// thread count and feature combination, and the statistics are exact sums
/// of the per-worker counters.
pub fn parallel_join(
    idx_a: &TransformersIndex,
    disk_a: &Disk,
    idx_b: &TransformersIndex,
    disk_b: &Disk,
    cfg: &JoinConfig,
    threads: usize,
) -> JoinOutcome {
    parallel_join_with_report(idx_a, disk_a, idx_b, disk_b, cfg, threads).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_datagen::{generate, DatasetSpec, Distribution};
    use tfm_storage::Disk;
    use transformers::{transformers_join, IndexConfig};

    fn build(spec: &DatasetSpec) -> (Disk, TransformersIndex) {
        let disk = Disk::default_in_memory();
        let idx = TransformersIndex::build(&disk, generate(spec), &IndexConfig::default());
        (disk, idx)
    }

    fn uniform(count: usize, seed: u64) -> DatasetSpec {
        DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(count, seed)
        }
    }

    #[test]
    fn matches_sequential_on_uniform_data() {
        let (disk_a, idx_a) = build(&uniform(3_000, 1));
        let (disk_b, idx_b) = build(&uniform(3_000, 2));
        let cfg = JoinConfig::default();
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);
        for threads in [1, 2, 4] {
            let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, threads);
            assert_eq!(par.pairs, seq.pairs, "threads = {threads}");
            assert_eq!(par.stats.unique_results, seq.stats.unique_results);
        }
    }

    #[test]
    fn matches_sequential_on_skewed_data() {
        let (disk_a, idx_a) = build(&DatasetSpec {
            max_side: 5.0,
            ..DatasetSpec::with_distribution(
                6_000,
                Distribution::MassiveCluster {
                    clusters: 4,
                    elements_per_cluster: 1_500,
                },
                3,
            )
        });
        let (disk_b, idx_b) = build(&uniform(6_000, 4));
        let cfg = JoinConfig::default();
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);
        let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 4);
        assert_eq!(par.pairs, seq.pairs);
    }

    #[test]
    fn guide_pick_b_still_orients_pairs_as_a_b() {
        let (disk_a, idx_a) = build(&uniform(1_500, 5));
        let (disk_b, idx_b) = build(&uniform(4_000, 6));
        let cfg = JoinConfig {
            first_guide: GuidePick::B,
            ..JoinConfig::default()
        };
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);
        let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 3);
        assert_eq!(par.pairs, seq.pairs);
    }

    #[test]
    fn report_accounts_for_every_pivot() {
        let (disk_a, idx_a) = build(&uniform(5_000, 7));
        let (disk_b, idx_b) = build(&uniform(5_000, 8));
        let cfg = JoinConfig::default();
        let (out, report) = parallel_join_with_report(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 4);
        assert!(out.stats.unique_results > 0);
        assert_eq!(report.threads, 4);
        assert_eq!(report.worker_pivots.len(), 4);
        assert_eq!(report.pivots as usize, idx_a.nodes().len());
        assert_eq!(report.worker_pivots.iter().sum::<u64>(), report.pivots);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let (disk_a, idx_a) = build(&uniform(1_000, 9));
        let disk_e = Disk::default_in_memory();
        let idx_e = TransformersIndex::build(&disk_e, Vec::new(), &IndexConfig::default());
        let cfg = JoinConfig::default();
        assert!(parallel_join(&idx_a, &disk_a, &idx_e, &disk_e, &cfg, 4)
            .pairs
            .is_empty());
        assert!(parallel_join(&idx_e, &disk_e, &idx_a, &disk_a, &cfg, 4)
            .pairs
            .is_empty());
        assert!(parallel_join(&idx_e, &disk_e, &idx_e, &disk_e, &cfg, 2)
            .pairs
            .is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let (disk_a, idx_a) = build(&uniform(800, 10));
        let (disk_b, idx_b) = build(&uniform(800, 11));
        let cfg = JoinConfig::default();
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);
        let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 0);
        assert_eq!(par.pairs, seq.pairs);
    }

    #[test]
    fn stats_cover_the_work_done() {
        let (disk_a, idx_a) = build(&uniform(4_000, 12));
        let (disk_b, idx_b) = build(&uniform(4_000, 13));
        let cfg = JoinConfig::default();
        let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 4);
        assert_eq!(par.stats.unique_results, par.pairs.len() as u64);
        assert!(par.stats.pages_read > 0);
        assert!(par.stats.metadata_pages_read > 0);
        assert!(par.stats.walk_steps > 0);
        assert!(par.stats.cross_worker_pruned_units <= par.stats.pruned_units);
    }

    /// Clustered-vs-uniform fixture with node capacities small enough that
    /// the density contrast is *local* and role transformations fire.
    fn adaptive_fixture() -> (Disk, TransformersIndex, Disk, TransformersIndex) {
        let idx_cfg = IndexConfig {
            unit_capacity: Some(32),
            node_capacity: Some(8),
            ..IndexConfig::default()
        };
        let a = generate(&DatasetSpec {
            max_side: 4.0,
            ..DatasetSpec::with_distribution(10_000, Distribution::massive_cluster_for(10_000), 14)
        });
        let b = generate(&DatasetSpec {
            max_side: 4.0,
            ..DatasetSpec::uniform(10_000, 15)
        });
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let idx_a = TransformersIndex::build(&disk_a, a, &idx_cfg);
        let idx_b = TransformersIndex::build(&disk_b, b, &idx_cfg);
        (disk_a, idx_a, disk_b, idx_b)
    }

    #[test]
    fn adaptive_workers_match_sequential_and_transform() {
        let (disk_a, idx_a, disk_b, idx_b) = adaptive_fixture();
        let cfg = JoinConfig::default();
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);
        for threads in [1, 2, 4] {
            let par = parallel_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, threads);
            assert_eq!(par.pairs, seq.pairs, "threads = {threads}");
            assert!(
                par.stats.role_transformations > 0,
                "threads = {threads}: local contrast should switch roles: {:?}",
                par.stats
            );
            assert!(
                par.stats.pruned_units > 0,
                "threads = {threads}: switched pivots should feed the to-do filter: {:?}",
                par.stats
            );
        }
    }

    #[test]
    fn recorded_skew_changes_chunking_not_results() {
        let (disk_a, idx_a, disk_b, idx_b) = adaptive_fixture();
        let base = JoinConfig::default();
        let (seq_out, first_report) =
            parallel_join_with_report(&idx_a, &disk_a, &idx_b, &disk_b, &base, 4);
        let skew = first_report.steal_fraction();
        assert!((0.0..=1.0).contains(&skew), "skew out of range: {skew}");
        // Feed the recorded signal back, at both extremes for good measure.
        for forced in [skew, 0.0, 1.0] {
            let cfg = base.with_recorded_skew(forced);
            let (out, report) =
                parallel_join_with_report(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, 4);
            assert_eq!(out.pairs, seq_out.pairs, "skew = {forced}");
            assert_eq!(
                report.chunk_size,
                JoinScheduler::adaptive_chunk_size(report.pivots as usize, 4, Some(forced))
            );
        }
    }

    #[test]
    fn steal_fraction_handles_degenerate_reports() {
        let empty = ExecReport {
            threads: 2,
            pivots: 0,
            chunks: 0,
            chunk_size: 1,
            steals: 0,
            worker_pivots: vec![0, 0],
            chunks_pruned: 0,
        };
        assert_eq!(empty.steal_fraction(), 0.0);
        let all_pruned = ExecReport {
            chunks: 8,
            chunks_pruned: 8,
            ..empty.clone()
        };
        assert_eq!(all_pruned.steal_fraction(), 0.0);
    }

    #[test]
    fn every_feature_combination_matches_sequential() {
        let (disk_a, idx_a, disk_b, idx_b) = adaptive_fixture();
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &JoinConfig::default());
        for transforms in [false, true] {
            for pruning in [false, true] {
                let cfg = JoinConfig {
                    worker_role_transforms: transforms,
                    cross_worker_pruning: pruning,
                    ..JoinConfig::default()
                };
                for threads in [2, 4] {
                    let (par, report) =
                        parallel_join_with_report(&idx_a, &disk_a, &idx_b, &disk_b, &cfg, threads);
                    assert_eq!(
                        par.pairs, seq.pairs,
                        "transforms={transforms} pruning={pruning} threads={threads}"
                    );
                    if !pruning {
                        assert_eq!(par.stats.cross_worker_pruned_units, 0);
                        assert_eq!(par.stats.pruned_pivots, 0);
                        assert_eq!(report.chunks_pruned, 0);
                    }
                    if !transforms {
                        assert_eq!(par.stats.role_transformations, 0);
                    }
                }
            }
        }
    }
}
