//! The [`QueryEngine`] trait and its three implementations.
//!
//! An engine wraps one *built, immutable* index structure and hands out
//! per-worker [`QuerySession`]s. All mutable state a query needs — the
//! buffer pool, exploration scratch, walk position — lives in the session,
//! so any number of workers can serve queries against one shared engine
//! with no synchronization beyond the (already thread-safe) simulated
//! disk.
//!
//! * [`TransformersEngine`] — serves from the TRANSFORMERS hierarchy: the
//!   in-memory descriptor tables prefilter nodes then units by page MBB,
//!   and only the surviving unit pages are read. This is the structure the
//!   paper builds for the join, reused as a query-serving index.
//! * [`GipsyEngine`] — the GIPSY strategy fixed at element granularity:
//!   each probe directs an adaptive walk to the probe's region (resuming
//!   from the previous probe's position, which is what makes Hilbert
//!   batching help it) and a crawl collects the candidate pages.
//! * [`RtreeEngine`] — the R-tree baseline: a root-to-leaf range descent
//!   per probe, paying the sibling-overlap reads the paper highlights.
//! * [`MutableTransformersEngine`] — the TRANSFORMERS hierarchy under a
//!   [`MutableTransformers`] overlay: sessions query the latest published
//!   snapshot, so serves run concurrently with mutation batches without
//!   ever blocking on the writer.

use tfm_geom::{ElementId, SpatialQuery};
use tfm_rtree::{RTree, RtreeStats};
use tfm_storage::{
    CacheHandle, CachePolicy, CacheStats, Disk, IoStatsSnapshot, PageId, PageReads, SharedPageCache,
};
use transformers::{explore, MutableTransformers, TransformersIndex, UnitReader};

/// A built index structure that can serve spatial queries.
///
/// Engines are shared (`&self`) across workers; each worker obtains a
/// private [`QuerySession`] carrying all per-worker mutable state.
pub trait QueryEngine: Sync {
    /// Approach-style label for reports ("TRANSFORMERS", "GIPSY", …).
    fn label(&self) -> &'static str;

    /// Point-in-time I/O counters of the engine's disk(s); the serve
    /// driver charges the delta to the run.
    fn io_snapshot(&self) -> IoStatsSnapshot;

    /// Creates a per-worker session. In private-pool mode the session
    /// owns a buffer pool of `pool_pages` pages; engines constructed with
    /// a shared cache ignore `pool_pages` and hand out thin views over
    /// the one process-wide cache instead.
    fn session(&self, pool_pages: usize) -> Box<dyn QuerySession + '_>;

    /// Counters of the engine's shared page cache (`None` when the engine
    /// runs the private-pool ablation).
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Drops the shared cache's resident pages and zeroes its counters so
    /// comparable measurement runs start cold (no-op in private mode).
    fn reset_cache(&self) {}

    /// True when the engine can accept readahead: it has a shared cache
    /// to land pages into and a cheap way to compute a schedule.
    fn supports_prefetch(&self) -> bool {
        false
    }

    /// The pages `queries` will touch, deduplicated and in ascending page
    /// order — a readahead schedule. The serve feeder hands each batch's
    /// Hilbert-ordered probes here before admitting the batch, and pushes
    /// the result onto the prefetch queue. Engines without a cheap
    /// in-memory way to compute this return an empty schedule (readahead
    /// stays idle; results are unaffected).
    fn prefetch_schedule(&self, _queries: &[SpatialQuery]) -> Vec<PageId> {
        Vec::new()
    }

    /// Lands one scheduled page into the engine's shared cache (no-op in
    /// private-pool mode). Called from dedicated I/O threads with a
    /// reusable scratch buffer; the disk wait happens outside any cache
    /// lock (see [`SharedPageCache::prefetch_page`]).
    fn prefetch_page(&self, _id: PageId, _scratch: &mut Vec<u8>) {}
}

/// The unit pages `queries` will touch in a TRANSFORMERS-style hierarchy:
/// node-level then unit-level page-MBB prefilter, identical to the
/// per-probe filtering in the sessions, evaluated purely against the
/// in-memory descriptor tables (no page is read). Units are numbered in
/// page order, so sort+dedup yields an ascending sweep — with a
/// Hilbert-ordered batch this is exactly the order the workers will ask
/// for the pages in.
fn unit_pages_for(idx: &TransformersIndex, queries: &[SpatialQuery]) -> Vec<PageId> {
    let units = idx.units();
    let mut pages = Vec::new();
    for query in queries {
        let probe = query.probe();
        for node in idx.nodes() {
            if !node.page_mbb.intersects(&probe) {
                continue;
            }
            for u in node.unit_range() {
                if units[u].page_mbb.intersects(&probe) {
                    pages.push(units[u].page);
                }
            }
        }
    }
    pages.sort_unstable();
    pages.dedup();
    pages
}

/// Per-worker query executor: owns the worker's buffer pool and scratch.
pub trait QuerySession {
    /// Executes one query, returning the matching element ids in
    /// ascending order (deterministic regardless of worker count,
    /// batching, or execution order).
    fn execute(&mut self, query: &SpatialQuery) -> Vec<ElementId>;

    /// `(hits, misses)` of this session's private buffer pool.
    fn pool_counters(&self) -> (u64, u64);
}

/// Serves queries from a [`TransformersIndex`]'s hierarchy.
pub struct TransformersEngine<'a> {
    idx: &'a TransformersIndex,
    disk: &'a Disk,
    cache: Option<SharedPageCache<'a>>,
}

impl<'a> TransformersEngine<'a> {
    /// Wraps a built index and its disk (private-pool sessions; chain
    /// [`with_shared_cache`](Self::with_shared_cache) for the shared
    /// read path).
    pub fn new(idx: &'a TransformersIndex, disk: &'a Disk) -> Self {
        Self {
            idx,
            disk,
            cache: None,
        }
    }

    /// Attaches a process-wide [`SharedPageCache`] of `pages` pages over
    /// `shards` locks: every session becomes a thin view over it
    /// (zero-copy pins + shared decoded element pages).
    pub fn with_shared_cache(self, pages: usize, shards: usize) -> Self {
        self.with_shared_cache_policy(pages, shards, CachePolicy::Clock)
    }

    /// [`with_shared_cache`](Self::with_shared_cache) with an explicit
    /// eviction policy (`--cache-policy`): CLOCK, or the scan-resistant 2Q
    /// admission that keeps readahead traffic probationary.
    pub fn with_shared_cache_policy(
        mut self,
        pages: usize,
        shards: usize,
        policy: CachePolicy,
    ) -> Self {
        self.cache = Some(SharedPageCache::with_policy(
            self.disk, pages, shards, policy,
        ));
        self
    }
}

impl QueryEngine for TransformersEngine<'_> {
    fn label(&self) -> &'static str {
        "TRANSFORMERS"
    }

    fn io_snapshot(&self) -> IoStatsSnapshot {
        self.disk.stats()
    }

    fn session(&self, pool_pages: usize) -> Box<dyn QuerySession + '_> {
        Box::new(TransformersSession {
            idx: self.idx,
            reader: match &self.cache {
                Some(cache) => self.idx.unit_reader_shared(cache),
                None => self.idx.unit_reader(self.disk, pool_pages),
            },
        })
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(SharedPageCache::stats)
    }

    fn reset_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
            cache.reset_stats();
        }
    }

    fn supports_prefetch(&self) -> bool {
        self.cache.is_some()
    }

    fn prefetch_schedule(&self, queries: &[SpatialQuery]) -> Vec<PageId> {
        unit_pages_for(self.idx, queries)
    }

    fn prefetch_page(&self, id: PageId, scratch: &mut Vec<u8>) {
        if let Some(cache) = &self.cache {
            cache.prefetch_page(id, scratch);
        }
    }
}

struct TransformersSession<'a> {
    idx: &'a TransformersIndex,
    reader: UnitReader<'a, 'a, 'a>,
}

impl QuerySession for TransformersSession<'_> {
    fn execute(&mut self, query: &SpatialQuery) -> Vec<ElementId> {
        let probe = query.probe();
        let mut out = Vec::new();
        let units = self.idx.units();
        // Node-level then unit-level prefilter on the tight page MBBs; a
        // unit whose page MBB misses the probe box cannot hold a match.
        // Units are numbered in page order, so the candidate pages are
        // visited in ascending page order — a spatial sweep, not a seek
        // storm.
        for node in self.idx.nodes() {
            if !node.page_mbb.intersects(&probe) {
                continue;
            }
            for u in node.unit_range() {
                if !units[u].page_mbb.intersects(&probe) {
                    continue;
                }
                // Zero-copy: the shared cache's decoded tier is borrowed
                // directly; private pools decode into the reader scratch.
                let elems = self.reader.elements(units[u].id);
                for e in elems.iter() {
                    if query.matches(&e.mbb) {
                        out.push(e.id);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn pool_counters(&self) -> (u64, u64) {
        (self.reader.hits(), self.reader.misses())
    }
}

/// Serves queries from a [`MutableTransformers`] overlay — the read side
/// of the online write path.
///
/// Unlike the immutable engines this one *shares* its cache with the
/// writer: mutation batches land pages in the cache's dirty tier before
/// any flush, so readers must go through the same [`SharedPageCache`] the
/// writer logs into (a private pool reading the raw disk would miss
/// unflushed state). Every [`QuerySession::execute`] call grabs the
/// overlay's latest published snapshot, so long-lived sessions observe
/// each committed batch without being recreated, and never block on the
/// writer.
pub struct MutableTransformersEngine<'a> {
    overlay: &'a MutableTransformers,
    cache: &'a SharedPageCache<'a>,
}

impl<'a> MutableTransformersEngine<'a> {
    /// Wraps a mutable overlay and the shared cache its writer flushes
    /// through.
    pub fn new(overlay: &'a MutableTransformers, cache: &'a SharedPageCache<'a>) -> Self {
        Self { overlay, cache }
    }
}

impl QueryEngine for MutableTransformersEngine<'_> {
    fn label(&self) -> &'static str {
        "TRANSFORMERS-MUT"
    }

    fn io_snapshot(&self) -> IoStatsSnapshot {
        self.cache.disk().stats()
    }

    fn session(&self, _pool_pages: usize) -> Box<dyn QuerySession + '_> {
        Box::new(MutableTransformersSession {
            overlay: self.overlay,
            handle: CacheHandle::shared(self.cache),
        })
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn reset_cache(&self) {
        // Dirty frames survive `clear` by design (they are the only copy
        // of committed-but-unflushed state), so resetting between
        // measurement runs never loses writes.
        self.cache.clear();
        self.cache.reset_stats();
    }

    fn supports_prefetch(&self) -> bool {
        true
    }

    // Base unit pages only: overflow chains would need page reads to
    // enumerate, and `prefetch_page` leaves resident (dirty) frames
    // untouched, so the hint stays sound under concurrent writes.
    fn prefetch_schedule(&self, queries: &[SpatialQuery]) -> Vec<PageId> {
        let snap = self.overlay.snapshot();
        let units = snap.units();
        let mut pages = Vec::new();
        for query in queries {
            let probe = query.probe();
            for node in snap.nodes() {
                if !node.page_mbb.intersects(&probe) {
                    continue;
                }
                for ui in node.first_unit..(node.first_unit + node.unit_count) {
                    let u = &units[ui as usize];
                    if u.count > 0 && u.page_mbb.intersects(&probe) {
                        pages.push(u.page);
                    }
                }
            }
        }
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    fn prefetch_page(&self, id: PageId, scratch: &mut Vec<u8>) {
        self.cache.prefetch_page(id, scratch);
    }
}

struct MutableTransformersSession<'a> {
    overlay: &'a MutableTransformers,
    handle: CacheHandle<'a, 'a>,
}

impl QuerySession for MutableTransformersSession<'_> {
    fn execute(&mut self, query: &SpatialQuery) -> Vec<ElementId> {
        self.overlay.snapshot().query(&mut self.handle, query)
    }

    fn pool_counters(&self) -> (u64, u64) {
        let c = self.handle.counters();
        (c.hits, c.misses)
    }
}

/// Serves queries GIPSY-style: per-probe directed walk + crawl at element
/// granularity over a connectivity-indexed dataset.
pub struct GipsyEngine<'a> {
    idx: &'a TransformersIndex,
    disk: &'a Disk,
    walk_patience: usize,
    cache: Option<SharedPageCache<'a>>,
}

impl<'a> GipsyEngine<'a> {
    /// Wraps the (dense-side) connectivity index and its disk.
    pub fn new(idx: &'a TransformersIndex, disk: &'a Disk) -> Self {
        Self {
            idx,
            disk,
            walk_patience: 64,
            cache: None,
        }
    }

    /// Attaches a process-wide [`SharedPageCache`]; see
    /// [`TransformersEngine::with_shared_cache`].
    pub fn with_shared_cache(self, pages: usize, shards: usize) -> Self {
        self.with_shared_cache_policy(pages, shards, CachePolicy::Clock)
    }

    /// [`with_shared_cache`](Self::with_shared_cache) with an explicit
    /// eviction policy; see
    /// [`TransformersEngine::with_shared_cache_policy`].
    pub fn with_shared_cache_policy(
        mut self,
        pages: usize,
        shards: usize,
        policy: CachePolicy,
    ) -> Self {
        self.cache = Some(SharedPageCache::with_policy(
            self.disk, pages, shards, policy,
        ));
        self
    }
}

impl QueryEngine for GipsyEngine<'_> {
    fn label(&self) -> &'static str {
        "GIPSY"
    }

    fn io_snapshot(&self) -> IoStatsSnapshot {
        self.disk.stats()
    }

    fn session(&self, pool_pages: usize) -> Box<dyn QuerySession + '_> {
        Box::new(GipsySession {
            idx: self.idx,
            reader: match &self.cache {
                Some(cache) => self.idx.unit_reader_shared(cache),
                None => self.idx.unit_reader(self.disk, pool_pages),
            },
            scratch: explore::ExploreScratch::default(),
            walk_pos: None,
            walk_patience: self.walk_patience,
        })
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(SharedPageCache::stats)
    }

    fn reset_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
            cache.reset_stats();
        }
    }

    fn supports_prefetch(&self) -> bool {
        self.cache.is_some()
    }

    // GIPSY's crawl visits a subset of the unit pages the MBB prefilter
    // admits, so the TRANSFORMERS schedule is a sound (over-approximate)
    // readahead hint for it too.
    fn prefetch_schedule(&self, queries: &[SpatialQuery]) -> Vec<PageId> {
        unit_pages_for(self.idx, queries)
    }

    fn prefetch_page(&self, id: PageId, scratch: &mut Vec<u8>) {
        if let Some(cache) = &self.cache {
            cache.prefetch_page(id, scratch);
        }
    }
}

struct GipsySession<'a> {
    idx: &'a TransformersIndex,
    reader: UnitReader<'a, 'a, 'a>,
    scratch: explore::ExploreScratch,
    walk_pos: Option<transformers::NodeId>,
    walk_patience: usize,
}

impl QuerySession for GipsySession<'_> {
    fn execute(&mut self, query: &SpatialQuery) -> Vec<ElementId> {
        let probe = query.probe();
        let mut out = Vec::new();
        if self.idx.is_empty() {
            return out;
        }
        let nodes = self.idx.nodes();
        let units = self.idx.units();
        let reach = self.idx.reach_eps();
        if !self.idx.extent().inflate(reach).intersects(&probe) {
            return out;
        }
        // Walk towards the probe, resuming from the previous probe's
        // position (consecutive Hilbert-ordered probes are spatial
        // neighbours, so the walk is short); a cold session asks the
        // Hilbert B+-tree for a start descriptor.
        let start = match self.walk_pos {
            Some(n) => n,
            // Cold start: the B+-tree descent reads through the session's
            // cache handle, so tree pages share the serving cache.
            None => self
                .idx
                .walk_start_with(self.reader.cache_mut(), &probe.center())
                .expect("non-empty index"),
        };
        let r = explore::adaptive_walk(
            nodes,
            reach,
            &probe,
            start,
            self.walk_patience,
            &mut self.scratch,
        );
        self.walk_pos = Some(r.found.unwrap_or(r.closest));
        let mut md = 0u64;
        let found = r
            .found
            .or_else(|| explore::scan_for_intersection(nodes, reach, &probe, &mut md));
        let Some(nf) = found else { return out };

        let mut crawl = explore::adaptive_crawl(nodes, units, reach, &probe, nf, &mut self.scratch);
        // Elevator order: one probe's candidate pages are read in
        // ascending page order.
        crawl
            .candidates
            .sort_unstable_by_key(|u| units[u.0 as usize].page);
        for cu in crawl.candidates {
            let elems = self.reader.elements(cu);
            for e in elems.iter() {
                if query.matches(&e.mbb) {
                    out.push(e.id);
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn pool_counters(&self) -> (u64, u64) {
        (self.reader.hits(), self.reader.misses())
    }
}

/// Serves queries from an STR-bulk-loaded [`RTree`].
pub struct RtreeEngine<'a> {
    tree: &'a RTree,
    disk: &'a Disk,
    cache: Option<SharedPageCache<'a>>,
}

impl<'a> RtreeEngine<'a> {
    /// Wraps a bulk-loaded tree and its disk.
    pub fn new(tree: &'a RTree, disk: &'a Disk) -> Self {
        Self {
            tree,
            disk,
            cache: None,
        }
    }

    /// Attaches a process-wide [`SharedPageCache`]; see
    /// [`TransformersEngine::with_shared_cache`]. (R-tree pages use their
    /// own node layout, so only the byte tier applies — the decoded tier
    /// is specific to element pages.)
    pub fn with_shared_cache(self, pages: usize, shards: usize) -> Self {
        self.with_shared_cache_policy(pages, shards, CachePolicy::Clock)
    }

    /// [`with_shared_cache`](Self::with_shared_cache) with an explicit
    /// eviction policy; see
    /// [`TransformersEngine::with_shared_cache_policy`].
    pub fn with_shared_cache_policy(
        mut self,
        pages: usize,
        shards: usize,
        policy: CachePolicy,
    ) -> Self {
        self.cache = Some(SharedPageCache::with_policy(
            self.disk, pages, shards, policy,
        ));
        self
    }
}

impl QueryEngine for RtreeEngine<'_> {
    fn label(&self) -> &'static str {
        "R-TREE"
    }

    fn io_snapshot(&self) -> IoStatsSnapshot {
        self.disk.stats()
    }

    fn session(&self, pool_pages: usize) -> Box<dyn QuerySession + '_> {
        Box::new(RtreeSession {
            tree: self.tree,
            pool: match &self.cache {
                Some(cache) => CacheHandle::shared(cache),
                None => CacheHandle::private(self.disk, pool_pages),
            },
            stats: RtreeStats::default(),
        })
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(SharedPageCache::stats)
    }

    fn reset_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
            cache.reset_stats();
        }
    }
}

struct RtreeSession<'a> {
    tree: &'a RTree,
    pool: CacheHandle<'a, 'a>,
    stats: RtreeStats,
}

impl QuerySession for RtreeSession<'_> {
    fn execute(&mut self, query: &SpatialQuery) -> Vec<ElementId> {
        let probe = query.probe();
        let mut out: Vec<ElementId> = self
            .tree
            .range_query_elements(&mut self.pool, &probe, &mut self.stats)
            .into_iter()
            .filter(|e| query.matches(&e.mbb))
            .map(|e| e.id)
            .collect();
        out.sort_unstable();
        out
    }

    fn pool_counters(&self) -> (u64, u64) {
        let c = self.pool.counters();
        (c.hits, c.misses)
    }
}
