//! **tfm-serve** — concurrent spatial query serving over shared indexes.
//!
//! The reproduction can build every index in parallel and run the
//! TRANSFORMERS join on an adaptive worker pool, but the paper's own
//! motivation (§I–II) is neuroscience analyses issuing *massive numbers of
//! spatial probes* against the built structures — a serving workload, not
//! a one-shot batch join. This crate turns those probes into a
//! first-class, measurable workload:
//!
//! * [`QueryEngine`] / [`QuerySession`] — one trait implemented by all
//!   three disk-resident structures (TRANSFORMERS, GIPSY-style
//!   element-granularity crawling, the R-tree baseline). Engines are
//!   shared immutably across workers; sessions hold all per-worker
//!   mutable state (a private [`tfm_storage::BufferPool`] via the core's
//!   `UnitReader` split handle), so concurrent readers never contend.
//! * [`RequestQueue`] — the bounded admission edge: blocking `push` is
//!   backpressure, non-blocking `try_push` is load shedding.
//! * **Locality-aware batching** — [`serve_trace`] splits the trace into
//!   arrival-order batches and (by default) sorts each batch by the
//!   Hilbert order of the queries' probe centers. Consecutive queries of
//!   a sorted batch probe neighbouring regions, so their candidate pages
//!   overlap or adjoin: page accesses that would be random seeks under
//!   arrival order become buffer hits or sequential reads — directly
//!   visible in the [`tfm_storage::IoStatsSnapshot`] sequential/random
//!   split ([`ServeStats::seq_read_fraction`]). See `DESIGN.md` for why
//!   this falls out of the disk model.
//! * [`ServeStats`] — per-run aggregates: latency percentiles, pool
//!   hits/misses, the I/O delta, per-worker query counts.
//! * **Sharded scatter-gather** — [`ShardedCluster`] partitions the
//!   dataset into self-contained index shards (each with its own disk,
//!   cache and worker pool); [`serve_sharded`] routes every probe onto
//!   only the shards its probe box intersects, scatter-gathers the
//!   shard-local partials and merges them deterministically. See
//!   [`serve_sharded`]'s docs and `ARCHITECTURE.md`.
//!
//! # Determinism
//!
//! Batch composition depends only on the trace and the batch size (never
//! on the worker count), each query's result is a pure function of the
//! query and the index, and results are reassembled by query position —
//! so the result vector is **byte-identical for any thread count and
//! either batching mode**. The `serve_equivalence` integration test holds
//! all engines to that against a sequential full-scan reference.
//!
//! # Example
//!
//! ```
//! use tfm_datagen::{generate, generate_trace, DatasetSpec, QueryTraceSpec};
//! use tfm_serve::{serve_trace, ServeConfig, TransformersEngine};
//! use tfm_storage::Disk;
//! use transformers::{IndexConfig, TransformersIndex};
//!
//! let disk = Disk::default_in_memory();
//! let idx = TransformersIndex::build(&disk, generate(&DatasetSpec::uniform(2_000, 1)), &IndexConfig::default());
//! let trace = generate_trace(&QueryTraceSpec::uniform(200, 2));
//!
//! let engine = TransformersEngine::new(&idx, &disk);
//! let out = serve_trace(&engine, &trace, &ServeConfig::default().with_threads(2));
//! assert_eq!(out.results.len(), trace.len());
//! assert_eq!(out.stats.queries, 200);
//! ```

#![warn(missing_docs)]

mod engines;
mod queue;
mod shard;
mod stats;

pub use engines::{
    GipsyEngine, MutableTransformersEngine, QueryEngine, QuerySession, RtreeEngine,
    TransformersEngine,
};
pub use queue::RequestQueue;
pub use shard::{
    plan_shards, serve_sharded, IndexShard, ShardEngineKind, ShardPartitioner, ShardRouter,
    ShardServeConfig, ShardSpec, ShardStats, ShardedCluster, ShardedServeOutcome,
    ShardedServeStats,
};
pub use stats::{AutoBatchSummary, LatencySummary, ServeStats};

use std::sync::Mutex;
use std::time::Instant;
use tfm_geom::{hilbert, Aabb, ElementId, SpatialQuery};
use tfm_pool::StagePool;
use tfm_storage::PrefetchQueue;

/// Configuration of one serve run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads executing queries (`0` is clamped to 1).
    pub threads: usize,
    /// Queries per batch — the unit of queueing and of locality sorting
    /// (`0` is clamped to 1).
    pub batch: usize,
    /// Sort each batch by the Hilbert order of probe centers before
    /// execution (on by default; turn off for the arrival-order ablation).
    pub hilbert_batching: bool,
    /// Total buffer-pool budget in pages, split evenly across workers
    /// (mirrors the parallel join's budget split, so the aggregate cache
    /// matches a sequential run's instead of multiplying by the worker
    /// count).
    pub pool_pages: usize,
    /// Bounded request-queue capacity in batches — the backpressure
    /// window between the feeding thread and the workers.
    pub queue_batches: usize,
    /// Serve through one process-wide shared page cache (the default the
    /// bench/CLI harnesses construct engines with). `false` is the
    /// `--private-pool` ablation: each worker session owns a private pool
    /// of `pool_pages / threads` pages. This field is read by the
    /// harnesses that *build* engines (`tfm-bench`, the CLI) — a
    /// hand-constructed engine's mode is fixed by its constructor.
    pub shared_cache: bool,
    /// Collect one [`tfm_obs::QueryTrace`] per query in
    /// [`ServeOutcome::traces`] (queue-wait/service split and per-query
    /// pool-counter attribution). Off by default: trace records cost a
    /// per-query allocation the hot path otherwise never pays.
    pub collect_traces: bool,
    /// Dedicated I/O threads keeping prefetch reads in flight — the
    /// submission queue depth of the readahead pipeline. Only consulted
    /// when [`ServeConfig::readahead`] enables prefetching; `0` is
    /// clamped to 1.
    pub io_depth: usize,
    /// Readahead window in pages: the capacity of the bounded
    /// [`tfm_storage::PrefetchQueue`] the feeder fills with each batch's
    /// Hilbert-ordered candidate pages. `0` (the default) disables the
    /// prefetch pipeline entirely; it also stays off on engines without a
    /// shared cache ([`QueryEngine::supports_prefetch`]) and on the
    /// single-threaded inline path.
    pub readahead: usize,
    /// Self-tuning batch sizing: every few batches the feeder re-scores
    /// the run from the observed cache hit fraction and sequential-read
    /// fraction, growing the batch (up to 4× [`ServeConfig::batch`]) while
    /// locality is poor — a larger batch gives the Hilbert sort more scope
    /// — and decaying back toward the base once the signals recover. Batch
    /// *composition* stays arrival-order slices and results are keyed by
    /// query position, so results are byte-identical to any fixed batch
    /// size. Only the queued (multi-worker) path tunes; the inline path
    /// ignores this flag.
    pub auto_batch: bool,
    /// Eviction policy of the shared page cache the harnesses construct
    /// engines with (`--cache-policy`): CLOCK (the default/ablation) or
    /// scan-resistant 2Q admission. Like [`ServeConfig::shared_cache`],
    /// this is read by the engine *builders* (`tfm-bench`, the CLI); a
    /// hand-constructed engine's policy is fixed by its constructor.
    pub cache_policy: tfm_storage::CachePolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            batch: 64,
            hilbert_batching: true,
            pool_pages: tfm_storage::DEFAULT_POOL_PAGES,
            queue_batches: 4,
            shared_cache: true,
            collect_traces: false,
            io_depth: 1,
            readahead: 0,
            auto_batch: false,
            cache_policy: tfm_storage::CachePolicy::Clock,
        }
    }
}

impl ServeConfig {
    /// Builder: sets the worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder: sets the batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Builder: disables Hilbert-ordered batching (arrival order).
    pub fn without_hilbert_batching(mut self) -> Self {
        self.hilbert_batching = false;
        self
    }

    /// Builder: the private-pool ablation (see
    /// [`ServeConfig::shared_cache`]).
    pub fn without_shared_cache(mut self) -> Self {
        self.shared_cache = false;
        self
    }

    /// Builder: collect per-query [`tfm_obs::QueryTrace`] records.
    pub fn with_traces(mut self) -> Self {
        self.collect_traces = true;
        self
    }

    /// Builder: sets the prefetch queue depth (I/O threads in flight).
    pub fn with_io_depth(mut self, io_depth: usize) -> Self {
        self.io_depth = io_depth;
        self
    }

    /// Builder: sets the readahead window in pages (enables the prefetch
    /// pipeline when non-zero).
    pub fn with_readahead(mut self, readahead: usize) -> Self {
        self.readahead = readahead;
        self
    }

    /// Builder: enables the self-tuning batch loop (see
    /// [`ServeConfig::auto_batch`]).
    pub fn with_auto_batch(mut self) -> Self {
        self.auto_batch = true;
        self
    }

    /// Builder: sets the shared-cache eviction policy harnesses build
    /// engines with (see [`ServeConfig::cache_policy`]).
    pub fn with_cache_policy(mut self, policy: tfm_storage::CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }
}

/// What a serve run returns: per-query results plus aggregate statistics.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// `results[i]` is the ascending id list answering `trace[i]`.
    /// Identical for any thread count and batching mode.
    pub results: Vec<Vec<ElementId>>,
    /// Aggregate counters of the run.
    pub stats: ServeStats,
    /// Per-query trace records, in trace-ID order; empty unless
    /// [`ServeConfig::collect_traces`] was set. The trace ID is the
    /// query's position in the input trace, assigned at queue admission,
    /// so IDs are stable across thread counts and batching modes.
    pub traces: Vec<tfm_obs::QueryTrace>,
}

/// Splits `trace` into arrival-order batches of `batch` queries and, when
/// `hilbert_batching` is on, sorts each batch by the Hilbert index of the
/// probe centers (over the trace's own center bounding box).
///
/// Batch *composition* is always arrival-order — only the order *within*
/// a batch changes — so results cannot depend on the batching mode.
pub(crate) fn plan_batches(
    trace: &[SpatialQuery],
    batch: usize,
    hilbert_batching: bool,
) -> Vec<Vec<usize>> {
    let universe = Aabb::union_all(trace.iter().map(|q| Aabb::from_point(q.center())));
    (0..trace.len())
        .step_by(batch)
        .map(|start| {
            let mut ids: Vec<usize> = (start..(start + batch).min(trace.len())).collect();
            if hilbert_batching {
                // Tie-break on the query position so the plan is total.
                ids.sort_by_key(|&i| (hilbert::index_of_point(&trace[i].center(), &universe), i));
            }
            ids
        })
        .collect()
}

/// What one worker hands back per executed query.
struct Executed {
    qid: usize,
    ids: Vec<ElementId>,
    service_nanos: u64,
    /// Admission-to-pop wait of the query's batch (0 on the inline path).
    queue_wait_nanos: u64,
    /// Handle-local pool-counter deltas around this query's probe.
    pool_hits: u64,
    pool_misses: u64,
}

/// One worker's complete contribution: executed queries plus its
/// session's pool counters.
struct WorkerOut {
    worker: usize,
    done: Vec<Executed>,
    hits: u64,
    misses: u64,
}

/// Replays `trace` against `engine` on `cfg.threads` workers and returns
/// every query's result plus aggregate [`ServeStats`].
///
/// Queries are queued batch-wise through a bounded [`RequestQueue`]
/// (worker 0 doubles as the feeder, then joins the drain), executed on
/// per-worker [`QuerySession`]s, and reassembled by query position. The
/// result vector is byte-identical for any `threads`/batching setting.
pub fn serve_trace<E: QueryEngine + ?Sized>(
    engine: &E,
    trace: &[SpatialQuery],
    cfg: &ServeConfig,
) -> ServeOutcome {
    let threads = cfg.threads.max(1);
    let batch = cfg.batch.max(1);
    // The self-tuning loop only exists on the queued path: the inline
    // single-worker path has no queue-vs-locality tradeoff to tune.
    let auto_on = cfg.auto_batch && threads > 1;
    let batches = if auto_on {
        Vec::new() // the feeder slices the trace incrementally instead
    } else {
        plan_batches(trace, batch, cfg.hilbert_batching)
    };
    let mut n_batches = batches.len();
    let mut max_batch = batches.iter().map(Vec::len).max().unwrap_or(0);
    // Filled by the auto-batch feeder: (loop counters, batches fed,
    // widest batch).
    let auto_out: Mutex<Option<(AutoBatchSummary, usize, usize)>> = Mutex::new(None);
    let pool_pages = (cfg.pool_pages / threads).max(1);

    let io_before = engine.io_snapshot();
    let cache_before = engine.cache_stats();
    let start = Instant::now();

    let worker_results: Vec<WorkerOut> = if threads == 1 {
        // Inline fast path: no queue, no spawn — the exact sequential
        // reference the equivalence tests compare against. No queue means
        // no queue wait: those samples are honestly zero.
        let mut session = engine.session(pool_pages);
        let mut done: Vec<Executed> = Vec::with_capacity(trace.len());
        for b in &batches {
            for &qid in b {
                done.push(execute_one(&mut *session, trace, qid, 0));
            }
        }
        let (hits, misses) = session.pool_counters();
        vec![WorkerOut {
            worker: 0,
            done,
            hits,
            misses,
        }]
    } else {
        // Each queue item carries its admission instant so the popping
        // worker can split queue wait from service time per batch.
        let queue: RequestQueue<(Vec<usize>, Instant)> =
            RequestQueue::new(cfg.queue_batches.max(1));
        let feed: Mutex<Option<Vec<Vec<usize>>>> = Mutex::new(Some(batches));
        // Readahead pipeline: the feeder pushes each batch's candidate
        // pages (in the batch's Hilbert order — an ascending page sweep)
        // into a bounded lossy queue, and `io_depth` dedicated I/O
        // threads keep that many reads in flight, landing completed
        // pages directly into shared-cache frames ahead of the workers.
        let prefetch_on = cfg.readahead > 0 && engine.supports_prefetch();
        let io_threads = if prefetch_on { cfg.io_depth.max(1) } else { 0 };
        let prefetch_queue = prefetch_on.then(|| PrefetchQueue::new(cfg.readahead));
        let pq = prefetch_queue.as_ref();
        StagePool::new(threads + io_threads).scoped_run(|w| {
            if w >= threads {
                // Dedicated prefetch I/O thread: pop page ids and land
                // them in the cache until the feeder closes the queue.
                // Device latency (real file seeks, or the injected
                // `Disk` read latency) is paid here, off the workers'
                // critical path.
                let pq = pq.expect("io worker without prefetch queue");
                let mut scratch = Vec::new();
                while let Some(id) = pq.pop() {
                    engine.prefetch_page(id, &mut scratch);
                }
                return WorkerOut {
                    worker: w,
                    done: Vec::new(),
                    hits: 0,
                    misses: 0,
                };
            }
            let mut session = engine.session(pool_pages);
            let mut done: Vec<Executed> = Vec::new();
            if w == 0 {
                // Worker 0 feeds the queue (blocking on the bounded
                // capacity — backpressure), then drains like everyone
                // else. Interleaving feeding with the other workers'
                // draining keeps the backlog within `queue_batches`.
                let feed_batch = |b: Vec<usize>| {
                    if let Some(pq) = pq {
                        // Announce the batch's page schedule before the
                        // batch itself so the I/O threads start on it
                        // ahead of the executing workers. `try_push` is
                        // lossy by design: a full queue means the I/O
                        // threads are already `readahead` pages ahead.
                        let probes: Vec<SpatialQuery> = b.iter().map(|&qid| trace[qid]).collect();
                        for page in engine.prefetch_schedule(&probes) {
                            pq.try_push(page);
                        }
                    }
                    queue.push((b, Instant::now()));
                };
                if auto_on {
                    feed_auto_batches(engine, trace, cfg, batch, &auto_out, feed_batch);
                } else {
                    let batches = feed
                        .lock()
                        .expect("feed poisoned")
                        .take()
                        .expect("feeder ran twice");
                    for b in batches {
                        feed_batch(b);
                    }
                }
                queue.close();
                if let Some(pq) = pq {
                    pq.close();
                }
            }
            while let Some((b, admitted)) = queue.pop() {
                let wait = admitted.elapsed().as_nanos() as u64;
                for qid in b {
                    done.push(execute_one(&mut *session, trace, qid, wait));
                }
            }
            let (hits, misses) = session.pool_counters();
            WorkerOut {
                worker: w,
                done,
                hits,
                misses,
            }
        })
    };

    let autobatch = if auto_on {
        let (summary, fed, widest) = auto_out
            .lock()
            .expect("auto_out poisoned")
            .take()
            .expect("auto-batch feeder did not run");
        n_batches = fed;
        max_batch = widest;
        Some(summary)
    } else {
        None
    };

    let wall = start.elapsed();
    let io = engine.io_snapshot().delta_since(&io_before);
    let cache = match (engine.cache_stats(), cache_before) {
        (Some(after), Some(before)) => Some(after.delta_since(&before)),
        _ => None,
    };

    // Deterministic reassembly by query position. Latencies accumulate
    // into the shared log-bucketed histogram type (always-on, local to
    // this run) rather than a per-query sample vector; the summaries and
    // any run-end publication both read its snapshot.
    let service_hist = tfm_obs::Histogram::new();
    let wait_hist = tfm_obs::Histogram::new();
    let mut results: Vec<Vec<ElementId>> = vec![Vec::new(); trace.len()];
    let mut traces: Vec<tfm_obs::QueryTrace> = Vec::new();
    let mut result_ids = 0u64;
    let mut pool_hits = 0u64;
    let mut pool_misses = 0u64;
    let mut per_worker_queries = Vec::with_capacity(worker_results.len());
    for worker in worker_results {
        if worker.worker >= threads {
            // Dedicated prefetch I/O threads execute no queries and own
            // no session; they don't appear in per-worker stats.
            continue;
        }
        pool_hits += worker.hits;
        pool_misses += worker.misses;
        per_worker_queries.push(worker.done.len() as u64);
        for ex in worker.done {
            result_ids += ex.ids.len() as u64;
            service_hist.record(ex.service_nanos);
            wait_hist.record(ex.queue_wait_nanos);
            if cfg.collect_traces {
                traces.push(tfm_obs::QueryTrace {
                    trace_id: ex.qid as u64,
                    worker: worker.worker as u64,
                    queue_wait_nanos: ex.queue_wait_nanos,
                    service_nanos: ex.service_nanos,
                    pool_hits: ex.pool_hits,
                    pool_misses: ex.pool_misses,
                    result_ids: ex.ids.len() as u64,
                });
            }
            results[ex.qid] = ex.ids;
        }
    }
    traces.sort_unstable_by_key(|t| t.trace_id);
    let service_snap = service_hist.snapshot();
    let wait_snap = wait_hist.snapshot();

    // Run-end publication into the process-wide registry (one shot, so
    // per-query counters never double-count): the serve.* family plus the
    // cache/io signals this run owns. `cache.hits`/`cache.misses` come
    // from the handle-local pool counters; the shared cache contributes
    // only its internal extras (evictions, contention, decoded tier).
    let obs = tfm_obs::global();
    if obs.is_enabled() {
        use tfm_obs::names;
        obs.counter(names::SERVE_QUERIES).add(trace.len() as u64);
        obs.counter(names::SERVE_BATCHES).add(n_batches as u64);
        obs.counter(names::SERVE_RESULT_IDS).add(result_ids);
        obs.histogram(names::SERVE_WALL_NANOS)
            .record(wall.as_nanos() as u64);
        obs.histogram(names::SERVE_SERVICE_NANOS)
            .merge_snapshot(&service_snap);
        obs.histogram(names::SERVE_QUEUE_WAIT_NANOS)
            .merge_snapshot(&wait_snap);
        obs.counter(names::CACHE_HITS).add(pool_hits);
        obs.counter(names::CACHE_MISSES).add(pool_misses);
        io.publish(obs);
        if let Some(c) = &cache {
            c.publish_shared_extras(obs);
        }
        if let Some(ab) = &autobatch {
            obs.counter(names::SERVE_AUTOBATCH_RETUNES).add(ab.retunes);
            obs.counter(names::SERVE_AUTOBATCH_GROWS).add(ab.grows);
            obs.counter(names::SERVE_AUTOBATCH_SHRINKS).add(ab.shrinks);
            obs.gauge(names::SERVE_AUTOBATCH_FINAL_BATCH)
                .set(ab.final_batch as i64);
        }
    }

    let stats = ServeStats {
        queries: trace.len() as u64,
        result_ids,
        batches: n_batches as u64,
        max_batch,
        threads,
        hilbert_batching: cfg.hilbert_batching,
        wall,
        latency: LatencySummary::from_histogram(&service_snap),
        queue_wait: LatencySummary::from_histogram(&wait_snap),
        pool_hits,
        pool_misses,
        io,
        per_worker_queries,
        cache,
        autobatch,
    };
    ServeOutcome {
        results,
        stats,
        traces,
    }
}

/// How many batches the auto-batch feeder admits between retune
/// decisions — long enough to average out per-batch noise in the cache
/// and I/O counters, short enough to adapt within a few hundred queries.
const AUTO_BATCH_WINDOW: usize = 8;

/// The self-tuning feeder (`--auto-batch`): slices the trace into
/// arrival-order batches of a *dynamic* size and re-scores the run every
/// [`AUTO_BATCH_WINDOW`] batches from two feedback signals — the shared
/// cache's hit fraction and the disk's sequential-read fraction over the
/// window. A low score means poor locality: the batch grows (up to 4× the
/// configured base) so the Hilbert sort gets more queries to order into a
/// spatial sweep. A recovered score decays the batch back toward the base,
/// bounding queue latency. Batch composition stays arrival-order slices,
/// so results are byte-identical to any fixed batch size.
fn feed_auto_batches<E: QueryEngine + ?Sized>(
    engine: &E,
    trace: &[SpatialQuery],
    cfg: &ServeConfig,
    base: usize,
    auto_out: &Mutex<Option<(AutoBatchSummary, usize, usize)>>,
    feed_batch: impl Fn(Vec<usize>),
) {
    let universe = Aabb::union_all(trace.iter().map(|q| Aabb::from_point(q.center())));
    let cap = base.saturating_mul(4).max(base);
    let mut cur = base;
    let mut fed = 0usize;
    let mut widest = 0usize;
    let mut since_retune = 0usize;
    let mut summary = AutoBatchSummary::default();
    let mut win_cache = engine.cache_stats();
    let mut win_io = engine.io_snapshot();
    let mut start = 0usize;
    while start < trace.len() {
        let end = (start + cur).min(trace.len());
        let mut ids: Vec<usize> = (start..end).collect();
        if cfg.hilbert_batching {
            // Same within-batch ordering as `plan_batches`.
            ids.sort_by_key(|&i| (hilbert::index_of_point(&trace[i].center(), &universe), i));
        }
        widest = widest.max(ids.len());
        fed += 1;
        feed_batch(ids);
        start = end;
        since_retune += 1;
        if since_retune >= AUTO_BATCH_WINDOW && start < trace.len() {
            since_retune = 0;
            // Score the window from whichever signals the engine exposes:
            // shared-cache hit fraction and/or the sequential-read split.
            // An engine with neither (private pools, zero reads) never
            // retunes — the loop degenerates to the fixed base size.
            let io_now = engine.io_snapshot();
            let io_delta = io_now.delta_since(&win_io);
            win_io = io_now;
            let mut score = 0.0f64;
            let mut signals = 0u32;
            if let (Some(after), Some(before)) = (engine.cache_stats(), win_cache) {
                let d = after.delta_since(&before);
                if d.hits + d.misses > 0 {
                    score += d.hits as f64 / (d.hits + d.misses) as f64;
                    signals += 1;
                }
                win_cache = Some(after);
            }
            if io_delta.reads() > 0 {
                score += io_delta.seq_read_fraction();
                signals += 1;
            }
            if signals > 0 {
                let score = score / f64::from(signals);
                summary.retunes += 1;
                if score < 0.5 && cur < cap {
                    cur = (cur * 2).min(cap);
                    summary.grows += 1;
                } else if score > 0.8 && cur > base {
                    cur = (cur / 2).max(base);
                    summary.shrinks += 1;
                }
            }
        }
    }
    summary.final_batch = cur;
    *auto_out.lock().expect("auto_out poisoned") = Some((summary, fed, widest));
}

fn execute_one(
    session: &mut dyn QuerySession,
    trace: &[SpatialQuery],
    qid: usize,
    queue_wait_nanos: u64,
) -> Executed {
    let (hits_before, misses_before) = session.pool_counters();
    let t = Instant::now();
    let ids = session.execute(&trace[qid]);
    let service_nanos = t.elapsed().as_nanos() as u64;
    let (hits_after, misses_after) = session.pool_counters();
    Executed {
        qid,
        ids,
        service_nanos,
        queue_wait_nanos,
        pool_hits: hits_after - hits_before,
        pool_misses: misses_after - misses_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_datagen::{generate, generate_trace, DatasetSpec, ProbeMix, QueryTraceSpec};
    use tfm_storage::Disk;
    use transformers::{IndexConfig, TransformersIndex};

    fn fixture(
        count: usize,
        seed: u64,
    ) -> (Disk, TransformersIndex, Vec<tfm_geom::SpatialElement>) {
        let disk = Disk::in_memory(2048);
        let elems = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::uniform(count, seed)
        });
        let idx = TransformersIndex::build(&disk, elems.clone(), &IndexConfig::default());
        (disk, idx, elems)
    }

    /// The oracle: a full scan per query.
    fn reference(
        elems: &[tfm_geom::SpatialElement],
        trace: &[SpatialQuery],
    ) -> Vec<Vec<ElementId>> {
        trace
            .iter()
            .map(|q| {
                let mut ids: Vec<ElementId> = elems
                    .iter()
                    .filter(|e| q.matches(&e.mbb))
                    .map(|e| e.id)
                    .collect();
                ids.sort_unstable();
                ids
            })
            .collect()
    }

    #[test]
    fn batches_partition_the_trace_in_arrival_chunks() {
        let trace = generate_trace(&QueryTraceSpec::uniform(250, 1));
        for hilbert in [false, true] {
            let batches = plan_batches(&trace, 64, hilbert);
            assert_eq!(batches.len(), 4);
            assert_eq!(batches[3].len(), 250 - 3 * 64);
            // Composition is arrival-order regardless of the sort.
            for (i, b) in batches.iter().enumerate() {
                let mut sorted = b.clone();
                sorted.sort_unstable();
                let expected: Vec<usize> = (i * 64..(i * 64 + b.len())).collect();
                assert_eq!(sorted, expected, "hilbert = {hilbert}");
            }
        }
        // The Hilbert plan actually reorders something.
        let arrival = plan_batches(&trace, 64, false);
        let hilberted = plan_batches(&trace, 64, true);
        assert_ne!(arrival, hilberted);
    }

    #[test]
    fn transformers_engine_answers_every_query_kind() {
        let (disk, idx, elems) = fixture(4000, 10);
        let trace = generate_trace(&QueryTraceSpec::uniform(300, 11));
        let engine = TransformersEngine::new(&idx, &disk);
        let out = serve_trace(&engine, &trace, &ServeConfig::default());
        assert_eq!(out.results, reference(&elems, &trace));
        assert_eq!(out.stats.queries, 300);
        assert_eq!(out.stats.per_worker_queries, vec![300]);
        assert!(out.stats.pool_misses > 0);
        assert!(out.stats.io.reads() > 0);
        assert_eq!(engine.label(), "TRANSFORMERS");
    }

    #[test]
    fn all_engines_agree_with_the_reference() {
        let (disk, idx, elems) = fixture(3000, 12);
        let rtree_disk = Disk::in_memory(2048);
        let tree = tfm_rtree::RTree::bulk_load(&rtree_disk, elems.clone());
        let trace = generate_trace(&QueryTraceSpec::with_mix(
            200,
            ProbeMix::Clustered { clusters: 4 },
            13,
        ));
        let expected = reference(&elems, &trace);
        let engines: Vec<Box<dyn QueryEngine>> = vec![
            Box::new(TransformersEngine::new(&idx, &disk)),
            Box::new(GipsyEngine::new(&idx, &disk)),
            Box::new(RtreeEngine::new(&tree, &rtree_disk)),
        ];
        for engine in &engines {
            let out = serve_trace(engine.as_ref(), &trace, &ServeConfig::default());
            assert_eq!(out.results, expected, "{}", engine.label());
        }
    }

    #[test]
    fn results_identical_across_threads_and_batching() {
        let (disk, idx, elems) = fixture(2500, 14);
        let trace = generate_trace(&QueryTraceSpec::uniform(240, 15));
        let expected = reference(&elems, &trace);
        let engine = TransformersEngine::new(&idx, &disk);
        for threads in [1, 2, 4] {
            for hilbert in [false, true] {
                let cfg = ServeConfig {
                    threads,
                    hilbert_batching: hilbert,
                    batch: 32,
                    queue_batches: 2,
                    ..ServeConfig::default()
                };
                let out = serve_trace(&engine, &trace, &cfg);
                assert_eq!(
                    out.results, expected,
                    "threads = {threads}, hilbert = {hilbert}"
                );
                assert_eq!(out.stats.per_worker_queries.iter().sum::<u64>(), 240);
                assert_eq!(out.stats.threads, threads);
            }
        }
    }

    #[test]
    fn hilbert_batching_raises_the_sequential_read_fraction() {
        // A large uniform trace over a sizeable index, one worker, one
        // big batch: arrival order hops randomly, Hilbert order sweeps.
        let (disk, idx, _) = fixture(30_000, 16);
        let trace = generate_trace(&QueryTraceSpec {
            count: 1500,
            max_window_side: 12.0,
            ..QueryTraceSpec::uniform(1500, 17)
        });
        let engine = TransformersEngine::new(&idx, &disk);
        let base = ServeConfig {
            batch: 1500,
            pool_pages: 64,
            ..ServeConfig::default()
        };
        let unbatched = serve_trace(&engine, &trace, &base.without_hilbert_batching());
        let batched = serve_trace(&engine, &trace, &base);
        assert_eq!(unbatched.results, batched.results);
        assert!(
            batched.stats.seq_read_fraction() > unbatched.stats.seq_read_fraction(),
            "hilbert {:.3} must beat arrival {:.3}",
            batched.stats.seq_read_fraction(),
            unbatched.stats.seq_read_fraction()
        );
    }

    #[test]
    fn shared_cache_engines_match_private_and_report_cache_stats() {
        let (disk, idx, elems) = fixture(2500, 22);
        let trace = generate_trace(&QueryTraceSpec::uniform(200, 23));
        let expected = reference(&elems, &trace);
        let shared = TransformersEngine::new(&idx, &disk).with_shared_cache(256, 4);
        for threads in [1, 4] {
            shared.reset_cache();
            let out = serve_trace(
                &shared,
                &trace,
                &ServeConfig::default().with_threads(threads),
            );
            assert_eq!(out.results, expected, "threads = {threads}");
            let cache = out.stats.cache.expect("shared engine reports cache stats");
            assert!(cache.hits + cache.misses > 0);
            assert_eq!(
                cache.decoded_hits + cache.decoded_misses,
                cache.hits + cache.misses
            );
            assert!(out.stats.pool_hit_fraction() > 0.0);
            // Handle-local counters sum to the cache's global totals.
            assert_eq!(out.stats.pool_hits, cache.hits);
            assert_eq!(out.stats.pool_misses, cache.misses);
        }
        // Private-pool engines report no cache stats.
        let private = TransformersEngine::new(&idx, &disk);
        let out = serve_trace(&private, &trace, &ServeConfig::default());
        assert_eq!(out.results, expected);
        assert!(out.stats.cache.is_none());
        assert_eq!(out.stats.decoded_hit_fraction(), 0.0);
    }

    #[test]
    fn shared_cache_reads_fewer_pages_across_workers() {
        // Four workers over one shared cache: a page faulted by one worker
        // is a hit for the rest, so total misses must undercut four
        // private pools replaying the same trace.
        let (disk, idx, _) = fixture(6000, 24);
        let trace = generate_trace(&QueryTraceSpec::uniform(400, 25));
        let cfg = ServeConfig::default().with_threads(4).with_batch(16);
        let shared_engine = TransformersEngine::new(&idx, &disk).with_shared_cache(1024, 8);
        let shared = serve_trace(&shared_engine, &trace, &cfg);
        let private = serve_trace(&TransformersEngine::new(&idx, &disk), &trace, &cfg);
        assert_eq!(shared.results, private.results);
        assert!(
            shared.stats.pool_misses < private.stats.pool_misses,
            "shared {} must read fewer pages than private {}",
            shared.stats.pool_misses,
            private.stats.pool_misses
        );
        assert!(shared.stats.pool_hit_fraction() > private.stats.pool_hit_fraction());
    }

    #[test]
    fn readahead_preserves_results_and_reports_prefetch_counters() {
        let (disk, idx, elems) = fixture(6000, 30);
        let trace = generate_trace(&QueryTraceSpec::uniform(400, 31));
        let expected = reference(&elems, &trace);
        // A cache far smaller than the index's page set: prefetched pages
        // can't all be resident already, so the pipeline always lands some.
        let engine = TransformersEngine::new(&idx, &disk).with_shared_cache(48, 4);
        assert!(engine.supports_prefetch());
        for (threads, io_depth, readahead) in [(2, 1, 64), (2, 4, 256), (4, 2, 128)] {
            engine.reset_cache();
            let cfg = ServeConfig::default()
                .with_threads(threads)
                .with_batch(32)
                .with_io_depth(io_depth)
                .with_readahead(readahead);
            let out = serve_trace(&engine, &trace, &cfg);
            assert_eq!(
                out.results, expected,
                "threads = {threads}, io_depth = {io_depth}, readahead = {readahead}"
            );
            // The I/O threads never surface in per-worker stats.
            assert_eq!(out.stats.per_worker_queries.len(), threads);
            let cache = out.stats.cache.expect("shared engine reports cache stats");
            assert!(
                cache.prefetch_issued > 0,
                "prefetch pipeline must have landed pages"
            );
            // Prefetch accounting stays disjoint from the hit/miss pair:
            // every page the workers touched is exactly one of the three.
            assert_eq!(out.stats.pool_hits, cache.hits);
            assert_eq!(out.stats.pool_misses, cache.misses);
            assert!(cache.prefetch_hits <= cache.prefetch_issued);
        }
        // A private-pool engine silently ignores the readahead request.
        let private = TransformersEngine::new(&idx, &disk);
        assert!(!private.supports_prefetch());
        let out = serve_trace(
            &private,
            &trace,
            &ServeConfig::default().with_threads(2).with_readahead(64),
        );
        assert_eq!(out.results, expected);
        assert!(out.stats.cache.is_none());
    }

    #[test]
    fn auto_batch_matches_fixed_batch_results_exactly() {
        let (disk, idx, elems) = fixture(6000, 32);
        let trace = generate_trace(&QueryTraceSpec::uniform(600, 33));
        let expected = reference(&elems, &trace);
        // Small cache + small base batch so the feedback loop has signals
        // to react to and windows to react in.
        let engine = TransformersEngine::new(&idx, &disk).with_shared_cache(64, 4);
        for threads in [2, 4] {
            for policy in [
                tfm_storage::CachePolicy::Clock,
                tfm_storage::CachePolicy::TwoQ,
            ] {
                let engine =
                    TransformersEngine::new(&idx, &disk).with_shared_cache_policy(64, 4, policy);
                let cfg = ServeConfig::default()
                    .with_threads(threads)
                    .with_batch(16)
                    .with_auto_batch();
                let out = serve_trace(&engine, &trace, &cfg);
                assert_eq!(out.results, expected, "threads={threads} policy={policy}");
                let ab = out
                    .stats
                    .autobatch
                    .expect("queued auto run reports a summary");
                assert!(ab.retunes > 0, "600 queries at base 16 must cross a window");
                assert!(ab.final_batch >= 16 && ab.final_batch <= 64);
                assert!(ab.grows + ab.shrinks <= ab.retunes);
                assert_eq!(
                    out.stats.per_worker_queries.iter().sum::<u64>(),
                    trace.len() as u64
                );
            }
        }
        // The inline path ignores the flag and reports no summary.
        let out = serve_trace(&engine, &trace, &ServeConfig::default().with_auto_batch());
        assert_eq!(out.results, expected);
        assert!(out.stats.autobatch.is_none());
    }

    #[test]
    fn auto_batch_composes_with_readahead() {
        let (disk, idx, elems) = fixture(4000, 34);
        let trace = generate_trace(&QueryTraceSpec::uniform(400, 35));
        let expected = reference(&elems, &trace);
        let engine = TransformersEngine::new(&idx, &disk).with_shared_cache(48, 4);
        let cfg = ServeConfig::default()
            .with_threads(4)
            .with_batch(16)
            .with_io_depth(2)
            .with_readahead(128)
            .with_auto_batch();
        let out = serve_trace(&engine, &trace, &cfg);
        assert_eq!(out.results, expected);
        let cache = out.stats.cache.expect("shared engine reports cache stats");
        assert!(cache.prefetch_issued > 0);
        assert!(out.stats.autobatch.is_some());
    }

    #[test]
    fn empty_trace_and_empty_index() {
        let (disk, idx, _) = fixture(500, 18);
        let engine = TransformersEngine::new(&idx, &disk);
        let out = serve_trace(&engine, &[], &ServeConfig::default().with_threads(4));
        assert!(out.results.is_empty());
        assert_eq!(out.stats.queries, 0);

        let empty_disk = Disk::in_memory(2048);
        let empty = TransformersIndex::build(&empty_disk, vec![], &IndexConfig::default());
        let trace = generate_trace(&QueryTraceSpec::uniform(50, 19));
        for engine in [
            Box::new(TransformersEngine::new(&empty, &empty_disk)) as Box<dyn QueryEngine>,
            Box::new(GipsyEngine::new(&empty, &empty_disk)),
        ] {
            let out = serve_trace(engine.as_ref(), &trace, &ServeConfig::default());
            assert!(out.results.iter().all(Vec::is_empty), "{}", engine.label());
        }
    }

    #[test]
    fn mutable_engine_matches_rebuilt_index_across_workers() {
        use tfm_storage::{NoopLog, SharedPageCache};
        use transformers::{MutableTransformers, MutationOp};

        let (disk, idx, elems) = fixture(2500, 40);
        let cache = SharedPageCache::new(&disk, 4096);
        let overlay = MutableTransformers::adopt(&idx, &disk);
        let log = NoopLog::new();

        // Mutate: delete every 5th element, insert a fresh batch.
        let mut ops: Vec<MutationOp> = elems
            .iter()
            .filter(|e| e.id % 5 == 0)
            .map(|e| MutationOp::Delete(e.id))
            .collect();
        let fresh = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::uniform(400, 41)
        });
        let base = 1 + elems.iter().map(|e| e.id).max().unwrap_or(0);
        let mut mutated: Vec<tfm_geom::SpatialElement> =
            elems.iter().filter(|e| e.id % 5 != 0).cloned().collect();
        for mut e in fresh {
            e.id += base;
            ops.push(MutationOp::Insert(e));
            mutated.push(e);
        }
        let out = overlay.apply_batch(&log, &cache, &ops);
        assert_eq!(out.rejected_inserts, 0);
        assert_eq!(out.missing_deletes, 0);

        // The acceptance property: serve results over the mutated overlay
        // are byte-identical to an index rebuilt from scratch on the
        // mutated dataset, at every worker count.
        let trace = generate_trace(&QueryTraceSpec::uniform(240, 42));
        let expected = reference(&mutated, &trace);
        let engine = MutableTransformersEngine::new(&overlay, &cache);
        assert_eq!(engine.label(), "TRANSFORMERS-MUT");
        for threads in [1, 2, 4, 8] {
            let cfg = ServeConfig::default().with_threads(threads).with_batch(32);
            let got = serve_trace(&engine, &trace, &cfg);
            assert_eq!(got.results, expected, "threads = {threads}");
            let cache_stats = got.stats.cache.expect("mutable engine shares a cache");
            assert!(cache_stats.hits + cache_stats.misses > 0);
        }

        let rebuilt_disk = Disk::in_memory(2048);
        let rebuilt =
            TransformersIndex::build(&rebuilt_disk, mutated.clone(), &IndexConfig::default());
        let static_engine = TransformersEngine::new(&rebuilt, &rebuilt_disk);
        let got = serve_trace(&static_engine, &trace, &ServeConfig::default());
        assert_eq!(got.results, expected);
    }

    #[test]
    fn mutable_engine_serves_consistent_snapshots_during_writes() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use tfm_storage::{NoopLog, SharedPageCache};
        use transformers::{MutableTransformers, MutationOp};

        let (disk, idx, elems) = fixture(1500, 44);
        let cache = SharedPageCache::new(&disk, 4096);
        let overlay = MutableTransformers::adopt(&idx, &disk);
        let log = NoopLog::new();
        let trace = generate_trace(&QueryTraceSpec::uniform(120, 45));
        let engine = MutableTransformersEngine::new(&overlay, &cache);
        let base = 1 + elems.iter().map(|e| e.id).max().unwrap_or(0);
        let done = AtomicBool::new(false);

        // Writers apply insert batches while serve runs keep querying the
        // latest published snapshot. Every result must be internally
        // consistent: sorted, duplicate-free, and only ids that exist in
        // the original dataset or were inserted by a committed batch.
        std::thread::scope(|s| {
            s.spawn(|| {
                let fresh = generate(&DatasetSpec {
                    max_side: 6.0,
                    ..DatasetSpec::uniform(600, 46)
                });
                for chunk in fresh.chunks(60) {
                    let ops: Vec<MutationOp> = chunk
                        .iter()
                        .map(|e| {
                            let mut e = *e;
                            e.id += base;
                            MutationOp::Insert(e)
                        })
                        .collect();
                    overlay.apply_batch(&log, &cache, &ops);
                }
                done.store(true, Ordering::Release);
            });
            while !done.load(Ordering::Acquire) {
                let out = serve_trace(&engine, &trace, &ServeConfig::default().with_threads(2));
                for ids in &out.results {
                    assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
                }
            }
        });

        // Quiesced: results equal the full mutated reference.
        let fresh = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::uniform(600, 46)
        });
        let mut mutated = elems.clone();
        mutated.extend(fresh.into_iter().map(|mut e| {
            e.id += base;
            e
        }));
        let out = serve_trace(&engine, &trace, &ServeConfig::default().with_threads(4));
        assert_eq!(out.results, reference(&mutated, &trace));
    }

    #[test]
    fn config_clamps_degenerate_values() {
        let (disk, idx, elems) = fixture(800, 20);
        let trace = generate_trace(&QueryTraceSpec::uniform(30, 21));
        let engine = TransformersEngine::new(&idx, &disk);
        let cfg = ServeConfig {
            threads: 0,
            batch: 0,
            queue_batches: 0,
            pool_pages: 0,
            ..ServeConfig::default()
        };
        let out = serve_trace(&engine, &trace, &cfg);
        assert_eq!(out.results, reference(&elems, &trace));
        assert_eq!(out.stats.threads, 1);
        assert_eq!(out.stats.max_batch, 1);
        assert_eq!(out.stats.batches, 30);
    }
}
