//! A bounded multi-producer/multi-consumer request queue.
//!
//! The admission edge of the serving subsystem. Capacity is fixed at
//! construction; [`RequestQueue::push`] blocks while the queue is full
//! (**backpressure** — a producer that outruns the workers is slowed to
//! their pace instead of growing an unbounded backlog), and
//! [`RequestQueue::try_push`] refuses instead of blocking (**admission
//! control** — a front end that must not stall can shed load and count
//! rejections). [`RequestQueue::close`] ends the stream: blocked
//! producers give up, and consumers drain the remaining items before
//! [`RequestQueue::pop`] returns `None`.
//!
//! Built on `std::sync::{Mutex, Condvar}` — the queue holds whole query
//! *batches*, so it is locked a handful of times per thousand queries and
//! needs no lock-free cleverness.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with blocking and load-shedding producers.
pub struct RequestQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> RequestQueue<T> {
    /// Creates a queue holding at most `capacity` items (`0` is clamped
    /// to 1 — a queue that can never admit anything deadlocks on first
    /// use).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue length.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, blocking while the queue is full (backpressure).
    ///
    /// Returns `false` (dropping the item) if the queue was closed.
    pub fn push(&self, item: T) -> bool {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.closed {
            return false;
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        true
    }

    /// Attempts to enqueue without blocking (admission control).
    ///
    /// Returns the item back to the caller when the queue is full or
    /// closed, so a load-shedding front end can count the rejection.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty and
    /// still open. Returns `None` once the queue is closed **and**
    /// drained — the consumer's termination signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: producers stop being admitted, consumers drain
    /// the backlog and then observe the end of the stream.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let q = RequestQueue::new(4);
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn try_push_sheds_load_when_full() {
        let q = RequestQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3)); // full -> rejected, item returned
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok()); // space again
        q.close();
        assert_eq!(q.try_push(4), Err(4)); // closed -> rejected
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q = RequestQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.push(7));
        assert_eq!(q.pop(), Some(7));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = RequestQueue::new(8);
        q.push(1);
        q.push(2);
        q.close();
        assert!(!q.push(3), "push after close must be refused");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn backpressure_blocks_until_consumed() {
        // A capacity-1 queue forces the producer to run in lock-step with
        // the consumer: all items still arrive, in order.
        let q = RequestQueue::new(1);
        let produced = AtomicUsize::new(0);
        let consumed = std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..200 {
                    assert!(q.push(i));
                    produced.fetch_add(1, Ordering::Relaxed);
                }
                q.close();
            });
            let handle = s.spawn(|| {
                let mut got = Vec::new();
                while let Some(i) = q.pop() {
                    got.push(i);
                }
                got
            });
            handle.join().expect("consumer panicked")
        });
        assert_eq!(produced.load(Ordering::Relaxed), 200);
        assert_eq!(consumed, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_consumers_partition_the_stream() {
        let q = RequestQueue::new(4);
        let seen = std::thread::scope(|s| {
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    s.spawn(|| {
                        let mut got = Vec::new();
                        while let Some(i) = q.pop() {
                            got.push(i);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..300 {
                assert!(q.push(i));
            }
            q.close();
            let mut all: Vec<i32> = consumers
                .into_iter()
                .flat_map(|h| h.join().expect("consumer panicked"))
                .collect();
            all.sort_unstable();
            all
        });
        assert_eq!(seen, (0..300).collect::<Vec<_>>());
    }
}
