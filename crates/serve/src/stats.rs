//! Serving statistics: per-query latencies and aggregate counters.

use std::time::Duration;
use tfm_storage::{CacheStats, IoStatsSnapshot};

/// Latency percentiles over one serve run, in nanoseconds.
///
/// Percentiles use the nearest-rank method over the collected per-query
/// samples; an empty sample set reports all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean_nanos: u64,
    /// Median (50th percentile).
    pub p50_nanos: u64,
    /// 95th percentile.
    pub p95_nanos: u64,
    /// 99th percentile.
    pub p99_nanos: u64,
    /// Slowest query.
    pub max_nanos: u64,
}

impl LatencySummary {
    /// Summarizes a set of per-query latency samples (consumed; sorted
    /// internally).
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let rank = |p: f64| {
            // Nearest-rank: ceil(p * n) clamped into the sample range.
            let r = (p * samples.len() as f64).ceil() as usize;
            samples[r.clamp(1, samples.len()) - 1]
        };
        Self {
            mean_nanos: (samples.iter().sum::<u64>() / samples.len() as u64),
            p50_nanos: rank(0.50),
            p95_nanos: rank(0.95),
            p99_nanos: rank(0.99),
            max_nanos: *samples.last().expect("non-empty"),
        }
    }

    /// Summarizes a recorded latency histogram (`tfm-obs`'s shared
    /// log-bucketed type — the serve loop records into it directly, so
    /// percentiles no longer require keeping every sample).
    ///
    /// `mean` and `max` are exact (the histogram tracks true sum and max);
    /// the percentiles are nearest-rank over the buckets, exact for
    /// samples below 64 ns and within the histogram's 1/32 relative
    /// error above — `from_histogram` and [`Self::from_samples`] agree
    /// to that tolerance on identical data.
    pub fn from_histogram(h: &tfm_obs::HistogramSnapshot) -> Self {
        if h.count == 0 {
            return Self::default();
        }
        Self {
            mean_nanos: h.sum / h.count,
            p50_nanos: h.percentile(0.50),
            p95_nanos: h.percentile(0.95),
            p99_nanos: h.percentile(0.99),
            max_nanos: h.max,
        }
    }

    /// Median as a [`Duration`].
    pub fn p50(&self) -> Duration {
        Duration::from_nanos(self.p50_nanos)
    }

    /// 95th percentile as a [`Duration`].
    pub fn p95(&self) -> Duration {
        Duration::from_nanos(self.p95_nanos)
    }

    /// 99th percentile as a [`Duration`].
    pub fn p99(&self) -> Duration {
        Duration::from_nanos(self.p99_nanos)
    }
}

/// What the self-tuning batch loop did during one run (`--auto-batch`);
/// see [`crate::ServeConfig::auto_batch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AutoBatchSummary {
    /// Retune decisions evaluated (one per feedback window).
    pub retunes: u64,
    /// Retunes that grew the batch size.
    pub grows: u64,
    /// Retunes that shrank the batch size.
    pub shrinks: u64,
    /// Batch size in effect when the trace ran out.
    pub final_batch: usize,
}

/// Aggregate counters of one [`crate::serve_trace`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Queries executed.
    pub queries: u64,
    /// Result ids returned, summed over all queries.
    pub result_ids: u64,
    /// Batches the trace was split into.
    pub batches: u64,
    /// Largest batch (the configured batch size unless the trace is
    /// shorter).
    pub max_batch: usize,
    /// Workers that served the trace.
    pub threads: usize,
    /// Whether batches were Hilbert-ordered before execution.
    pub hilbert_batching: bool,
    /// Wall-clock time of the serve run (queueing + execution).
    pub wall: Duration,
    /// Per-query service-time percentiles (probe execution only).
    pub latency: LatencySummary,
    /// Per-query queue-wait percentiles: batch admission to worker pop.
    /// All zeros on the single-threaded inline path, which has no queue.
    pub queue_wait: LatencySummary,
    /// Buffer-pool hits summed over all worker sessions.
    pub pool_hits: u64,
    /// Buffer-pool misses (disk page reads) summed over all sessions.
    pub pool_misses: u64,
    /// Engine-disk I/O delta during the run (the sequential/random read
    /// split Hilbert batching is visible in).
    pub io: IoStatsSnapshot,
    /// Queries served by each worker — the skew shows how evenly the
    /// batch queue spread the load.
    pub per_worker_queries: Vec<u64>,
    /// Shared-cache counters of the run (decoded-tier hit rates, shard
    /// contention); `None` when the engine ran the private-pool ablation.
    pub cache: Option<CacheStats>,
    /// Self-tuning batch-loop counters; `None` unless the run used
    /// [`crate::ServeConfig::auto_batch`] on the queued (multi-worker)
    /// path.
    pub autobatch: Option<AutoBatchSummary>,
}

impl ServeStats {
    /// Queries per wall-clock second.
    pub fn throughput_qps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.queries as f64 / secs
    }

    /// Fraction of page reads that were sequential — the locality win of
    /// Hilbert-ordered batching.
    pub fn seq_read_fraction(&self) -> f64 {
        self.io.seq_read_fraction()
    }

    /// Pool hit fraction over all worker sessions, in `0.0..=1.0`.
    pub fn pool_hit_fraction(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            return 0.0;
        }
        self.pool_hits as f64 / total as f64
    }

    /// Decoded-tier hit fraction of the shared cache (0 when the run used
    /// private pools, which have no decoded tier).
    pub fn decoded_hit_fraction(&self) -> f64 {
        self.cache.map_or(0.0, |c| c.decoded_hit_fraction())
    }

    /// Shard-lock contention fraction of the shared cache (0 for private
    /// pools).
    pub fn contention_fraction(&self) -> f64 {
        self.cache.map_or(0.0, |c| c.contention_fraction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_are_all_zero() {
        assert_eq!(
            LatencySummary::from_samples(vec![]),
            LatencySummary::default()
        );
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let s = LatencySummary::from_samples((1..=100).collect());
        assert_eq!(s.p50_nanos, 50);
        assert_eq!(s.p95_nanos, 95);
        assert_eq!(s.p99_nanos, 99);
        assert_eq!(s.max_nanos, 100);
        assert_eq!(s.mean_nanos, 50); // 5050 / 100
    }

    #[test]
    fn histogram_summary_agrees_with_sample_summary() {
        // Values below 64 land in width-1 buckets, so the two summaries
        // must agree exactly.
        let samples: Vec<u64> = (1..=60).collect();
        let h = tfm_obs::Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let from_h = LatencySummary::from_histogram(&h.snapshot());
        let from_s = LatencySummary::from_samples(samples);
        assert_eq!(from_h, from_s);

        // Larger values: percentiles agree within the histogram's 1/32
        // relative error; mean and max stay exact.
        let samples: Vec<u64> = (0..500).map(|i| 1_000 + 37 * i).collect();
        let h = tfm_obs::Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let from_h = LatencySummary::from_histogram(&h.snapshot());
        let from_s = LatencySummary::from_samples(samples);
        assert_eq!(from_h.mean_nanos, from_s.mean_nanos);
        assert_eq!(from_h.max_nanos, from_s.max_nanos);
        for (a, b) in [
            (from_h.p50_nanos, from_s.p50_nanos),
            (from_h.p95_nanos, from_s.p95_nanos),
            (from_h.p99_nanos, from_s.p99_nanos),
        ] {
            let err = (a as f64 - b as f64).abs() / b as f64;
            assert!(err <= 1.0 / 32.0, "histogram {a} vs samples {b}");
        }
    }

    #[test]
    fn empty_histogram_summary_is_default() {
        let h = tfm_obs::Histogram::new();
        assert_eq!(
            LatencySummary::from_histogram(&h.snapshot()),
            LatencySummary::default()
        );
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = LatencySummary::from_samples(vec![42]);
        assert_eq!(s.p50_nanos, 42);
        assert_eq!(s.p99_nanos, 42);
        assert_eq!(s.max_nanos, 42);
    }

    #[test]
    fn throughput_handles_zero_wall() {
        let stats = ServeStats::default();
        assert_eq!(stats.throughput_qps(), 0.0);
    }
}
