//! The sharded scatter-gather serve cluster.
//!
//! One [`SharedPageCache`](tfm_storage::SharedPageCache) and one
//! [`RequestQueue`](crate::RequestQueue) cap what a single serve instance
//! can absorb: every worker funnels through the same shard locks and the
//! same admission edge. This module splits the *dataset* instead of just
//! the work — the horizontal-scaling seam of the ROADMAP:
//!
//! 1. [`plan_shards`] partitions the elements into N disjoint subsets
//!    with the same machinery the index build uses (a Hilbert-order
//!    split, or grouped STR partitions), so each subset is spatially
//!    compact.
//! 2. [`ShardedCluster::build`] turns each subset into a self-contained
//!    **index shard**: its own simulated [`Disk`], its own built index
//!    (TRANSFORMERS hierarchy or R-tree), and — at serve time — its own
//!    [`SharedPageCache`](tfm_storage::SharedPageCache) and its own
//!    `tfm-pool` worker pool. Shards share nothing, which is exactly
//!    what makes this the seam for a future multi-process split.
//! 3. [`ShardRouter`] plans each window / point / ε-ball probe onto only
//!    the shards whose element bounds its probe box intersects: a shard
//!    that cannot hold a match never sees the query.
//! 4. [`serve_sharded`] scatter-gathers: a feeder routes each planned
//!    batch into per-shard bounded [`RequestQueue`](crate::RequestQueue)s
//!    (blocking admission is backpressure; [`ShardServeConfig::shed`]
//!    switches to load shedding), per-shard worker pools drain them, and
//!    the partial id lists are merged back per query.
//!
//! # Determinism
//!
//! Batch composition reuses the unsharded planner, each element lives in
//! exactly one shard, and every shard-local result is the ascending id
//! list of its shard's matches — so the merged result (union of disjoint
//! sorted sets, re-sorted) is **byte-identical to the unsharded serve
//! path at any shard count and any worker count**. The
//! `shard_equivalence` integration test holds all three engines to that
//! across a 1/2/4/8-shard × 1/2/4-worker grid; a property test checks
//! the router never skips a shard holding a matching element. (Load
//! shedding deliberately breaks the guarantee — shed partials are
//! counted, not silently dropped.)

use std::time::{Duration, Instant};

use crate::{
    GipsyEngine, LatencySummary, QueryEngine, RequestQueue, RtreeEngine, TransformersEngine,
};
use tfm_geom::{hilbert, Aabb, ElementId, HasMbb, SpatialElement, SpatialQuery};
use tfm_partition::str_partition;
use tfm_pool::StagePool;
use tfm_rtree::RTree;
use tfm_storage::{
    CacheStats, Disk, IoStatsSnapshot, PrefetchQueue, SharedPageCache, StoreBackend,
};
use transformers::{IndexConfig, TransformersIndex};

/// How [`plan_shards`] splits the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPartitioner {
    /// Sort elements by the Hilbert index of their MBB centers and cut
    /// the curve into N near-equal contiguous runs. Cheap, and shards
    /// inherit the curve's locality.
    Hilbert,
    /// Run the index build's own STR partitioner at capacity ≈ n/N and
    /// group consecutive partitions into N shards. Shard bounds follow
    /// the STR tiling instead of the curve.
    Str,
}

/// Which index structure each shard builds and serves from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardEngineKind {
    /// The TRANSFORMERS hierarchy behind [`TransformersEngine`].
    Transformers,
    /// The TRANSFORMERS hierarchy crawled GIPSY-style ([`GipsyEngine`]).
    Gipsy,
    /// An STR-bulk-loaded R-tree behind [`RtreeEngine`].
    Rtree,
}

/// Build-time shape of a [`ShardedCluster`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// Number of shards (`0` is clamped to 1).
    pub shards: usize,
    /// Dataset split strategy.
    pub partitioner: ShardPartitioner,
    /// Index structure per shard.
    pub engine: ShardEngineKind,
    /// Page size of each shard's private disk.
    pub page_size: usize,
    /// Storage backend of each shard's private disk. With
    /// [`StoreBackend::File`] every shard writes its own page image
    /// (`shard<i>.pages`) under the given directory, so shards never
    /// contend on one file either.
    pub backend: StoreBackend,
    /// Injected device-read latency scale on each shard's disk
    /// ([`Disk::with_read_latency`]): every serve-time page read sleeps
    /// the modeled cost times this factor. `0.0` (default) injects
    /// nothing. Applied after the index build so bulk loading stays
    /// fast; used to make queue-depth/readahead effects deterministic
    /// on hosts whose real I/O is too fast to measure.
    pub read_latency: f64,
}

impl Default for ShardSpec {
    fn default() -> Self {
        Self {
            shards: 1,
            partitioner: ShardPartitioner::Hilbert,
            engine: ShardEngineKind::Transformers,
            page_size: tfm_storage::DEFAULT_PAGE_SIZE,
            backend: StoreBackend::Mem,
            read_latency: 0.0,
        }
    }
}

impl ShardSpec {
    /// Builder: sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builder: sets the split strategy.
    pub fn with_partitioner(mut self, partitioner: ShardPartitioner) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Builder: sets the per-shard index structure.
    pub fn with_engine(mut self, engine: ShardEngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Builder: sets the per-shard storage backend.
    pub fn with_backend(mut self, backend: StoreBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder: sets the injected serve-time read-latency scale.
    pub fn with_read_latency(mut self, scale: f64) -> Self {
        self.read_latency = scale;
        self
    }
}

/// Splits `elements` into `shards` disjoint, spatially compact subsets.
///
/// Every element lands in exactly one subset (some may be empty when
/// `shards > elements.len()`), and the split depends only on the input
/// and the strategy — never on thread counts — so cluster builds are
/// deterministic.
pub fn plan_shards(
    elements: &[SpatialElement],
    shards: usize,
    partitioner: ShardPartitioner,
) -> Vec<Vec<SpatialElement>> {
    let n = shards.max(1);
    if elements.is_empty() {
        return vec![Vec::new(); n];
    }
    match partitioner {
        ShardPartitioner::Hilbert => {
            let universe = Aabb::union_all(elements.iter().map(|e| e.mbb));
            let mut order: Vec<usize> = (0..elements.len()).collect();
            // Tie-break on the element id so the split is total.
            order.sort_by_key(|&i| {
                (
                    hilbert::index_of_point(&elements[i].center(), &universe),
                    elements[i].id,
                )
            });
            let total = order.len();
            (0..n)
                .map(|g| {
                    order[total * g / n..total * (g + 1) / n]
                        .iter()
                        .map(|&i| elements[i])
                        .collect()
                })
                .collect()
        }
        ShardPartitioner::Str => {
            let total = elements.len();
            let capacity = total.div_ceil(n);
            let parts = str_partition(elements.to_vec(), capacity);
            // STR may emit more than N partitions; group consecutive
            // (spatially adjacent) partitions so shard g closes once the
            // running element count reaches g+1 N-ths of the total.
            let mut out: Vec<Vec<SpatialElement>> = vec![Vec::new(); n];
            let mut assigned = 0usize;
            let mut g = 0usize;
            for part in parts {
                while g + 1 < n && assigned * n >= total * (g + 1) {
                    g += 1;
                }
                assigned += part.items.len();
                out[g].extend(part.items);
            }
            out
        }
    }
}

/// One self-contained index shard: a private disk plus a built index
/// over this shard's elements only.
pub struct IndexShard {
    disk: Disk,
    index: ShardIndex,
    bounds: Aabb,
    elements: u64,
}

enum ShardIndex {
    Transformers(TransformersIndex),
    Rtree(RTree),
}

impl IndexShard {
    fn build(elements: Vec<SpatialElement>, spec: &ShardSpec, shard: usize) -> Self {
        let bounds = Aabb::union_all(elements.iter().map(|e| e.mbb));
        let count = elements.len() as u64;
        let disk = Disk::for_backend(&spec.backend, spec.page_size, &format!("shard{shard}"))
            .expect("shard disk backend");
        let index = match spec.engine {
            ShardEngineKind::Rtree => ShardIndex::Rtree(RTree::bulk_load(&disk, elements)),
            // GIPSY serves from the TRANSFORMERS structure too.
            _ => ShardIndex::Transformers(TransformersIndex::build(
                &disk,
                elements,
                &IndexConfig::default(),
            )),
        };
        // Latency injection starts after the build: bulk loading stays
        // fast, only serve-time reads pay the modeled sleep.
        let disk = disk.with_read_latency(spec.read_latency);
        Self {
            disk,
            index,
            bounds,
            elements: count,
        }
    }

    /// Union of this shard's element MBBs — the routing box. Empty for
    /// an empty shard (and an empty box intersects nothing, so empty
    /// shards are never routed to).
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Elements indexed by this shard.
    pub fn elements(&self) -> u64 {
        self.elements
    }

    /// Constructs this shard's serve engine with its own shared page
    /// cache of `cache_pages` pages over `cache_shards` lock stripes.
    fn engine(
        &self,
        kind: ShardEngineKind,
        cache_pages: usize,
        cache_shards: usize,
    ) -> Box<dyn QueryEngine + '_> {
        match (&self.index, kind) {
            (ShardIndex::Rtree(tree), _) => Box::new(
                RtreeEngine::new(tree, &self.disk).with_shared_cache(cache_pages, cache_shards),
            ),
            (ShardIndex::Transformers(idx), ShardEngineKind::Gipsy) => Box::new(
                GipsyEngine::new(idx, &self.disk).with_shared_cache(cache_pages, cache_shards),
            ),
            (ShardIndex::Transformers(idx), _) => Box::new(
                TransformersEngine::new(idx, &self.disk)
                    .with_shared_cache(cache_pages, cache_shards),
            ),
        }
    }
}

/// Plans probes onto shards: a query is routed to exactly the shards
/// whose element bounds its probe box intersects.
///
/// Soundness leans on two established facts: every element's MBB is
/// contained in its shard's routing box (the box is their union), and
/// [`SpatialQuery::probe`] is a sound prefilter (an element a query
/// matches always intersects the probe box — property-tested in
/// `tfm-geom`). A shard holding a matching element therefore always
/// intersects the probe box and is always routed to.
pub struct ShardRouter {
    bounds: Vec<Aabb>,
}

impl ShardRouter {
    /// Builds a router over per-shard routing boxes.
    pub fn new(bounds: Vec<Aabb>) -> Self {
        Self { bounds }
    }

    /// Routing boxes, indexed by shard.
    pub fn bounds(&self) -> &[Aabb] {
        &self.bounds
    }

    /// The ascending list of shards `query` must be scattered to.
    pub fn route(&self, query: &SpatialQuery) -> Vec<usize> {
        let probe = query.probe();
        self.bounds
            .iter()
            .enumerate()
            .filter(|(_, b)| b.intersects(&probe))
            .map(|(s, _)| s)
            .collect()
    }
}

/// N self-contained index shards plus the router that targets them.
pub struct ShardedCluster {
    shards: Vec<IndexShard>,
    router: ShardRouter,
    spec: ShardSpec,
}

impl ShardedCluster {
    /// Partitions `elements` per `spec` and builds every shard's index.
    pub fn build(elements: Vec<SpatialElement>, spec: &ShardSpec) -> Self {
        let shards: Vec<IndexShard> = plan_shards(&elements, spec.shards, spec.partitioner)
            .into_iter()
            .enumerate()
            .map(|(i, subset)| IndexShard::build(subset, spec, i))
            .collect();
        let router = ShardRouter::new(shards.iter().map(IndexShard::bounds).collect());
        let count = shards.len();
        Self {
            shards,
            router,
            spec: ShardSpec {
                shards: count,
                ..spec.clone()
            },
        }
    }

    /// Number of shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The cluster's router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The shards themselves (for bounds / element counts).
    pub fn shards(&self) -> &[IndexShard] {
        &self.shards
    }

    /// The spec the cluster was built with (shard count clamped).
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }
}

/// Configuration of one [`serve_sharded`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardServeConfig {
    /// Worker threads per shard (`0` is clamped to 1).
    pub workers_per_shard: usize,
    /// Queries per batch, shared with the unsharded planner.
    pub batch: usize,
    /// Hilbert-sort each batch before scattering (same planner as
    /// [`crate::serve_trace`], so composition matches the unsharded run).
    pub hilbert_batching: bool,
    /// Total page-cache budget, split evenly across shards (each shard's
    /// own `SharedPageCache` gets `pool_pages / shards`, floor 16 pages).
    pub pool_pages: usize,
    /// Per-shard bounded queue capacity in sub-batches — the
    /// backpressure window between the router and each shard's pool.
    pub queue_batches: usize,
    /// Load shedding: admit sub-batches with `try_push` and count
    /// rejections instead of blocking. Shed partials make the affected
    /// queries' results incomplete (tracked in
    /// [`ShardedServeStats::shed_queries`]); leave this off for the
    /// byte-identical path.
    pub shed: bool,
    /// Dedicated prefetch I/O threads per shard (the readahead queue
    /// depth); only consulted when [`ShardServeConfig::readahead`] is
    /// non-zero. `0` is clamped to 1.
    pub io_depth: usize,
    /// Per-shard readahead window in pages; `0` (the default) disables
    /// the prefetch pipeline. Same semantics as
    /// [`crate::ServeConfig::readahead`], applied shard-locally: each
    /// shard's feeder pushes its sub-batches' candidate pages into that
    /// shard's own bounded prefetch queue.
    pub readahead: usize,
}

impl Default for ShardServeConfig {
    fn default() -> Self {
        Self {
            workers_per_shard: 1,
            batch: 64,
            hilbert_batching: true,
            pool_pages: tfm_storage::DEFAULT_POOL_PAGES,
            queue_batches: 4,
            shed: false,
            io_depth: 1,
            readahead: 0,
        }
    }
}

impl ShardServeConfig {
    /// Builder: sets the per-shard worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers_per_shard = workers;
        self
    }

    /// Builder: sets the batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Builder: switches admission from backpressure to load shedding.
    pub fn with_shedding(mut self) -> Self {
        self.shed = true;
        self
    }

    /// Builder: sets the per-shard prefetch queue depth.
    pub fn with_io_depth(mut self, io_depth: usize) -> Self {
        self.io_depth = io_depth;
        self
    }

    /// Builder: sets the per-shard readahead window (enables prefetch
    /// when non-zero).
    pub fn with_readahead(mut self, readahead: usize) -> Self {
        self.readahead = readahead;
        self
    }
}

/// Per-shard counters of one [`serve_sharded`] run.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Elements this shard indexes.
    pub elements: u64,
    /// Query partials routed to this shard.
    pub routed: u64,
    /// Query partials actually executed (= routed unless shedding).
    pub executed: u64,
    /// Sub-batches refused by the full queue (shedding mode only).
    pub shed_batches: u64,
    /// Query partials lost to those refusals.
    pub shed: u64,
    /// Per-partial service-time percentiles on this shard.
    pub service: LatencySummary,
    /// Per-partial queue-wait percentiles: admission to worker pop.
    pub queue_wait: LatencySummary,
    /// This shard's cache-handle hits.
    pub pool_hits: u64,
    /// This shard's cache-handle misses (disk page reads).
    pub pool_misses: u64,
    /// This shard's own `SharedPageCache` counters for the run.
    pub cache: Option<CacheStats>,
    /// I/O delta on this shard's private disk.
    pub io: IoStatsSnapshot,
    /// Partials served by each of this shard's workers.
    pub per_worker_queries: Vec<u64>,
}

/// Aggregate counters of one [`serve_sharded`] run.
#[derive(Debug, Clone)]
pub struct ShardedServeStats {
    /// Queries in the trace.
    pub queries: u64,
    /// Result ids returned, summed over all queries.
    pub result_ids: u64,
    /// Batches the trace was split into (same plan as unsharded).
    pub batches: u64,
    /// Shards in the cluster.
    pub shards: usize,
    /// Workers per shard.
    pub workers_per_shard: usize,
    /// Wall-clock time of the run (routing + queueing + execution + merge).
    pub wall: Duration,
    /// Per-query *critical-path* service percentiles: a scattered query's
    /// service time is the maximum over its shard partials.
    pub latency: LatencySummary,
    /// Per-query critical-path queue-wait percentiles.
    pub queue_wait: LatencySummary,
    /// Mean shards routed per query.
    pub fanout_mean: f64,
    /// Largest per-query fanout.
    pub fanout_max: usize,
    /// Query partials routed, summed over shards (= Σ per-query fanout).
    pub routed_partials: u64,
    /// Query partials lost to shedding (0 with backpressure admission).
    pub shed_partials: u64,
    /// Queries whose result is incomplete because ≥ 1 partial was shed.
    pub shed_queries: u64,
    /// Peak fraction of shard queues simultaneously full when a
    /// sub-batch was admitted — the cluster-level backpressure signal
    /// (1.0 means every shard was saturated at once).
    pub max_cluster_pressure: f64,
    /// Per-shard breakdowns.
    pub per_shard: Vec<ShardStats>,
}

impl ShardedServeStats {
    /// Queries per wall-clock second.
    pub fn throughput_qps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.queries as f64 / secs
    }

    /// Cache-handle hit fraction summed over every shard.
    pub fn pool_hit_fraction(&self) -> f64 {
        let (hits, misses) = self.per_shard.iter().fold((0u64, 0u64), |(h, m), s| {
            (h + s.pool_hits, m + s.pool_misses)
        });
        if hits + misses == 0 {
            return 0.0;
        }
        hits as f64 / (hits + misses) as f64
    }

    /// I/O deltas of all shard disks merged into one snapshot.
    pub fn io_merged(&self) -> IoStatsSnapshot {
        self.per_shard
            .iter()
            .fold(IoStatsSnapshot::default(), |acc, s| acc.merged(&s.io))
    }
}

/// What [`serve_sharded`] returns.
#[derive(Debug, Clone)]
pub struct ShardedServeOutcome {
    /// `results[i]` is the ascending id list answering `trace[i]` —
    /// byte-identical to the unsharded [`crate::serve_trace`] results at
    /// any shard count and worker count (backpressure admission).
    pub results: Vec<Vec<ElementId>>,
    /// Aggregate and per-shard counters of the run.
    pub stats: ShardedServeStats,
}

/// One executed query partial, handed back by a shard worker.
struct PartialExec {
    qid: usize,
    ids: Vec<ElementId>,
    service_nanos: u64,
    queue_wait_nanos: u64,
}

/// One shard's complete contribution.
struct ShardOut {
    done: Vec<PartialExec>,
    pool_hits: u64,
    pool_misses: u64,
    per_worker_queries: Vec<u64>,
    cache: Option<CacheStats>,
    io: IoStatsSnapshot,
}

/// Replays `trace` against the cluster: routes every planned batch onto
/// the shards its queries' probe boxes intersect, executes the per-shard
/// sub-batches on per-shard worker pools, and merges the partial results
/// deterministically.
pub fn serve_sharded(
    cluster: &ShardedCluster,
    trace: &[SpatialQuery],
    cfg: &ShardServeConfig,
) -> ShardedServeOutcome {
    let n = cluster.shard_count();
    let workers = cfg.workers_per_shard.max(1);
    let batch = cfg.batch.max(1);
    let batches = crate::plan_batches(trace, batch, cfg.hilbert_batching);
    let n_batches = batches.len();
    let cache_pages = (cfg.pool_pages / n).max(16);
    let cache_shards = SharedPageCache::shards_for_threads(workers);

    // Route once per query: the ascending shard list its probe box hits.
    let routes: Vec<Vec<usize>> = trace.iter().map(|q| cluster.router().route(q)).collect();
    let routed_partials: u64 = routes.iter().map(|r| r.len() as u64).sum();
    let fanout_max = routes.iter().map(Vec::len).max().unwrap_or(0);

    let engines: Vec<Box<dyn QueryEngine + '_>> = cluster
        .shards
        .iter()
        .map(|s| s.engine(cluster.spec.engine, cache_pages, cache_shards))
        .collect();
    let io_before: Vec<IoStatsSnapshot> = engines.iter().map(|e| e.io_snapshot()).collect();
    let cache_before: Vec<Option<CacheStats>> = engines.iter().map(|e| e.cache_stats()).collect();

    let queues: Vec<RequestQueue<(Vec<usize>, Instant)>> = (0..n)
        .map(|_| RequestQueue::new(cfg.queue_batches.max(1)))
        .collect();
    // Per-shard readahead pipeline: one bounded prefetch queue per shard
    // whose engine supports it, drained by `io_depth` dedicated I/O
    // threads inside that shard's pool. Shards prefetch into their own
    // caches from their own disks, so the pipelines share nothing.
    let pqs: Vec<Option<PrefetchQueue>> = engines
        .iter()
        .map(|e| {
            (cfg.readahead > 0 && e.supports_prefetch()).then(|| PrefetchQueue::new(cfg.readahead))
        })
        .collect();

    let mut shed_flags: Vec<bool> = vec![false; trace.len()];
    let mut shed_batches_per_shard: Vec<u64> = vec![0; n];
    let mut shed_partials_per_shard: Vec<u64> = vec![0; n];
    let mut max_full_queues = 0usize;

    let start = Instant::now();
    let shard_outs: Vec<ShardOut> = std::thread::scope(|scope| {
        // One driver thread per shard runs that shard's worker pool; the
        // caller thread stays the feeder, so scattering overlaps
        // draining and blocking pushes are real backpressure, not
        // deadlock.
        let handles: Vec<_> = engines
            .iter()
            .zip(&queues)
            .zip(&pqs)
            .map(|((engine, queue), pq)| {
                scope.spawn(move || {
                    let pool_pages = (cache_pages / workers).max(1);
                    let io_threads = if pq.is_some() { cfg.io_depth.max(1) } else { 0 };
                    let outs = StagePool::new(workers + io_threads).scoped_run(|w| {
                        if w >= workers {
                            // Dedicated shard-local prefetch I/O thread.
                            let pq = pq.as_ref().expect("io worker without prefetch queue");
                            let mut scratch = Vec::new();
                            while let Some(id) = pq.pop() {
                                engine.prefetch_page(id, &mut scratch);
                            }
                            return (Vec::new(), 0, 0);
                        }
                        let mut session = engine.session(pool_pages);
                        let mut done: Vec<PartialExec> = Vec::new();
                        while let Some((qids, admitted)) = queue.pop() {
                            let wait = admitted.elapsed().as_nanos() as u64;
                            for qid in qids {
                                let t = Instant::now();
                                let ids = session.execute(&trace[qid]);
                                done.push(PartialExec {
                                    qid,
                                    ids,
                                    service_nanos: t.elapsed().as_nanos() as u64,
                                    queue_wait_nanos: wait,
                                });
                            }
                        }
                        let (hits, misses) = session.pool_counters();
                        (done, hits, misses)
                    });
                    let mut done = Vec::new();
                    let mut hits = 0;
                    let mut misses = 0;
                    let mut per_worker = Vec::with_capacity(workers);
                    for (w, (d, h, m)) in outs.into_iter().enumerate() {
                        if w >= workers {
                            // Prefetch I/O threads execute no partials.
                            continue;
                        }
                        per_worker.push(d.len() as u64);
                        done.extend(d);
                        hits += h;
                        misses += m;
                    }
                    (done, hits, misses, per_worker)
                })
            })
            .collect();

        // Scatter: per batch, one sub-batch per routed shard, preserving
        // the within-batch (Hilbert) order so each shard still sweeps.
        for b in &batches {
            let mut subs: Vec<Vec<usize>> = vec![Vec::new(); n];
            for &qid in b {
                for &s in &routes[qid] {
                    subs[s].push(qid);
                }
            }
            // Cluster backpressure signal: how many shard queues are
            // simultaneously full as this batch is admitted.
            let full = queues.iter().filter(|q| q.len() >= q.capacity()).count();
            max_full_queues = max_full_queues.max(full);
            for (s, sub) in subs.into_iter().enumerate() {
                if sub.is_empty() {
                    continue;
                }
                if let Some(pq) = &pqs[s] {
                    // Announce this sub-batch's candidate pages to the
                    // shard's I/O threads before the batch itself (lossy
                    // push: a full queue is already `readahead` ahead).
                    let probes: Vec<SpatialQuery> = sub.iter().map(|&qid| trace[qid]).collect();
                    for page in engines[s].prefetch_schedule(&probes) {
                        pq.try_push(page);
                    }
                }
                if cfg.shed {
                    if let Err((lost, _)) = queues[s].try_push((sub, Instant::now())) {
                        shed_batches_per_shard[s] += 1;
                        shed_partials_per_shard[s] += lost.len() as u64;
                        for qid in lost {
                            shed_flags[qid] = true;
                        }
                    }
                } else {
                    queues[s].push((sub, Instant::now()));
                }
            }
        }
        for q in &queues {
            q.close();
        }
        for pq in pqs.iter().flatten() {
            pq.close();
        }

        handles
            .into_iter()
            .enumerate()
            .map(|(s, h)| {
                let (done, pool_hits, pool_misses, per_worker_queries) =
                    h.join().expect("shard driver panicked");
                ShardOut {
                    done,
                    pool_hits,
                    pool_misses,
                    per_worker_queries,
                    cache: match (engines[s].cache_stats(), &cache_before[s]) {
                        (Some(after), Some(before)) => Some(after.delta_since(before)),
                        _ => None,
                    },
                    io: engines[s].io_snapshot().delta_since(&io_before[s]),
                }
            })
            .collect()
    });
    let wall = start.elapsed();

    // Gather: per-query critical-path latency (max over partials) and the
    // deterministic merge. Shards hold disjoint element sets, so the
    // union of their sorted partials, re-sorted, is the unsharded answer.
    let mut results: Vec<Vec<ElementId>> = vec![Vec::new(); trace.len()];
    let mut service_max: Vec<u64> = vec![0; trace.len()];
    let mut wait_max: Vec<u64> = vec![0; trace.len()];
    let mut result_ids = 0u64;
    let partial_service = tfm_obs::Histogram::new();
    let partial_wait = tfm_obs::Histogram::new();
    let mut shard_wait_snaps: Vec<tfm_obs::HistogramSnapshot> = Vec::with_capacity(n);
    let mut per_shard: Vec<ShardStats> = Vec::with_capacity(n);
    for (s, out) in shard_outs.into_iter().enumerate() {
        let service_hist = tfm_obs::Histogram::new();
        let wait_hist = tfm_obs::Histogram::new();
        let executed = out.done.len() as u64;
        for p in out.done {
            service_hist.record(p.service_nanos);
            wait_hist.record(p.queue_wait_nanos);
            partial_service.record(p.service_nanos);
            partial_wait.record(p.queue_wait_nanos);
            service_max[p.qid] = service_max[p.qid].max(p.service_nanos);
            wait_max[p.qid] = wait_max[p.qid].max(p.queue_wait_nanos);
            result_ids += p.ids.len() as u64;
            results[p.qid].extend(p.ids);
        }
        per_shard.push(ShardStats {
            shard: s,
            elements: cluster.shards[s].elements(),
            routed: routes.iter().filter(|r| r.contains(&s)).count() as u64,
            executed,
            shed_batches: shed_batches_per_shard[s],
            shed: shed_partials_per_shard[s],
            service: LatencySummary::from_histogram(&service_hist.snapshot()),
            queue_wait: {
                let snap = wait_hist.snapshot();
                let summary = LatencySummary::from_histogram(&snap);
                shard_wait_snaps.push(snap);
                summary
            },
            pool_hits: out.pool_hits,
            pool_misses: out.pool_misses,
            cache: out.cache,
            io: out.io,
            per_worker_queries: out.per_worker_queries,
        });
    }
    for ids in &mut results {
        ids.sort_unstable();
    }

    let latency_hist = tfm_obs::Histogram::new();
    let wait_hist = tfm_obs::Histogram::new();
    for qid in 0..trace.len() {
        latency_hist.record(service_max[qid]);
        wait_hist.record(wait_max[qid]);
    }
    let shed_queries = shed_flags.iter().filter(|&&f| f).count() as u64;
    let shed_partials: u64 = shed_partials_per_shard.iter().sum();
    let max_cluster_pressure = if n == 0 {
        0.0
    } else {
        max_full_queues as f64 / n as f64
    };

    // Run-end publication into the process-wide registry: the shard.*
    // family (cluster-wide plus per-shard dynamic names) and each
    // shard's cache/io extras, one shot per run.
    let obs = tfm_obs::global();
    if obs.is_enabled() {
        use tfm_obs::names;
        obs.counter(names::SHARD_QUERIES).add(trace.len() as u64);
        obs.counter(names::SHARD_ROUTED).add(routed_partials);
        obs.counter(names::SHARD_SHED_BATCHES)
            .add(shed_batches_per_shard.iter().sum());
        obs.counter(names::SHARD_SHED_QUERIES).add(shed_partials);
        obs.gauge(names::SHARD_COUNT).set(n as i64);
        obs.gauge(names::SHARD_CLUSTER_PRESSURE_MAX_PCT)
            .set((max_cluster_pressure * 100.0).round() as i64);
        let fanout = obs.histogram(names::SHARD_FANOUT);
        for r in &routes {
            fanout.record(r.len() as u64);
        }
        obs.histogram(names::SHARD_SERVICE_NANOS)
            .merge_snapshot(&partial_service.snapshot());
        obs.histogram(names::SHARD_QUEUE_WAIT_NANOS)
            .merge_snapshot(&partial_wait.snapshot());
        for stats in &per_shard {
            let s = stats.shard;
            obs.counter(&format!("shard.{s}.queries"))
                .add(stats.executed);
            obs.counter(&format!("shard.{s}.pool_hits"))
                .add(stats.pool_hits);
            obs.counter(&format!("shard.{s}.pool_misses"))
                .add(stats.pool_misses);
            obs.histogram(&format!("shard.{s}.queue_wait_nanos"))
                .merge_snapshot(&shard_wait_snaps[s]);
            stats.io.publish(obs);
            if let Some(c) = &stats.cache {
                c.publish_shared_extras(obs);
            }
        }
    }

    let stats = ShardedServeStats {
        queries: trace.len() as u64,
        result_ids,
        batches: n_batches as u64,
        shards: n,
        workers_per_shard: workers,
        wall,
        latency: LatencySummary::from_histogram(&latency_hist.snapshot()),
        queue_wait: LatencySummary::from_histogram(&wait_hist.snapshot()),
        fanout_mean: if trace.is_empty() {
            0.0
        } else {
            routed_partials as f64 / trace.len() as f64
        },
        fanout_max,
        routed_partials,
        shed_partials,
        shed_queries,
        max_cluster_pressure,
        per_shard,
    };
    ShardedServeOutcome { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_datagen::{generate, generate_trace, DatasetSpec, QueryTraceSpec};

    fn dataset(count: usize, seed: u64) -> Vec<SpatialElement> {
        generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::uniform(count, seed)
        })
    }

    fn reference(elems: &[SpatialElement], trace: &[SpatialQuery]) -> Vec<Vec<ElementId>> {
        trace
            .iter()
            .map(|q| {
                let mut ids: Vec<ElementId> = elems
                    .iter()
                    .filter(|e| q.matches(&e.mbb))
                    .map(|e| e.id)
                    .collect();
                ids.sort_unstable();
                ids
            })
            .collect()
    }

    #[test]
    fn plan_shards_partitions_every_element_once() {
        let elems = dataset(1200, 31);
        for partitioner in [ShardPartitioner::Hilbert, ShardPartitioner::Str] {
            for n in [1usize, 2, 3, 5, 8] {
                let shards = plan_shards(&elems, n, partitioner);
                assert_eq!(shards.len(), n, "{partitioner:?}");
                let mut ids: Vec<ElementId> = shards.iter().flatten().map(|e| e.id).collect();
                ids.sort_unstable();
                let expected: Vec<ElementId> = (0..elems.len() as u64).collect();
                assert_eq!(ids, expected, "{partitioner:?} shards={n}");
                // Near-balanced: no shard more than twice the fair share.
                let fair = elems.len().div_ceil(n);
                for (s, shard) in shards.iter().enumerate() {
                    assert!(
                        shard.len() <= 2 * fair,
                        "{partitioner:?} shard {s} holds {} of fair {fair}",
                        shard.len()
                    );
                }
            }
        }
    }

    #[test]
    fn plan_shards_is_deterministic() {
        let elems = dataset(800, 32);
        for partitioner in [ShardPartitioner::Hilbert, ShardPartitioner::Str] {
            let a = plan_shards(&elems, 4, partitioner);
            let b = plan_shards(&elems, 4, partitioner);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn router_covers_every_matching_shard() {
        let elems = dataset(1500, 33);
        let trace = generate_trace(&QueryTraceSpec::uniform(300, 34));
        let plan = plan_shards(&elems, 4, ShardPartitioner::Hilbert);
        let router = ShardRouter::new(
            plan.iter()
                .map(|s| Aabb::union_all(s.iter().map(|e| e.mbb)))
                .collect(),
        );
        for q in &trace {
            let routed = router.route(q);
            for (s, shard) in plan.iter().enumerate() {
                if shard.iter().any(|e| q.matches(&e.mbb)) {
                    assert!(routed.contains(&s), "matching shard {s} not routed");
                }
            }
        }
    }

    #[test]
    fn sharded_serve_matches_the_reference() {
        let elems = dataset(2000, 35);
        let trace = generate_trace(&QueryTraceSpec::uniform(150, 36));
        let expected = reference(&elems, &trace);
        for shards in [1usize, 3] {
            let cluster =
                ShardedCluster::build(elems.clone(), &ShardSpec::default().with_shards(shards));
            for workers in [1usize, 2] {
                let out = serve_sharded(
                    &cluster,
                    &trace,
                    &ShardServeConfig::default().with_workers(workers),
                );
                assert_eq!(out.results, expected, "shards={shards} workers={workers}");
                assert_eq!(out.stats.queries, 150);
                assert_eq!(out.stats.shards, shards);
                assert_eq!(out.stats.shed_partials, 0);
                assert_eq!(
                    out.stats.routed_partials,
                    out.stats.per_shard.iter().map(|s| s.executed).sum::<u64>()
                );
            }
        }
    }

    #[test]
    fn str_partitioned_cluster_matches_too() {
        let elems = dataset(1600, 37);
        let trace = generate_trace(&QueryTraceSpec::uniform(120, 38));
        let expected = reference(&elems, &trace);
        let cluster = ShardedCluster::build(
            elems,
            &ShardSpec::default()
                .with_shards(4)
                .with_partitioner(ShardPartitioner::Str),
        );
        let out = serve_sharded(&cluster, &trace, &ShardServeConfig::default());
        assert_eq!(out.results, expected);
    }

    #[test]
    fn file_backed_cluster_with_readahead_matches_reference() {
        let elems = dataset(12_000, 49);
        let trace = generate_trace(&QueryTraceSpec::uniform(150, 50));
        let expected = reference(&elems, &trace);
        let dir = std::env::temp_dir().join(format!("tfm-shardio-{}", std::process::id()));
        // Injected read latency makes the prefetch race deterministic:
        // without it a loaded single-core host can let the demand reads
        // win every landing race and the pipeline assertion below flakes.
        // A sleeping demand read always yields the CPU to the I/O
        // threads, exactly like bench_io's throttled runs.
        let cluster = ShardedCluster::build(
            elems,
            &ShardSpec::default()
                .with_shards(3)
                .with_backend(StoreBackend::File(dir.clone()))
                .with_read_latency(0.02),
        );
        // Every shard wrote its own page image.
        for s in 0..3 {
            assert!(dir.join(format!("shard{s}.pages")).is_file());
        }
        // A cache far smaller than each shard's page set, so prefetched
        // pages can't all be resident already.
        let out = serve_sharded(
            &cluster,
            &trace,
            &ShardServeConfig {
                pool_pages: 96,
                ..ShardServeConfig::default()
                    .with_workers(2)
                    .with_io_depth(2)
                    .with_readahead(64)
            },
        );
        assert_eq!(out.results, expected);
        for s in &out.stats.per_shard {
            assert_eq!(
                s.per_worker_queries.len(),
                2,
                "prefetch I/O threads must not surface in per-worker stats"
            );
        }
        assert!(
            out.stats
                .per_shard
                .iter()
                .any(|s| s.cache.as_ref().is_some_and(|c| c.prefetch_issued > 0)),
            "at least one shard's prefetch pipeline must have landed pages"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fanout_stays_below_shard_count_for_point_probes() {
        // Point probes have degenerate probe boxes; with spatially
        // compact shards most points hit a strict subset of shards.
        let elems = dataset(3000, 39);
        let cluster = ShardedCluster::build(elems, &ShardSpec::default().with_shards(8));
        let trace = generate_trace(&QueryTraceSpec::uniform(400, 40));
        let out = serve_sharded(&cluster, &trace, &ShardServeConfig::default());
        assert!(out.stats.fanout_mean < 8.0, "routing must prune shards");
        assert!(out.stats.fanout_max <= 8);
    }

    #[test]
    fn shedding_accounts_for_every_partial() {
        let elems = dataset(2500, 41);
        let cluster = ShardedCluster::build(elems, &ShardSpec::default().with_shards(2));
        let trace = generate_trace(&QueryTraceSpec::uniform(600, 42));
        // A tiny queue and batch makes rejection plausible but not
        // guaranteed; either way the accounting must balance.
        let cfg = ShardServeConfig {
            batch: 4,
            queue_batches: 1,
            ..ShardServeConfig::default().with_shedding()
        };
        let out = serve_sharded(&cluster, &trace, &cfg);
        let executed: u64 = out.stats.per_shard.iter().map(|s| s.executed).sum();
        assert_eq!(
            executed + out.stats.shed_partials,
            out.stats.routed_partials,
            "executed + shed must equal routed"
        );
        if out.stats.shed_partials == 0 {
            assert_eq!(out.stats.shed_queries, 0);
        }
    }

    #[test]
    fn empty_trace_and_empty_dataset() {
        let cluster = ShardedCluster::build(Vec::new(), &ShardSpec::default().with_shards(4));
        assert_eq!(cluster.shard_count(), 4);
        let trace = generate_trace(&QueryTraceSpec::uniform(40, 43));
        let out = serve_sharded(&cluster, &trace, &ShardServeConfig::default());
        assert!(out.results.iter().all(Vec::is_empty));
        assert_eq!(
            out.stats.routed_partials, 0,
            "empty shards are never routed"
        );

        let elems = dataset(500, 44);
        let cluster = ShardedCluster::build(elems, &ShardSpec::default().with_shards(2));
        let out = serve_sharded(&cluster, &[], &ShardServeConfig::default());
        assert!(out.results.is_empty());
        assert_eq!(out.stats.queries, 0);
    }

    #[test]
    fn degenerate_config_is_clamped() {
        let elems = dataset(600, 45);
        let expected_len = 30;
        let trace = generate_trace(&QueryTraceSpec::uniform(expected_len, 46));
        let cluster = ShardedCluster::build(elems.clone(), &ShardSpec::default().with_shards(0));
        assert_eq!(cluster.shard_count(), 1);
        let cfg = ShardServeConfig {
            workers_per_shard: 0,
            batch: 0,
            queue_batches: 0,
            pool_pages: 0,
            ..ShardServeConfig::default()
        };
        let out = serve_sharded(&cluster, &trace, &cfg);
        assert_eq!(out.results, reference(&elems, &trace));
        assert_eq!(out.stats.workers_per_shard, 1);
    }

    #[test]
    fn shard_metrics_publish_at_run_end() {
        let reg = tfm_obs::global();
        tfm_obs::set_enabled(true);
        reg.reset();
        let elems = dataset(900, 47);
        let trace = generate_trace(&QueryTraceSpec::uniform(80, 48));
        let cluster = ShardedCluster::build(elems, &ShardSpec::default().with_shards(3));
        let out = serve_sharded(&cluster, &trace, &ShardServeConfig::default());
        let snap = reg.snapshot();
        tfm_obs::set_enabled(false);
        use tfm_obs::MetricValue;
        let value = |name: &str| {
            snap.entries
                .iter()
                .find(|e| e.name == name)
                .map(|e| e.value.clone())
        };
        assert_eq!(
            value(tfm_obs::names::SHARD_QUERIES),
            Some(MetricValue::Counter(80))
        );
        assert_eq!(
            value(tfm_obs::names::SHARD_ROUTED),
            Some(MetricValue::Counter(out.stats.routed_partials))
        );
        assert_eq!(
            value(tfm_obs::names::SHARD_COUNT),
            Some(MetricValue::Gauge(3))
        );
        assert!(value("shard.0.queries").is_some());
        assert!(value("shard.2.queries").is_some());
        if let Some(MetricValue::Histogram(h)) = value(tfm_obs::names::SHARD_FANOUT) {
            assert_eq!(h.count, 80, "one fanout sample per query");
        } else {
            panic!("shard.fanout histogram missing");
        }
    }
}
