//! Partition Based Spatial-Merge join (Patel & DeWitt, SIGMOD '96).
//!
//! PBSM is the space-oriented-partitioning baseline of the paper (§VII-A,
//! §VIII-B). It tiles the universe with a uniform grid and works in two
//! phases:
//!
//! 1. **Indexing**: every element of both datasets is assigned (replicated)
//!    to each grid cell it overlaps; per-cell buffers are flushed to disk
//!    whenever they fill a page. Because cells fill at different rates, a
//!    cell's pages end up *scattered* across the disk — the paper calls
//!    this out as the cause of PBSM's "almost exclusively random reads
//!    during the join phase".
//! 2. **Join**: cells are processed one at a time; both datasets' cell
//!    contents are read back and joined in memory with the grid hash join
//!    (§VII-A), with duplicate results suppressed by the reference-point
//!    method (Dittrich & Seeger, ICDE 2000).
//!
//! PBSM's strengths and weaknesses reproduce directly: it indexes very fast
//! (one streaming pass, no sorting) but reads *all* data during the join and
//! replicates boundary-crossing elements, and its partitioning depends on
//! both datasets, so it cannot be reused across joins (paper §VII-C2).

#![warn(missing_docs)]

use tfm_geom::{Aabb, SpatialElement};
use tfm_memjoin::{grid_hash_join, GridConfig, JoinStats, ResultPair};
use tfm_partition::UniformGrid;
use tfm_storage::{BufferPool, Disk, ElementPageCodec, PageId};

/// Configuration of a PBSM join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PbsmConfig {
    /// Grid cells per dimension (paper: 10 for synthetic data, 20 for the
    /// neuroscience workload).
    pub partitions_per_dim: usize,
    /// Configuration of the in-memory grid hash join within each cell.
    pub mem_grid: GridConfig,
}

impl Default for PbsmConfig {
    fn default() -> Self {
        Self {
            partitions_per_dim: 10,
            mem_grid: GridConfig::default(),
        }
    }
}

impl PbsmConfig {
    /// A config with `n` partitions per dimension.
    pub fn with_partitions(n: usize) -> Self {
        Self {
            partitions_per_dim: n,
            ..Self::default()
        }
    }
}

/// Counters specific to the PBSM phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PbsmStats {
    /// Element copies created by multiple assignment (beyond the original).
    pub replicated: u64,
    /// Candidate pairs suppressed by reference-point deduplication.
    pub duplicates_suppressed: u64,
    /// Element-level counters of the in-memory joins.
    pub mem: JoinStats,
}

/// One dataset partitioned onto a PBSM grid and written to its disk.
#[derive(Debug)]
pub struct PbsmDataset {
    grid: UniformGrid,
    /// Pages of each cell, in flush order.
    cell_pages: Vec<Vec<PageId>>,
    /// Elements per cell (including replicas).
    cell_counts: Vec<usize>,
    len: usize,
}

impl PbsmDataset {
    /// The grid this dataset was partitioned with.
    pub fn grid(&self) -> &UniformGrid {
        &self.grid
    }

    /// Number of distinct elements partitioned.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total element slots including replicas.
    pub fn total_assigned(&self) -> usize {
        self.cell_counts.iter().sum()
    }

    /// Reads all elements of one cell back from disk.
    fn read_cell(
        &self,
        pool: &mut BufferPool<'_>,
        codec: &ElementPageCodec,
        cell: usize,
    ) -> Vec<SpatialElement> {
        let mut out = Vec::with_capacity(self.cell_counts[cell]);
        for &page in &self.cell_pages[cell] {
            out.extend(codec.decode(pool.read(page)));
        }
        out
    }
}

/// Partitions `elements` onto the PBSM grid over `extent`, streaming pages
/// to `disk` as per-cell buffers fill. This is PBSM's entire "indexing"
/// phase for one dataset.
pub fn pbsm_partition(
    disk: &Disk,
    elements: &[SpatialElement],
    extent: Aabb,
    config: &PbsmConfig,
    stats: &mut PbsmStats,
) -> PbsmDataset {
    let n = config.partitions_per_dim.max(1);
    let grid = UniformGrid::cubic(extent, n);
    let codec = ElementPageCodec::new(disk.page_size());
    let cap = codec.capacity();

    let mut buffers: Vec<Vec<SpatialElement>> = vec![Vec::new(); grid.cell_count()];
    let mut cell_pages: Vec<Vec<PageId>> = vec![Vec::new(); grid.cell_count()];
    let mut cell_counts = vec![0usize; grid.cell_count()];

    for e in elements {
        let mut copies = 0;
        for cell in grid.cells_overlapping(&e.mbb) {
            copies += 1;
            cell_counts[cell] += 1;
            buffers[cell].push(*e);
            if buffers[cell].len() == cap {
                let page = disk.allocate();
                disk.write_page(page, &codec.encode(&buffers[cell]));
                cell_pages[cell].push(page);
                buffers[cell].clear();
            }
        }
        debug_assert!(copies >= 1);
        stats.replicated += copies - 1;
    }

    // Flush partial buffers.
    for (cell, buf) in buffers.iter().enumerate() {
        if !buf.is_empty() {
            let page = disk.allocate();
            disk.write_page(page, &codec.encode(buf));
            cell_pages[cell].push(page);
        }
    }

    PbsmDataset {
        grid,
        cell_pages,
        cell_counts,
        len: elements.len(),
    }
}

/// Joins two PBSM-partitioned datasets cell by cell.
///
/// Both datasets must have been partitioned with the same grid (same extent
/// and resolution); this is inherent to PBSM and the reason its partitions
/// cannot be reused across dataset combinations.
///
/// # Panics
/// Panics if the grids differ.
pub fn pbsm_join(
    pool_a: &mut BufferPool<'_>,
    part_a: &PbsmDataset,
    pool_b: &mut BufferPool<'_>,
    part_b: &PbsmDataset,
    config: &PbsmConfig,
    stats: &mut PbsmStats,
) -> Vec<ResultPair> {
    assert_eq!(
        part_a.grid.extent(),
        part_b.grid.extent(),
        "grids must match"
    );
    assert_eq!(part_a.grid.dims(), part_b.grid.dims(), "grids must match");

    let codec_a = ElementPageCodec::new(pool_a.disk().page_size());
    let codec_b = ElementPageCodec::new(pool_b.disk().page_size());
    let grid = &part_a.grid;

    let mut out = Vec::new();
    for cell in 0..grid.cell_count() {
        if part_a.cell_counts[cell] == 0 || part_b.cell_counts[cell] == 0 {
            continue;
        }
        let elems_a = part_a.read_cell(pool_a, &codec_a, cell);
        let elems_b = part_b.read_cell(pool_b, &codec_b, cell);

        // In-memory grid hash join within the cell...
        let mut cell_stats = JoinStats::default();
        let pairs = grid_hash_join(&elems_a, &elems_b, &config.mem_grid, &mut cell_stats);
        stats.mem.element_tests += cell_stats.element_tests;

        // ...then cross-cell deduplication by the reference-point method:
        // a pair is reported only in the cell that owns the minimum corner
        // of the MBB intersection.
        let lookup_a: std::collections::HashMap<u64, Aabb> =
            elems_a.iter().map(|e| (e.id, e.mbb)).collect();
        let lookup_b: std::collections::HashMap<u64, Aabb> =
            elems_b.iter().map(|e| (e.id, e.mbb)).collect();
        for (ida, idb) in pairs {
            let overlap = lookup_a[&ida]
                .intersection(&lookup_b[&idb])
                .expect("reported pair must intersect");
            if grid.cell_of_point(&overlap.min) == cell {
                out.push((ida, idb));
            } else {
                stats.duplicates_suppressed += 1;
            }
        }
    }
    stats.mem.results += out.len() as u64;
    out
}

/// Convenience wrapper running both PBSM phases end to end on fresh disks.
/// Returns the result pairs plus the stats; used by tests and examples.
pub fn pbsm_join_datasets(
    disk_a: &Disk,
    elements_a: &[SpatialElement],
    disk_b: &Disk,
    elements_b: &[SpatialElement],
    config: &PbsmConfig,
) -> (Vec<ResultPair>, PbsmStats) {
    let mut stats = PbsmStats::default();
    let extent = Aabb::union_all(elements_a.iter().chain(elements_b.iter()).map(|e| e.mbb));
    if extent.is_empty() {
        return (Vec::new(), stats);
    }
    let part_a = pbsm_partition(disk_a, elements_a, extent, config, &mut stats);
    let part_b = pbsm_partition(disk_b, elements_b, extent, config, &mut stats);
    let mut pool_a = BufferPool::with_default_capacity(disk_a);
    let mut pool_b = BufferPool::with_default_capacity(disk_b);
    let pairs = pbsm_join(
        &mut pool_a,
        &part_a,
        &mut pool_b,
        &part_b,
        config,
        &mut stats,
    );
    (pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_datagen::{generate, DatasetSpec, Distribution};
    use tfm_memjoin::{canonicalize, nested_loop_join};

    fn oracle_check(a: &[SpatialElement], b: &[SpatialElement], config: &PbsmConfig) -> PbsmStats {
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let (pairs, stats) = pbsm_join_datasets(&disk_a, a, &disk_b, b, config);
        let total = pairs.len();
        let got = canonicalize(pairs);
        assert_eq!(got.len(), total, "PBSM emitted duplicate pairs");
        let mut oracle = JoinStats::default();
        assert_eq!(got, canonicalize(nested_loop_join(a, b, &mut oracle)));
        stats
    }

    #[test]
    fn matches_oracle_uniform() {
        let a = generate(&DatasetSpec {
            max_side: 10.0,
            ..DatasetSpec::uniform(900, 30)
        });
        let b = generate(&DatasetSpec {
            max_side: 10.0,
            ..DatasetSpec::uniform(900, 31)
        });
        let stats = oracle_check(&a, &b, &PbsmConfig::default());
        assert!(
            stats.replicated > 0,
            "10-unit boxes must cross 100-unit cells"
        );
    }

    #[test]
    fn matches_oracle_skewed() {
        let a = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::with_distribution(700, Distribution::DenseCluster { clusters: 9 }, 32)
        });
        let b = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::uniform(1100, 33)
        });
        oracle_check(&a, &b, &PbsmConfig::with_partitions(7));
    }

    #[test]
    fn matches_oracle_large_elements_heavy_replication() {
        // Elements comparable to cell size: heavy replication exercises the
        // reference-point dedup across cells.
        let a = generate(&DatasetSpec {
            max_side: 180.0,
            ..DatasetSpec::uniform(150, 34)
        });
        let b = generate(&DatasetSpec {
            max_side: 180.0,
            ..DatasetSpec::uniform(150, 35)
        });
        let stats = oracle_check(&a, &b, &PbsmConfig::with_partitions(6));
        assert!(stats.duplicates_suppressed > 0);
    }

    #[test]
    fn empty_datasets() {
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let (pairs, _) = pbsm_join_datasets(&disk_a, &[], &disk_b, &[], &PbsmConfig::default());
        assert!(pairs.is_empty());
        let a = generate(&DatasetSpec::uniform(50, 36));
        let (pairs, _) = pbsm_join_datasets(&disk_a, &a, &disk_b, &[], &PbsmConfig::default());
        assert!(pairs.is_empty());
    }

    #[test]
    fn partition_phase_writes_all_data() {
        let disk = Disk::default_in_memory();
        let a = generate(&DatasetSpec::uniform(2000, 37));
        let mut stats = PbsmStats::default();
        let extent = Aabb::union_all(a.iter().map(|e| e.mbb));
        let part = pbsm_partition(&disk, &a, extent, &PbsmConfig::default(), &mut stats);
        assert_eq!(part.len(), 2000);
        assert_eq!(part.total_assigned() as u64, 2000 + stats.replicated);
        assert!(disk.stats().writes() > 0);
        // Every assigned element is on disk exactly once.
        let codec = ElementPageCodec::new(disk.page_size());
        let mut read_back = 0;
        let mut pool = BufferPool::with_default_capacity(&disk);
        for cell in 0..part.grid().cell_count() {
            read_back += part.read_cell(&mut pool, &codec, cell).len();
        }
        assert_eq!(read_back, part.total_assigned());
    }

    #[test]
    fn join_reads_are_mostly_random_for_interleaved_cells() {
        // The signature PBSM behaviour: cell pages interleave on disk, so
        // the join phase reads are dominated by random accesses.
        // Enough elements that cells flush pages mid-stream (capacity 146
        // per page, 1000 cells -> ~200 elements per cell) and interleave.
        let a = generate(&DatasetSpec::uniform(200_000, 38));
        let b = generate(&DatasetSpec::uniform(200_000, 39));
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let mut stats = PbsmStats::default();
        let extent = Aabb::union_all(a.iter().chain(b.iter()).map(|e| e.mbb));
        let config = PbsmConfig::default();
        let part_a = pbsm_partition(&disk_a, &a, extent, &config, &mut stats);
        let part_b = pbsm_partition(&disk_b, &b, extent, &config, &mut stats);
        disk_a.reset_stats();
        disk_b.reset_stats();
        let mut pool_a = BufferPool::with_default_capacity(&disk_a);
        let mut pool_b = BufferPool::with_default_capacity(&disk_b);
        let _ = pbsm_join(
            &mut pool_a,
            &part_a,
            &mut pool_b,
            &part_b,
            &config,
            &mut stats,
        );
        let s = disk_a.stats().merged(&disk_b.stats());
        assert!(s.reads() > 0);
        assert!(
            s.rand_reads > s.seq_reads,
            "expected random-dominated reads, got {} random vs {} sequential",
            s.rand_reads,
            s.seq_reads
        );
    }
}
