//! Property tests for PBSM: oracle equivalence and duplicate freedom under
//! arbitrary grids, element sizes and replication levels.

use proptest::prelude::*;
use tfm_geom::{Aabb, Point3, SpatialElement};
use tfm_memjoin::{canonicalize, nested_loop_join, JoinStats};
use tfm_pbsm::{pbsm_join_datasets, PbsmConfig};
use tfm_storage::Disk;

fn arb_elems(max: usize, max_side: f64) -> impl Strategy<Value = Vec<SpatialElement>> {
    prop::collection::vec(
        (
            0.0..100.0f64,
            0.0..100.0f64,
            0.0..100.0f64,
            0.0..1.0f64,
            0.0..1.0f64,
            0.0..1.0f64,
        ),
        0..max,
    )
    .prop_map(move |raw| {
        raw.into_iter()
            .enumerate()
            .map(|(id, (x, y, z, dx, dy, dz))| {
                SpatialElement::new(
                    id as u64,
                    Aabb::new(
                        Point3::new(x, y, z),
                        Point3::new(x + dx * max_side, y + dy * max_side, z + dz * max_side),
                    ),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matches_oracle_any_grid(
        a in arb_elems(80, 5.0),
        b in arb_elems(80, 5.0),
        partitions in 1usize..8,
    ) {
        let disk_a = Disk::in_memory(512);
        let disk_b = Disk::in_memory(512);
        let cfg = PbsmConfig::with_partitions(partitions);
        let (pairs, _) = pbsm_join_datasets(&disk_a, &a, &disk_b, &b, &cfg);
        let total = pairs.len();
        let got = canonicalize(pairs);
        prop_assert_eq!(got.len(), total, "duplicates emitted");
        let mut s = JoinStats::default();
        prop_assert_eq!(got, canonicalize(nested_loop_join(&a, &b, &mut s)));
    }

    #[test]
    fn matches_oracle_with_cell_sized_elements(
        a in arb_elems(50, 40.0),
        b in arb_elems(50, 40.0),
    ) {
        // Elements larger than grid cells: replication + heavy reference-
        // point deduplication across cells.
        let disk_a = Disk::in_memory(512);
        let disk_b = Disk::in_memory(512);
        let cfg = PbsmConfig::with_partitions(5);
        let (pairs, stats) = pbsm_join_datasets(&disk_a, &a, &disk_b, &b, &cfg);
        let got = canonicalize(pairs);
        let mut s = JoinStats::default();
        prop_assert_eq!(got, canonicalize(nested_loop_join(&a, &b, &mut s)));
        if !a.is_empty() {
            prop_assert!(stats.replicated > 0 || a.len() < 3);
        }
    }
}
