//! Size Separation Spatial Join (Koudas & Sevcik, SIGMOD '97).
//!
//! A hierarchy of equi-width grids of increasing granularity: level `l`
//! has `2^l` cells per dimension. Each element is assigned to the deepest
//! level at which it still overlaps exactly one cell (multiple matching —
//! no replication, paper §VIII-B). Two elements can only intersect if one
//! element's cell is an ancestor of (or equal to) the other's, because
//! same-level cells are disjoint and cells across levels are nested. The
//! join therefore visits every occupied cell `c` and joins it with
//! * the other dataset's elements in `c`, and
//! * the other dataset's elements in every ancestor of `c`,
//!
//! which considers each candidate pair exactly once.

use std::collections::HashMap;
use tfm_geom::{Aabb, SpatialElement};
use tfm_memjoin::{plane_sweep_join, JoinStats, ResultPair};
use tfm_storage::{BufferPool, Disk, ElementPageCodec, PageId};

/// Cell address: level + per-dimension coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Hierarchy level (0 = one cell covering everything).
    pub level: u8,
    /// Cell coordinates at that level.
    pub coords: [u32; 3],
}

impl CellId {
    /// The ancestor of this cell at `level` (must not exceed own level).
    fn ancestor(&self, level: u8) -> CellId {
        debug_assert!(level <= self.level);
        let shift = self.level - level;
        CellId {
            level,
            coords: self.coords.map(|c| c >> shift),
        }
    }
}

/// Counters of an S3 run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct S3Stats {
    /// Occupied (level, cell) slots across both datasets.
    pub occupied_cells: u64,
    /// Element-level counters.
    pub mem: JoinStats,
}

/// One dataset assigned onto the level hierarchy and written to disk.
#[derive(Debug)]
pub struct S3Dataset {
    cells: HashMap<CellId, Vec<PageId>>,
    extent: Aabb,
    levels: u8,
    len: usize,
}

impl S3Dataset {
    /// Number of assigned elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements were assigned.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of occupied cells.
    pub fn occupied(&self) -> usize {
        self.cells.len()
    }

    fn read_cell(
        &self,
        pool: &mut BufferPool<'_>,
        codec: &ElementPageCodec,
        cell: &CellId,
    ) -> Vec<SpatialElement> {
        let mut out = Vec::new();
        if let Some(pages) = self.cells.get(cell) {
            for &p in pages {
                out.extend(codec.decode(pool.read(p)));
            }
        }
        out
    }
}

/// The deepest level (≤ `levels - 1`) at which `mbb` overlaps exactly one
/// cell of the `2^l` grid over `extent`.
fn level_of(mbb: &Aabb, extent: &Aabb, levels: u8) -> CellId {
    let mut best = CellId {
        level: 0,
        coords: [0, 0, 0],
    };
    for level in 1..levels {
        let n = 1u32 << level;
        let mut coords = [0u32; 3];
        let mut fits = true;
        for (d, coord) in coords.iter_mut().enumerate() {
            let ext = extent.extent(d);
            let cw = if ext > 0.0 {
                ext / n as f64
            } else {
                f64::MIN_POSITIVE
            };
            let lo = (((mbb.min.coord(d) - extent.min.coord(d)) / cw).floor() as i64)
                .clamp(0, n as i64 - 1);
            let hi = (((mbb.max.coord(d) - extent.min.coord(d)) / cw).floor() as i64)
                .clamp(0, n as i64 - 1);
            if lo != hi {
                fits = false;
                break;
            }
            *coord = lo as u32;
        }
        if !fits {
            break;
        }
        best = CellId { level, coords };
    }
    best
}

/// Assigns `elements` onto the `levels`-deep hierarchy over `extent` and
/// writes per-cell page lists to `disk`.
pub fn s3_partition(
    disk: &Disk,
    elements: &[SpatialElement],
    extent: Aabb,
    levels: u8,
    stats: &mut S3Stats,
) -> S3Dataset {
    let levels = levels.clamp(1, 16);
    let codec = ElementPageCodec::new(disk.page_size());
    let cap = codec.capacity();

    let mut buffers: HashMap<CellId, Vec<SpatialElement>> = HashMap::new();
    let mut cells: HashMap<CellId, Vec<PageId>> = HashMap::new();
    for e in elements {
        let cell = level_of(&e.mbb, &extent, levels);
        let buf = buffers.entry(cell).or_default();
        buf.push(*e);
        if buf.len() == cap {
            let page = disk.allocate();
            disk.write_page(page, &codec.encode(buf));
            cells.entry(cell).or_default().push(page);
            buf.clear();
        }
    }
    for (cell, buf) in buffers {
        if !buf.is_empty() {
            let page = disk.allocate();
            disk.write_page(page, &codec.encode(&buf));
            cells.entry(cell).or_default().push(page);
        }
    }
    stats.occupied_cells += cells.len() as u64;

    S3Dataset {
        cells,
        extent,
        levels,
        len: elements.len(),
    }
}

/// Joins two S3-assigned datasets (must share extent and depth).
///
/// # Panics
/// Panics if the hierarchies differ.
pub fn s3_join(
    pool_a: &mut BufferPool<'_>,
    part_a: &S3Dataset,
    pool_b: &mut BufferPool<'_>,
    part_b: &S3Dataset,
    stats: &mut S3Stats,
) -> Vec<ResultPair> {
    assert_eq!(part_a.extent, part_b.extent, "hierarchies must match");
    assert_eq!(part_a.levels, part_b.levels, "hierarchies must match");
    let codec_a = ElementPageCodec::new(pool_a.disk().page_size());
    let codec_b = ElementPageCodec::new(pool_b.disk().page_size());

    let mut out = Vec::new();
    // Deterministic iteration order for reproducible I/O patterns.
    let mut cells_a: Vec<CellId> = part_a.cells.keys().copied().collect();
    cells_a.sort_unstable();

    for &ca in &cells_a {
        let elems_a = part_a.read_cell(pool_a, &codec_a, &ca);
        // Same cell plus every ancestor cell of B.
        for level in (0..=ca.level).rev() {
            let anc = ca.ancestor(level);
            let elems_b = part_b.read_cell(pool_b, &codec_b, &anc);
            if !elems_b.is_empty() {
                out.extend(plane_sweep_join(&elems_a, &elems_b, &mut stats.mem));
            }
        }
    }
    // B's cells joined against A's *strict* ancestors (the equal-cell case
    // was covered above).
    let mut cells_b: Vec<CellId> = part_b.cells.keys().copied().collect();
    cells_b.sort_unstable();
    for &cb in &cells_b {
        if cb.level == 0 {
            continue;
        }
        let elems_b = part_b.read_cell(pool_b, &codec_b, &cb);
        for level in (0..cb.level).rev() {
            let anc = cb.ancestor(level);
            let elems_a = part_a.read_cell(pool_a, &codec_a, &anc);
            if !elems_a.is_empty() {
                out.extend(plane_sweep_join(&elems_a, &elems_b, &mut stats.mem));
            }
        }
    }
    out
}

/// Convenience wrapper: assigns both datasets and joins them.
pub fn s3_join_datasets(
    disk_a: &Disk,
    a: &[SpatialElement],
    disk_b: &Disk,
    b: &[SpatialElement],
    levels: u8,
) -> (Vec<ResultPair>, S3Stats) {
    let mut stats = S3Stats::default();
    let extent = Aabb::union_all(a.iter().chain(b.iter()).map(|e| e.mbb));
    if extent.is_empty() {
        return (Vec::new(), stats);
    }
    let part_a = s3_partition(disk_a, a, extent, levels, &mut stats);
    let part_b = s3_partition(disk_b, b, extent, levels, &mut stats);
    let mut pool_a = BufferPool::with_default_capacity(disk_a);
    let mut pool_b = BufferPool::with_default_capacity(disk_b);
    let pairs = s3_join(&mut pool_a, &part_a, &mut pool_b, &part_b, &mut stats);
    (pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_datagen::{generate, DatasetSpec, Distribution};
    use tfm_memjoin::{canonicalize, nested_loop_join};

    fn oracle_check(a: &[SpatialElement], b: &[SpatialElement], levels: u8) -> S3Stats {
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let (pairs, stats) = s3_join_datasets(&disk_a, a, &disk_b, b, levels);
        let total = pairs.len();
        let got = canonicalize(pairs);
        assert_eq!(got.len(), total, "S3 emitted duplicates");
        let mut s = JoinStats::default();
        assert_eq!(got, canonicalize(nested_loop_join(a, b, &mut s)));
        stats
    }

    #[test]
    fn matches_oracle_uniform() {
        let a = generate(&DatasetSpec {
            max_side: 10.0,
            ..DatasetSpec::uniform(800, 400)
        });
        let b = generate(&DatasetSpec {
            max_side: 10.0,
            ..DatasetSpec::uniform(800, 401)
        });
        let stats = oracle_check(&a, &b, 6);
        assert!(stats.occupied_cells > 2);
    }

    #[test]
    fn matches_oracle_mixed_sizes() {
        // Small and huge elements together: size separation is the point.
        let mut a = generate(&DatasetSpec {
            max_side: 2.0,
            ..DatasetSpec::uniform(400, 402)
        });
        let big = generate(&DatasetSpec {
            max_side: 300.0,
            ..DatasetSpec::uniform(50, 403)
        });
        let offset = a.len() as u64;
        a.extend(
            big.into_iter()
                .map(|e| SpatialElement::new(e.id + offset, e.mbb)),
        );
        let b = generate(&DatasetSpec {
            max_side: 50.0,
            ..DatasetSpec::uniform(400, 404)
        });
        oracle_check(&a, &b, 6);
    }

    #[test]
    fn matches_oracle_clustered() {
        let a = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::with_distribution(700, Distribution::DenseCluster { clusters: 8 }, 405)
        });
        let b = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::uniform(700, 406)
        });
        oracle_check(&a, &b, 7);
    }

    #[test]
    fn single_level_degenerates_to_full_sweep() {
        let a = generate(&DatasetSpec {
            max_side: 5.0,
            ..DatasetSpec::uniform(200, 407)
        });
        let b = generate(&DatasetSpec {
            max_side: 5.0,
            ..DatasetSpec::uniform(200, 408)
        });
        let stats = oracle_check(&a, &b, 1);
        assert_eq!(stats.occupied_cells, 2); // one root cell per dataset
    }

    #[test]
    fn level_assignment_is_deepest_fitting() {
        let extent = Aabb::new(
            tfm_geom::Point3::new(0.0, 0.0, 0.0),
            tfm_geom::Point3::new(1024.0, 1024.0, 1024.0),
        );
        // A tiny element deep inside one cell at every level.
        let tiny = Aabb::new(
            tfm_geom::Point3::new(1.0, 1.0, 1.0),
            tfm_geom::Point3::new(2.0, 2.0, 2.0),
        );
        let cell = level_of(&tiny, &extent, 8);
        assert_eq!(cell.level, 7);
        // An element crossing the center plane never fits below level 0.
        let crossing = Aabb::new(
            tfm_geom::Point3::new(500.0, 1.0, 1.0),
            tfm_geom::Point3::new(600.0, 2.0, 2.0),
        );
        let cell = level_of(&crossing, &extent, 8);
        assert_eq!(cell.level, 0);
    }

    #[test]
    fn empty_inputs() {
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let (pairs, _) = s3_join_datasets(&disk_a, &[], &disk_b, &[], 5);
        assert!(pairs.is_empty());
    }
}
