//! Additional space-oriented baselines from the paper's related work
//! (§VIII-B): joins that avoid replication with the *multiple matching*
//! strategy instead of PBSM's multiple assignment.
//!
//! * [`sssj`] — the Scalable Sweeping-Based Spatial Join (Arge et al.,
//!   VLDB '98): equal-width strips in one dimension plus spanning sets,
//!   plane sweep within each strip.
//! * [`s3`] — the Size Separation Spatial Join (Koudas & Sevcik,
//!   SIGMOD '97): a hierarchy of equi-width grids of increasing
//!   granularity; each element is assigned to the deepest level where it
//!   overlaps exactly one cell, and each cell joins with its ancestors.
//!
//! Neither appears in the paper's measured comparison (PBSM was the
//! representative space-oriented competitor), but both sharpen the design
//! space around TRANSFORMERS and are held to the same correctness
//! standard: exact oracle equivalence, no duplicate results.

#![warn(missing_docs)]

pub mod s3;
pub mod sssj;
