//! Scalable Sweeping-Based Spatial Join (Arge et al., VLDB '98).
//!
//! Space is partitioned into `n` strips of equal width along the
//! x-dimension. Each element is assigned to the strip that *fully
//! contains* it (multiple matching — no replication); elements crossing a
//! strip boundary go to a *spanning set*. The join then runs a plane
//! sweep within each strip, joins each dataset's spanning set against the
//! other dataset's strips it covers, and finally joins the two spanning
//! sets — each candidate pair is considered exactly once:
//!
//! * both elements strip-resident: they can only intersect within the one
//!   strip each fully occupies (x-overlap forces equal strips);
//! * spanning × strip-resident: the resident element lives in exactly one
//!   strip, so the pair appears once;
//! * spanning × spanning: joined once globally.

use tfm_geom::{Aabb, SpatialElement};
use tfm_memjoin::{plane_sweep_join, JoinStats, ResultPair};
use tfm_storage::{BufferPool, Disk, ElementPageCodec, PageId};

/// Counters of an SSSJ run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SssjStats {
    /// Elements assigned to the spanning set (both datasets).
    pub spanning: u64,
    /// Element-level counters.
    pub mem: JoinStats,
}

/// One dataset partitioned into strips + spanning set, stored on disk.
#[derive(Debug)]
pub struct SssjDataset {
    /// Pages of each strip (strip-resident elements).
    strip_pages: Vec<Vec<PageId>>,
    /// Pages of the spanning set.
    spanning_pages: Vec<PageId>,
    /// x-range covered by the strips.
    x_lo: f64,
    strip_width: f64,
    len: usize,
}

impl SssjDataset {
    /// Number of partitioned elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements were partitioned.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of strips.
    pub fn strips(&self) -> usize {
        self.strip_pages.len()
    }

    fn read_pages(
        &self,
        pool: &mut BufferPool<'_>,
        codec: &ElementPageCodec,
        pages: &[PageId],
    ) -> Vec<SpatialElement> {
        let mut out = Vec::new();
        for &p in pages {
            out.extend(codec.decode(pool.read(p)));
        }
        out
    }

    fn read_strip(
        &self,
        pool: &mut BufferPool<'_>,
        codec: &ElementPageCodec,
        i: usize,
    ) -> Vec<SpatialElement> {
        self.read_pages(pool, codec, &self.strip_pages[i])
    }

    fn read_spanning(
        &self,
        pool: &mut BufferPool<'_>,
        codec: &ElementPageCodec,
    ) -> Vec<SpatialElement> {
        self.read_pages(pool, codec, &self.spanning_pages)
    }
}

/// Partitions `elements` into `strips` equal-width x-strips over `extent`,
/// writing strip files and the spanning set to `disk`.
pub fn sssj_partition(
    disk: &Disk,
    elements: &[SpatialElement],
    extent: Aabb,
    strips: usize,
    stats: &mut SssjStats,
) -> SssjDataset {
    let strips = strips.max(1);
    let codec = ElementPageCodec::new(disk.page_size());
    let cap = codec.capacity();
    let x_lo = extent.min.x;
    let width = (extent.extent(0) / strips as f64).max(f64::MIN_POSITIVE);

    let mut strip_bufs: Vec<Vec<SpatialElement>> = vec![Vec::new(); strips];
    let mut strip_pages: Vec<Vec<PageId>> = vec![Vec::new(); strips];
    let mut span_buf: Vec<SpatialElement> = Vec::new();
    let mut spanning_pages: Vec<PageId> = Vec::new();

    let strip_of = |x: f64| -> usize {
        (((x - x_lo) / width).floor() as i64).clamp(0, strips as i64 - 1) as usize
    };

    for e in elements {
        let lo = strip_of(e.mbb.min.x);
        let hi = strip_of(e.mbb.max.x);
        if lo == hi {
            strip_bufs[lo].push(*e);
            if strip_bufs[lo].len() == cap {
                let page = disk.allocate();
                disk.write_page(page, &codec.encode(&strip_bufs[lo]));
                strip_pages[lo].push(page);
                strip_bufs[lo].clear();
            }
        } else {
            stats.spanning += 1;
            span_buf.push(*e);
            if span_buf.len() == cap {
                let page = disk.allocate();
                disk.write_page(page, &codec.encode(&span_buf));
                spanning_pages.push(page);
                span_buf.clear();
            }
        }
    }
    for (i, buf) in strip_bufs.iter().enumerate() {
        if !buf.is_empty() {
            let page = disk.allocate();
            disk.write_page(page, &codec.encode(buf));
            strip_pages[i].push(page);
        }
    }
    if !span_buf.is_empty() {
        let page = disk.allocate();
        disk.write_page(page, &codec.encode(&span_buf));
        spanning_pages.push(page);
    }

    SssjDataset {
        strip_pages,
        spanning_pages,
        x_lo,
        strip_width: width,
        len: elements.len(),
    }
}

/// Joins two SSSJ-partitioned datasets (must share strip geometry).
///
/// # Panics
/// Panics if the strip geometries differ.
pub fn sssj_join(
    pool_a: &mut BufferPool<'_>,
    part_a: &SssjDataset,
    pool_b: &mut BufferPool<'_>,
    part_b: &SssjDataset,
    stats: &mut SssjStats,
) -> Vec<ResultPair> {
    assert_eq!(part_a.strips(), part_b.strips(), "strip counts must match");
    assert!(
        (part_a.x_lo - part_b.x_lo).abs() < 1e-9
            && (part_a.strip_width - part_b.strip_width).abs() < 1e-9,
        "strip geometry must match"
    );
    let codec_a = ElementPageCodec::new(pool_a.disk().page_size());
    let codec_b = ElementPageCodec::new(pool_b.disk().page_size());

    let span_a = part_a.read_spanning(pool_a, &codec_a);
    let span_b = part_b.read_spanning(pool_b, &codec_b);

    let mut out = Vec::new();
    for i in 0..part_a.strips() {
        let strip_a = part_a.read_strip(pool_a, &codec_a, i);
        let strip_b = part_b.read_strip(pool_b, &codec_b, i);
        // Resident × resident within the strip.
        out.extend(plane_sweep_join(&strip_a, &strip_b, &mut stats.mem));
        // Spanning × resident (each resident element lives in exactly one
        // strip, so each such pair is produced once).
        if !span_a.is_empty() && !strip_b.is_empty() {
            out.extend(plane_sweep_join(&span_a, &strip_b, &mut stats.mem));
        }
        if !strip_a.is_empty() && !span_b.is_empty() {
            out.extend(plane_sweep_join(&strip_a, &span_b, &mut stats.mem));
        }
    }
    // Spanning × spanning, once globally.
    out.extend(plane_sweep_join(&span_a, &span_b, &mut stats.mem));
    out
}

/// Convenience wrapper: partitions both datasets and joins them.
pub fn sssj_join_datasets(
    disk_a: &Disk,
    a: &[SpatialElement],
    disk_b: &Disk,
    b: &[SpatialElement],
    strips: usize,
) -> (Vec<ResultPair>, SssjStats) {
    let mut stats = SssjStats::default();
    let extent = Aabb::union_all(a.iter().chain(b.iter()).map(|e| e.mbb));
    if extent.is_empty() {
        return (Vec::new(), stats);
    }
    let part_a = sssj_partition(disk_a, a, extent, strips, &mut stats);
    let part_b = sssj_partition(disk_b, b, extent, strips, &mut stats);
    let mut pool_a = BufferPool::with_default_capacity(disk_a);
    let mut pool_b = BufferPool::with_default_capacity(disk_b);
    let pairs = sssj_join(&mut pool_a, &part_a, &mut pool_b, &part_b, &mut stats);
    (pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_datagen::{generate, DatasetSpec, Distribution};
    use tfm_memjoin::{canonicalize, nested_loop_join};

    fn oracle_check(a: &[SpatialElement], b: &[SpatialElement], strips: usize) -> SssjStats {
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let (pairs, stats) = sssj_join_datasets(&disk_a, a, &disk_b, b, strips);
        let total = pairs.len();
        let got = canonicalize(pairs);
        assert_eq!(got.len(), total, "SSSJ emitted duplicates");
        let mut s = JoinStats::default();
        assert_eq!(got, canonicalize(nested_loop_join(a, b, &mut s)));
        stats
    }

    #[test]
    fn matches_oracle_uniform() {
        let a = generate(&DatasetSpec {
            max_side: 10.0,
            ..DatasetSpec::uniform(800, 300)
        });
        let b = generate(&DatasetSpec {
            max_side: 10.0,
            ..DatasetSpec::uniform(800, 301)
        });
        let stats = oracle_check(&a, &b, 16);
        assert!(
            stats.spanning > 0,
            "10-unit boxes must cross 62-unit strips sometimes"
        );
    }

    #[test]
    fn matches_oracle_clustered() {
        let a = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::with_distribution(700, Distribution::DenseCluster { clusters: 8 }, 302)
        });
        let b = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::uniform(900, 303)
        });
        oracle_check(&a, &b, 10);
    }

    #[test]
    fn matches_oracle_single_strip() {
        let a = generate(&DatasetSpec {
            max_side: 5.0,
            ..DatasetSpec::uniform(300, 304)
        });
        let b = generate(&DatasetSpec {
            max_side: 5.0,
            ..DatasetSpec::uniform(300, 305)
        });
        let stats = oracle_check(&a, &b, 1);
        assert_eq!(stats.spanning, 0, "one strip contains everything");
    }

    #[test]
    fn matches_oracle_everything_spans() {
        // Strips thinner than the elements: everything is spanning.
        let a = generate(&DatasetSpec {
            max_side: 80.0,
            ..DatasetSpec::uniform(150, 306)
        });
        let b = generate(&DatasetSpec {
            max_side: 80.0,
            ..DatasetSpec::uniform(150, 307)
        });
        oracle_check(&a, &b, 64);
    }

    #[test]
    fn empty_inputs() {
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let (pairs, _) = sssj_join_datasets(&disk_a, &[], &disk_b, &[], 8);
        assert!(pairs.is_empty());
    }
}
