//! Uniform-grid hash join (Tauheed et al., BICOD '15).

use crate::{JoinStats, ResultPair};
use tfm_geom::{Aabb, Point3, SpatialElement};

/// Configuration of the uniform grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Fixed number of cells per dimension; `None` derives it from the
    /// build-side cardinality via `target_per_cell`.
    pub cells_per_dim: Option<usize>,
    /// Desired average number of build-side elements per cell when sizing
    /// the grid automatically.
    pub target_per_cell: f64,
}

impl Default for GridConfig {
    fn default() -> Self {
        Self {
            cells_per_dim: None,
            target_per_cell: 4.0,
        }
    }
}

impl GridConfig {
    /// A grid with exactly `n` cells per dimension.
    pub fn fixed(n: usize) -> Self {
        Self {
            cells_per_dim: Some(n),
            target_per_cell: 4.0,
        }
    }

    fn resolve(&self, build_count: usize) -> usize {
        if let Some(n) = self.cells_per_dim {
            return n.max(1);
        }
        let cells = (build_count as f64 / self.target_per_cell).max(1.0);
        (cells.cbrt().ceil() as usize).clamp(1, 256)
    }
}

/// A uniform grid over `extent` with elements hashed into overlapped cells.
struct Grid {
    extent: Aabb,
    n: usize,
    cell_size: Point3,
    /// Per cell: indices into the build-side slice.
    cells: Vec<Vec<u32>>,
}

impl Grid {
    fn build(extent: Aabb, n: usize, elements: &[SpatialElement]) -> Self {
        let cell_size = Point3::new(
            extent.extent(0) / n as f64,
            extent.extent(1) / n as f64,
            extent.extent(2) / n as f64,
        );
        let mut grid = Self {
            extent,
            n,
            cell_size,
            cells: vec![Vec::new(); n * n * n],
        };
        for (i, e) in elements.iter().enumerate() {
            let (lo, hi) = grid.cell_range(&e.mbb);
            for cz in lo[2]..=hi[2] {
                for cy in lo[1]..=hi[1] {
                    for cx in lo[0]..=hi[0] {
                        let idx = grid.cell_index(cx, cy, cz);
                        grid.cells[idx].push(i as u32);
                    }
                }
            }
        }
        grid
    }

    #[inline]
    fn cell_index(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.n + y) * self.n + x
    }

    /// Inclusive cell coordinate range overlapped by a box.
    fn cell_range(&self, mbb: &Aabb) -> ([usize; 3], [usize; 3]) {
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for d in 0..3 {
            let cs = self.cell_size.coord(d);
            let (l, h) = if cs > 0.0 {
                let l = ((mbb.min.coord(d) - self.extent.min.coord(d)) / cs).floor() as i64;
                let h = ((mbb.max.coord(d) - self.extent.min.coord(d)) / cs).floor() as i64;
                (l, h)
            } else {
                (0, 0)
            };
            lo[d] = l.clamp(0, self.n as i64 - 1) as usize;
            hi[d] = h.clamp(0, self.n as i64 - 1) as usize;
        }
        (lo, hi)
    }

    /// Lower corner of a cell, for reference-point deduplication.
    fn cell_min(&self, x: usize, y: usize, z: usize) -> Point3 {
        Point3::new(
            self.extent.min.x + x as f64 * self.cell_size.x,
            self.extent.min.y + y as f64 * self.cell_size.y,
            self.extent.min.z + z as f64 * self.cell_size.z,
        )
    }

    fn cell_box(&self, x: usize, y: usize, z: usize) -> Aabb {
        let min = self.cell_min(x, y, z);
        let max = Point3::new(
            if x + 1 == self.n {
                self.extent.max.x
            } else {
                min.x + self.cell_size.x
            },
            if y + 1 == self.n {
                self.extent.max.y
            } else {
                min.y + self.cell_size.y
            },
            if z + 1 == self.n {
                self.extent.max.z
            } else {
                min.z + self.cell_size.z
            },
        );
        Aabb::new(min, max)
    }
}

/// Joins `left` and `right` with a uniform-grid hash join.
///
/// The grid covers the union of both extents; `left` is hashed into every
/// cell it overlaps, then each `right` element probes its overlapped cells.
/// Duplicate candidate pairs (elements sharing several cells) are suppressed
/// with the *reference-point* method: a pair is reported only in the cell
/// containing the minimum corner of the two MBBs' intersection, so no
/// result-set deduplication pass is needed — the same technique PBSM uses
/// (paper §VIII-B, Dittrich & Seeger ICDE '00).
pub fn grid_hash_join(
    left: &[SpatialElement],
    right: &[SpatialElement],
    config: &GridConfig,
    stats: &mut JoinStats,
) -> Vec<ResultPair> {
    if left.is_empty() || right.is_empty() {
        return Vec::new();
    }
    let extent = Aabb::union_all(left.iter().chain(right.iter()).map(|e| e.mbb));
    let n = config.resolve(left.len());
    let grid = Grid::build(extent, n, left);

    let mut out = Vec::new();
    for b in right {
        let (lo, hi) = grid.cell_range(&b.mbb);
        for cz in lo[2]..=hi[2] {
            for cy in lo[1]..=hi[1] {
                for cx in lo[0]..=hi[0] {
                    let cell_box = grid.cell_box(cx, cy, cz);
                    for &ai in &grid.cells[grid.cell_index(cx, cy, cz)] {
                        let a = &left[ai as usize];
                        stats.element_tests += 1;
                        if let Some(overlap) = a.mbb.intersection(&b.mbb) {
                            // Reference point: report in the unique cell
                            // holding the intersection's min corner.
                            if cell_box.contains_point(&overlap.min)
                                && is_reference_cell(&grid, &overlap.min, cx, cy, cz)
                            {
                                out.push((a.id, b.id));
                            }
                        }
                    }
                }
            }
        }
    }
    stats.results += out.len() as u64;
    out
}

/// The reference point may lie exactly on a shared cell boundary, in which
/// case `cell_box.contains_point` is true for several cells; tie-break by
/// requiring this cell to be the floor-indexed owner of the point.
#[inline]
fn is_reference_cell(grid: &Grid, p: &Point3, cx: usize, cy: usize, cz: usize) -> bool {
    let (lo, _) = grid.cell_range(&Aabb::from_point(*p));
    lo == [cx, cy, cz]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{canonicalize, nested_loop_join};
    use tfm_geom::Point3;

    fn elem(id: u64, min: (f64, f64, f64), max: (f64, f64, f64)) -> SpatialElement {
        SpatialElement::new(
            id,
            Aabb::new(
                Point3::new(min.0, min.1, min.2),
                Point3::new(max.0, max.1, max.2),
            ),
        )
    }

    #[test]
    fn matches_nested_loop_on_small_input() {
        let a = vec![
            elem(0, (0.0, 0.0, 0.0), (2.0, 2.0, 2.0)),
            elem(1, (5.0, 5.0, 5.0), (7.0, 7.0, 7.0)),
            elem(2, (1.0, 1.0, 1.0), (6.0, 6.0, 6.0)),
        ];
        let b = vec![
            elem(0, (1.5, 1.5, 1.5), (5.5, 5.5, 5.5)),
            elem(1, (8.0, 8.0, 8.0), (9.0, 9.0, 9.0)),
        ];
        let mut s1 = JoinStats::default();
        let mut s2 = JoinStats::default();
        let expected = canonicalize(nested_loop_join(&a, &b, &mut s1));
        let got = canonicalize(grid_hash_join(&a, &b, &GridConfig::fixed(4), &mut s2));
        assert_eq!(got, expected);
    }

    #[test]
    fn no_duplicates_for_elements_spanning_many_cells() {
        // One huge element overlapping every cell of a fine grid.
        let a = vec![elem(0, (0.0, 0.0, 0.0), (100.0, 100.0, 100.0))];
        let b = vec![elem(0, (10.0, 10.0, 10.0), (90.0, 90.0, 90.0))];
        let mut s = JoinStats::default();
        let pairs = grid_hash_join(&a, &b, &GridConfig::fixed(8), &mut s);
        assert_eq!(pairs, vec![(0, 0)]);
        // It was *tested* in many cells but reported once.
        assert!(s.element_tests > 1);
    }

    #[test]
    fn empty_inputs_return_empty() {
        let a = vec![elem(0, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0))];
        let mut s = JoinStats::default();
        assert!(grid_hash_join(&a, &[], &GridConfig::default(), &mut s).is_empty());
        assert!(grid_hash_join(&[], &a, &GridConfig::default(), &mut s).is_empty());
        assert_eq!(s.element_tests, 0);
    }

    #[test]
    fn degenerate_extent_single_point() {
        // All elements identical points: grid has zero extent.
        let a = vec![elem(0, (5.0, 5.0, 5.0), (5.0, 5.0, 5.0))];
        let b = vec![elem(0, (5.0, 5.0, 5.0), (5.0, 5.0, 5.0))];
        let mut s = JoinStats::default();
        let pairs = grid_hash_join(&a, &b, &GridConfig::default(), &mut s);
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn auto_sizing_clamps_reasonably() {
        assert_eq!(GridConfig::default().resolve(0), 1);
        assert_eq!(GridConfig::default().resolve(1), 1);
        assert!(GridConfig::default().resolve(1_000_000) <= 256);
        assert_eq!(GridConfig::fixed(10).resolve(5), 10);
    }

    #[test]
    fn grid_uses_fewer_tests_than_nested_loop_on_spread_data() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..100 {
            let f = i as f64 * 10.0;
            a.push(elem(i, (f, f, f), (f + 1.0, f + 1.0, f + 1.0)));
            b.push(elem(
                i,
                (f + 0.5, f + 0.5, f + 0.5),
                (f + 1.5, f + 1.5, f + 1.5),
            ));
        }
        let mut sn = JoinStats::default();
        let mut sg = JoinStats::default();
        let expected = canonicalize(nested_loop_join(&a, &b, &mut sn));
        let got = canonicalize(grid_hash_join(&a, &b, &GridConfig::fixed(10), &mut sg));
        assert_eq!(got, expected);
        assert!(sg.element_tests < sn.element_tests / 5);
    }
}
