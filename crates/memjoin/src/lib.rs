//! In-memory spatial join kernels.
//!
//! Disk-based join approaches differ in how they *stage* data, but all of
//! them ultimately intersect two in-memory sets of elements. This crate
//! provides those kernels:
//!
//! * [`grid_hash_join`] — the uniform-grid hash join of Tauheed et al.
//!   (BICOD '15), used by PBSM and TRANSFORMERS (paper §VII-A);
//! * [`plane_sweep_join`] — the classic forward plane sweep, used by the
//!   synchronized R-Tree baseline (paper §VII-A);
//! * [`nested_loop_join`] — the quadratic oracle every other algorithm is
//!   tested against.
//!
//! All kernels report the number of element-vs-element intersection tests
//! through [`JoinStats`]; the paper's Fig. 11/12 (right panels) compare
//! exactly this number across approaches.

#![warn(missing_docs)]

mod grid;
mod sweep;

pub use grid::{grid_hash_join, GridConfig};
pub use sweep::plane_sweep_join;

use tfm_geom::{ElementId, SpatialElement};

/// A result pair: ids of two intersecting elements, one from each side.
pub type ResultPair = (ElementId, ElementId);

/// Counters shared by all join kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Element-vs-element MBB intersection tests performed.
    pub element_tests: u64,
    /// Result pairs reported.
    pub results: u64,
}

impl JoinStats {
    /// Adds another stats value onto this one.
    pub fn absorb(&mut self, other: &JoinStats) {
        self.element_tests += other.element_tests;
        self.results += other.results;
    }
}

/// The brute-force oracle: tests every pair.
///
/// Used in tests and as the refinement kernel for tiny candidate sets; its
/// output defines result-set correctness for every other approach.
pub fn nested_loop_join(
    left: &[SpatialElement],
    right: &[SpatialElement],
    stats: &mut JoinStats,
) -> Vec<ResultPair> {
    let mut out = Vec::new();
    for a in left {
        for b in right {
            stats.element_tests += 1;
            if a.mbb.intersects(&b.mbb) {
                out.push((a.id, b.id));
            }
        }
    }
    stats.results += out.len() as u64;
    out
}

/// Sorts and deduplicates a result set so that result sets from different
/// approaches can be compared for equality.
pub fn canonicalize(mut pairs: Vec<ResultPair>) -> Vec<ResultPair> {
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_geom::{Aabb, Point3};

    fn elem(id: u64, min: (f64, f64, f64), max: (f64, f64, f64)) -> SpatialElement {
        SpatialElement::new(
            id,
            Aabb::new(
                Point3::new(min.0, min.1, min.2),
                Point3::new(max.0, max.1, max.2),
            ),
        )
    }

    #[test]
    fn nested_loop_finds_pairs_and_counts_tests() {
        let a = vec![
            elem(0, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0)),
            elem(1, (5.0, 5.0, 5.0), (6.0, 6.0, 6.0)),
        ];
        let b = vec![elem(0, (0.5, 0.5, 0.5), (2.0, 2.0, 2.0))];
        let mut stats = JoinStats::default();
        let pairs = nested_loop_join(&a, &b, &mut stats);
        assert_eq!(pairs, vec![(0, 0)]);
        assert_eq!(stats.element_tests, 2);
        assert_eq!(stats.results, 1);
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let pairs = vec![(3, 1), (1, 2), (3, 1), (0, 0)];
        assert_eq!(canonicalize(pairs), vec![(0, 0), (1, 2), (3, 1)]);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = JoinStats {
            element_tests: 5,
            results: 1,
        };
        a.absorb(&JoinStats {
            element_tests: 7,
            results: 2,
        });
        assert_eq!(
            a,
            JoinStats {
                element_tests: 12,
                results: 3
            }
        );
    }
}
