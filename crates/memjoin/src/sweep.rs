//! Forward plane-sweep join.

use crate::{JoinStats, ResultPair};
use tfm_geom::SpatialElement;

/// Joins two element sets with the classic forward plane sweep on the
/// x-dimension (Brinkhoff et al. SIGMOD '93 use this inside the
/// synchronized R-Tree join; our R-TREE baseline does the same, §VII-A).
///
/// Both inputs are sorted by `min.x`; the sweep advances the side with the
/// smaller next `min.x` and scans the other side forward while the x
/// intervals overlap, testing y/z overlap explicitly. Every reported pair
/// is unique by construction (each pair is discovered exactly once, when
/// the later-starting element is scanned).
pub fn plane_sweep_join(
    left: &[SpatialElement],
    right: &[SpatialElement],
    stats: &mut JoinStats,
) -> Vec<ResultPair> {
    let mut a: Vec<&SpatialElement> = left.iter().collect();
    let mut b: Vec<&SpatialElement> = right.iter().collect();
    a.sort_unstable_by(|p, q| p.mbb.min.x.total_cmp(&q.mbb.min.x));
    b.sort_unstable_by(|p, q| p.mbb.min.x.total_cmp(&q.mbb.min.x));

    let mut out = Vec::new();
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < a.len() && ib < b.len() {
        if a[ia].mbb.min.x <= b[ib].mbb.min.x {
            let cur = a[ia];
            let mut j = ib;
            while j < b.len() && b[j].mbb.min.x <= cur.mbb.max.x {
                stats.element_tests += 1;
                if overlaps_yz(cur, b[j]) {
                    out.push((cur.id, b[j].id));
                }
                j += 1;
            }
            ia += 1;
        } else {
            let cur = b[ib];
            let mut j = ia;
            while j < a.len() && a[j].mbb.min.x <= cur.mbb.max.x {
                stats.element_tests += 1;
                if overlaps_yz(a[j], cur) {
                    out.push((a[j].id, cur.id));
                }
                j += 1;
            }
            ib += 1;
        }
    }
    stats.results += out.len() as u64;
    out
}

/// y/z interval overlap; the sweep already established x overlap.
#[inline]
fn overlaps_yz(a: &SpatialElement, b: &SpatialElement) -> bool {
    a.mbb.min.y <= b.mbb.max.y
        && b.mbb.min.y <= a.mbb.max.y
        && a.mbb.min.z <= b.mbb.max.z
        && b.mbb.min.z <= a.mbb.max.z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{canonicalize, nested_loop_join};
    use tfm_geom::{Aabb, Point3};

    fn elem(id: u64, min: (f64, f64, f64), max: (f64, f64, f64)) -> SpatialElement {
        SpatialElement::new(
            id,
            Aabb::new(
                Point3::new(min.0, min.1, min.2),
                Point3::new(max.0, max.1, max.2),
            ),
        )
    }

    #[test]
    fn matches_nested_loop() {
        let a = vec![
            elem(0, (0.0, 0.0, 0.0), (2.0, 2.0, 2.0)),
            elem(1, (1.0, 1.0, 1.0), (3.0, 3.0, 3.0)),
            elem(2, (10.0, 0.0, 0.0), (11.0, 1.0, 1.0)),
        ];
        let b = vec![
            elem(0, (1.5, 1.5, 1.5), (2.5, 2.5, 2.5)),
            elem(1, (10.5, 0.5, 0.5), (12.0, 2.0, 2.0)),
            elem(2, (-5.0, -5.0, -5.0), (-4.0, -4.0, -4.0)),
        ];
        let mut s1 = JoinStats::default();
        let mut s2 = JoinStats::default();
        assert_eq!(
            canonicalize(plane_sweep_join(&a, &b, &mut s1)),
            canonicalize(nested_loop_join(&a, &b, &mut s2))
        );
    }

    #[test]
    fn touching_x_intervals_count() {
        let a = vec![elem(0, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0))];
        let b = vec![elem(0, (1.0, 0.0, 0.0), (2.0, 1.0, 1.0))];
        let mut s = JoinStats::default();
        assert_eq!(plane_sweep_join(&a, &b, &mut s), vec![(0, 0)]);
    }

    #[test]
    fn x_overlap_but_y_disjoint_is_rejected() {
        let a = vec![elem(0, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0))];
        let b = vec![elem(0, (0.0, 5.0, 0.0), (1.0, 6.0, 1.0))];
        let mut s = JoinStats::default();
        assert!(plane_sweep_join(&a, &b, &mut s).is_empty());
        assert_eq!(s.element_tests, 1);
    }

    #[test]
    fn empty_sides() {
        let a = vec![elem(0, (0.0, 0.0, 0.0), (1.0, 1.0, 1.0))];
        let mut s = JoinStats::default();
        assert!(plane_sweep_join(&a, &[], &mut s).is_empty());
        assert!(plane_sweep_join(&[], &a, &mut s).is_empty());
    }

    #[test]
    fn identical_min_x_handled() {
        // Several elements with exactly equal min.x on both sides.
        let a: Vec<_> = (0..5)
            .map(|i| elem(i, (0.0, i as f64, 0.0), (1.0, i as f64 + 0.5, 1.0)))
            .collect();
        let b: Vec<_> = (0..5)
            .map(|i| elem(i, (0.0, i as f64, 0.0), (1.0, i as f64 + 0.5, 1.0)))
            .collect();
        let mut s1 = JoinStats::default();
        let mut s2 = JoinStats::default();
        assert_eq!(
            canonicalize(plane_sweep_join(&a, &b, &mut s1)),
            canonicalize(nested_loop_join(&a, &b, &mut s2))
        );
    }
}
