//! Property tests: every kernel must produce exactly the nested-loop result
//! set on arbitrary inputs, including pathological ones.

use proptest::prelude::*;
use tfm_geom::{Aabb, Point3, SpatialElement};
use tfm_memjoin::{
    canonicalize, grid_hash_join, nested_loop_join, plane_sweep_join, GridConfig, JoinStats,
};

fn arb_elem(id: u64) -> impl Strategy<Value = SpatialElement> {
    (
        -50.0..50.0f64,
        -50.0..50.0f64,
        -50.0..50.0f64,
        0.0..20.0f64,
        0.0..20.0f64,
        0.0..20.0f64,
    )
        .prop_map(move |(x, y, z, dx, dy, dz)| {
            SpatialElement::new(
                id,
                Aabb::new(Point3::new(x, y, z), Point3::new(x + dx, y + dy, z + dz)),
            )
        })
}

fn arb_dataset(max: usize) -> impl Strategy<Value = Vec<SpatialElement>> {
    prop::collection::vec(any::<()>(), 0..max).prop_flat_map(|v| {
        let n = v.len();
        (0..n as u64).map(arb_elem).collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grid_hash_join_matches_oracle(a in arb_dataset(40), b in arb_dataset(40), n in 1usize..12) {
        let mut s1 = JoinStats::default();
        let mut s2 = JoinStats::default();
        let expected = canonicalize(nested_loop_join(&a, &b, &mut s1));
        let got = canonicalize(grid_hash_join(&a, &b, &GridConfig::fixed(n), &mut s2));
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn grid_hash_join_reports_no_duplicates(a in arb_dataset(30), b in arb_dataset(30), n in 1usize..10) {
        let mut s = JoinStats::default();
        let got = grid_hash_join(&a, &b, &GridConfig::fixed(n), &mut s);
        let total = got.len();
        prop_assert_eq!(canonicalize(got).len(), total, "duplicates reported");
    }

    #[test]
    fn plane_sweep_matches_oracle(a in arb_dataset(40), b in arb_dataset(40)) {
        let mut s1 = JoinStats::default();
        let mut s2 = JoinStats::default();
        let expected = canonicalize(nested_loop_join(&a, &b, &mut s1));
        let got = canonicalize(plane_sweep_join(&a, &b, &mut s2));
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn join_is_symmetric(a in arb_dataset(25), b in arb_dataset(25)) {
        let mut s = JoinStats::default();
        let fwd = canonicalize(grid_hash_join(&a, &b, &GridConfig::default(), &mut s));
        let rev: Vec<_> = grid_hash_join(&b, &a, &GridConfig::default(), &mut s)
            .into_iter()
            .map(|(x, y)| (y, x))
            .collect();
        prop_assert_eq!(fwd, canonicalize(rev));
    }
}
