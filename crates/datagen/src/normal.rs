//! Minimal normal-distribution sampling (Box–Muller).
//!
//! Kept local so the workspace only depends on the sanctioned `rand` crate
//! (no `rand_distr`).

use rand::rngs::StdRng;
use rand::Rng;

/// Draws one sample from N(mean, sigma²) using the Box–Muller transform.
///
/// The second Box–Muller variate is intentionally discarded: determinism
/// and simplicity matter more here than squeezing the RNG.
pub fn sample(rng: &mut StdRng, mean: f64, sigma: f64) -> f64 {
    // u1 in (0, 1] so that ln(u1) is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + sigma * z
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mean_and_spread_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample(&mut rng, 500.0, 220.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 500.0).abs() < 5.0, "mean {mean}");
        assert!((var.sqrt() - 220.0).abs() < 5.0, "sigma {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_is_constant() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(sample(&mut rng, 3.25, 0.0), 3.25);
        }
    }

    #[test]
    fn samples_are_finite() {
        let mut rng = StdRng::seed_from_u64(123);
        for _ in 0..10_000 {
            assert!(sample(&mut rng, 0.0, 1.0).is_finite());
        }
    }
}
