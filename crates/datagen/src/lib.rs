//! Synthetic and neuroscience-surrogate workload generators.
//!
//! Reproduces the datasets of the paper's evaluation (§VII-B):
//!
//! * **Uniform** — elements uniformly distributed over the universe;
//! * **DenseCluster** — ≈700 densely populated clusters, centers drawn from
//!   a normal distribution (µ = 500, σ = 220 per dimension);
//! * **UniformCluster** — 100 clusters spread so widely the result is nearly
//!   uniform (same center distribution);
//! * **MassiveCluster** — 5 densely populated clusters, each with a fixed
//!   number of uniformly distributed elements;
//! * **Neuroscience surrogate** ([`neuro`]) — cylinder-like elongated MBBs
//!   standing in for the rat-brain model's axons/dendrites (Fig. 3), which
//!   is not publicly available (see `DESIGN.md`, substitution 3). Axons are
//!   concentrated near the top of the volume, dendrites near the middle, so
//!   the join faces both contrasting and similar local densities.
//!
//! Besides datasets, [`queries`] generates deterministic **query traces**
//! (window / point-enclosure / distance probes with uniform, clustered or
//! neuro-correlated centers) for the `tfm-serve` serving subsystem, and
//! [`mutations`] generates deterministic **mixed read/write traces**
//! (probes interleaved with inserts/deletes at a configurable blend) for
//! the mutable write path.
//!
//! All generation is deterministic given a [`DatasetSpec`] (seeded
//! `StdRng`), so experiments are exactly repeatable. Spatial boxes have side
//! lengths drawn uniformly from `(0, max_side]` with `max_side = 1.0` by
//! default, in a `[0, 1000]³` universe, exactly as in §VII-B.

#![warn(missing_docs)]

pub mod mutations;
pub mod neuro;
mod normal;
pub mod queries;
mod spec;

pub use mutations::{generate_mixed_trace, queries_of, MixedOp, MixedTraceSpec};
pub use queries::{generate_trace, ProbeMix, QueryKindMix, QueryTraceSpec};
pub use spec::{DatasetSpec, Distribution, DEFAULT_UNIVERSE};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tfm_geom::{Aabb, Point3, SpatialElement};

/// Generates the dataset described by `spec`.
///
/// Element ids are assigned densely in generation order (`0..count`).
pub fn generate(spec: &DatasetSpec) -> Vec<SpatialElement> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let centers = element_centers(spec, &mut rng);
    centers
        .into_iter()
        .enumerate()
        .map(|(id, c)| SpatialElement::new(id as u64, box_at(c, spec, &mut rng)))
        .collect()
}

/// Draws all element center points for `spec`.
fn element_centers(spec: &DatasetSpec, rng: &mut StdRng) -> Vec<Point3> {
    match spec.distribution {
        Distribution::Uniform => (0..spec.count)
            .map(|_| uniform_point(&spec.universe, rng))
            .collect(),
        Distribution::DenseCluster { clusters } => {
            clustered_centers(spec, clusters, dense_cluster_sigma(&spec.universe), rng)
        }
        Distribution::UniformCluster { clusters } => {
            clustered_centers(spec, clusters, wide_cluster_sigma(&spec.universe), rng)
        }
        Distribution::MassiveCluster {
            clusters,
            elements_per_cluster,
        } => massive_cluster_centers(spec, clusters, elements_per_cluster, rng),
    }
}

/// σ for DenseCluster clusters: 0.5 % of the universe extent — clusters are
/// small and dense.
fn dense_cluster_sigma(universe: &Aabb) -> f64 {
    0.005 * mean_extent(universe)
}

/// σ for UniformCluster clusters: 20 % of the universe extent — elements of
/// a cluster spread over a wide area, yielding a nearly uniform distribution
/// (paper §VII-B).
fn wide_cluster_sigma(universe: &Aabb) -> f64 {
    0.20 * mean_extent(universe)
}

fn mean_extent(universe: &Aabb) -> f64 {
    (universe.extent(0) + universe.extent(1) + universe.extent(2)) / 3.0
}

/// Cluster centers from N(µ = mid, σ = 0.22·extent) per dimension, elements
/// normally distributed around their cluster center with the given σ.
fn clustered_centers(
    spec: &DatasetSpec,
    clusters: usize,
    sigma: f64,
    rng: &mut StdRng,
) -> Vec<Point3> {
    assert!(clusters > 0, "cluster count must be positive");
    let cluster_centers: Vec<Point3> = (0..clusters)
        .map(|_| normal_point_in(&spec.universe, rng))
        .collect();
    (0..spec.count)
        .map(|i| {
            let c = cluster_centers[i % clusters];
            let p = Point3::new(
                normal::sample(rng, c.x, sigma),
                normal::sample(rng, c.y, sigma),
                normal::sample(rng, c.z, sigma),
            );
            clamp_into(p, &spec.universe)
        })
        .collect()
}

/// MassiveCluster: `clusters` cube-shaped regions (10 % of the extent wide),
/// each populated with `elements_per_cluster` uniformly distributed
/// elements; any remaining element budget is spread uniformly over the
/// universe as background noise.
fn massive_cluster_centers(
    spec: &DatasetSpec,
    clusters: usize,
    elements_per_cluster: usize,
    rng: &mut StdRng,
) -> Vec<Point3> {
    assert!(clusters > 0, "cluster count must be positive");
    let side = 0.10 * mean_extent(&spec.universe);
    let regions: Vec<Aabb> = (0..clusters)
        .map(|_| {
            let c = normal_point_in(&spec.universe, rng);
            let half = side / 2.0;
            Aabb::new(
                clamp_into(
                    Point3::new(c.x - half, c.y - half, c.z - half),
                    &spec.universe,
                ),
                clamp_into(
                    Point3::new(c.x + half, c.y + half, c.z + half),
                    &spec.universe,
                ),
            )
        })
        .collect();

    let in_clusters = (clusters * elements_per_cluster).min(spec.count);
    let mut out = Vec::with_capacity(spec.count);
    for i in 0..in_clusters {
        let region = &regions[i % clusters];
        out.push(uniform_point(region, rng));
    }
    for _ in in_clusters..spec.count {
        out.push(uniform_point(&spec.universe, rng));
    }
    out
}

/// A point from N(center of universe, σ = 0.22·extent) per dimension,
/// clamped into the universe (paper: µ = 500, σ = 220 in a 1000³ space).
fn normal_point_in(universe: &Aabb, rng: &mut StdRng) -> Point3 {
    let c = universe.center();
    let p = Point3::new(
        normal::sample(rng, c.x, 0.22 * universe.extent(0)),
        normal::sample(rng, c.y, 0.22 * universe.extent(1)),
        normal::sample(rng, c.z, 0.22 * universe.extent(2)),
    );
    clamp_into(p, universe)
}

fn uniform_point(region: &Aabb, rng: &mut StdRng) -> Point3 {
    Point3::new(
        uniform_coord(region.min.x, region.max.x, rng),
        uniform_coord(region.min.y, region.max.y, rng),
        uniform_coord(region.min.z, region.max.z, rng),
    )
}

fn uniform_coord(lo: f64, hi: f64, rng: &mut StdRng) -> f64 {
    if hi > lo {
        rng.random_range(lo..hi)
    } else {
        lo
    }
}

fn clamp_into(p: Point3, universe: &Aabb) -> Point3 {
    Point3::new(
        p.x.clamp(universe.min.x, universe.max.x),
        p.y.clamp(universe.min.y, universe.max.y),
        p.z.clamp(universe.min.z, universe.max.z),
    )
}

/// Builds a box centered at `c` with each side drawn uniformly from
/// `(0, max_side]`, clipped to the universe.
fn box_at(c: Point3, spec: &DatasetSpec, rng: &mut StdRng) -> Aabb {
    let hx = rng.random_range(0.0..spec.max_side) / 2.0;
    let hy = rng.random_range(0.0..spec.max_side) / 2.0;
    let hz = rng.random_range(0.0..spec.max_side) / 2.0;
    let min = clamp_into(Point3::new(c.x - hx, c.y - hy, c.z - hz), &spec.universe);
    let max = clamp_into(Point3::new(c.x + hx, c.y + hy, c.z + hz), &spec.universe);
    Aabb::new(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(count: usize, distribution: Distribution) -> DatasetSpec {
        DatasetSpec {
            count,
            distribution,
            seed: 42,
            ..DatasetSpec::default()
        }
    }

    #[test]
    fn generates_requested_count_with_dense_ids() {
        for dist in [
            Distribution::Uniform,
            Distribution::DenseCluster { clusters: 7 },
            Distribution::UniformCluster { clusters: 3 },
            Distribution::MassiveCluster {
                clusters: 2,
                elements_per_cluster: 100,
            },
        ] {
            let data = generate(&spec(500, dist));
            assert_eq!(data.len(), 500);
            for (i, e) in data.iter().enumerate() {
                assert_eq!(e.id, i as u64);
                assert!(e.mbb.is_valid());
            }
        }
    }

    #[test]
    fn elements_stay_in_universe() {
        let s = spec(2000, Distribution::DenseCluster { clusters: 20 });
        for e in generate(&s) {
            assert!(s.universe.contains(&e.mbb), "{:?} escapes universe", e.mbb);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = spec(300, Distribution::Uniform);
        assert_eq!(generate(&s), generate(&s));
        let mut s2 = s.clone();
        s2.seed = 43;
        assert_ne!(generate(&s), generate(&s2));
    }

    #[test]
    fn box_sides_bounded_by_max_side() {
        let mut s = spec(1000, Distribution::Uniform);
        s.max_side = 2.5;
        for e in generate(&s) {
            for d in 0..3 {
                assert!(e.mbb.extent(d) <= 2.5 + 1e-9);
            }
        }
    }

    #[test]
    fn dense_clusters_are_denser_than_uniform() {
        // Mean nearest-cluster-center spread: dense clusters concentrate mass
        // in tiny balls, so the average pairwise center distance is far below
        // the uniform baseline.
        let n = 1500;
        let dense = generate(&spec(n, Distribution::DenseCluster { clusters: 5 }));
        let unif = generate(&spec(n, Distribution::Uniform));
        let spread = |data: &[SpatialElement]| {
            let mut total = 0.0;
            for w in data.windows(2) {
                total += w[0].mbb.center().distance(&w[1].mbb.center());
            }
            total / (data.len() - 1) as f64
        };
        // Consecutive elements cycle through clusters, so compare sorted-by-
        // cluster chunks instead: group by index mod clusters.
        let mut per_cluster_spread = 0.0;
        for k in 0..5 {
            let members: Vec<_> = dense.iter().skip(k).step_by(5).copied().collect();
            per_cluster_spread += spread(&members);
        }
        per_cluster_spread /= 5.0;
        assert!(
            per_cluster_spread < spread(&unif) / 10.0,
            "dense {per_cluster_spread} vs uniform {}",
            spread(&unif)
        );
    }

    #[test]
    fn massive_cluster_fills_clusters_first() {
        let data = generate(&spec(
            250,
            Distribution::MassiveCluster {
                clusters: 5,
                elements_per_cluster: 50,
            },
        ));
        assert_eq!(data.len(), 250);
        // With exactly clusters*epc == count there is no background noise;
        // each 10%-wide region should hold its elements tightly. Verify by
        // checking that per-cluster bounding boxes are much smaller than the
        // universe.
        for k in 0..5 {
            let members = data.iter().skip(k).step_by(5).map(|e| e.mbb);
            let bb = Aabb::union_all(members);
            assert!(bb.extent(0) <= 0.11 * 1000.0 + 1.0);
        }
    }
}
