//! Neuroscience-surrogate datasets.
//!
//! The paper's real workload is a rat-brain model of 450 M cylinders from
//! the Human Brain Project (§II-B, §VII-B): axons and dendrites are joined
//! to place synapses wherever they intersect. That model is not publicly
//! available, so this module generates a *surrogate* with the properties
//! the paper describes and Fig. 3 shows:
//!
//! * elements are elongated, thin, cylinder-like MBBs (a few µm long,
//!   fractions of a µm wide) — we approximate cylinders by their MBBs
//!   exactly as the paper does;
//! * axons (60 % of the combined dataset) are predominantly located at the
//!   *top* of the volume — their z-coordinates are skewed upward;
//! * dendrites (40 %) occupy the same overall extent but concentrate in the
//!   middle/bottom, so the join must handle areas of contrasting *and*
//!   similar density at once — the situation TRANSFORMERS targets.

use crate::{normal, DEFAULT_UNIVERSE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tfm_geom::{Aabb, Point3, SpatialElement};

/// Fraction of the combined dataset that is axons (paper §II-B: 60 %).
pub const AXON_FRACTION: f64 = 0.6;

/// Generates `count` axon cylinder MBBs.
///
/// Axon segment centers are skewed towards the top of the volume
/// (z ~ N(0.78·extent, 0.12·extent), clamped).
pub fn axons(count: usize, seed: u64) -> Vec<SpatialElement> {
    cylinders(count, seed, 0.78, 0.12)
}

/// Generates `count` dendrite cylinder MBBs.
///
/// Dendrite centers concentrate lower (z ~ N(0.42·extent, 0.22·extent)),
/// overlapping the axon band around the upper-middle of the volume.
pub fn dendrites(count: usize, seed: u64) -> Vec<SpatialElement> {
    cylinders(count, seed, 0.42, 0.22)
}

/// Generates a `(axons, dendrites)` pair splitting `total` 60/40 as in the
/// paper's combined dataset.
pub fn axon_dendrite_pair(total: usize, seed: u64) -> (Vec<SpatialElement>, Vec<SpatialElement>) {
    let n_axons = (total as f64 * AXON_FRACTION).round() as usize;
    (
        axons(n_axons, seed),
        dendrites(total - n_axons, seed ^ 0x9e3779b97f4a7c15),
    )
}

fn cylinders(count: usize, seed: u64, z_mean_frac: f64, z_sigma_frac: f64) -> Vec<SpatialElement> {
    let universe = DEFAULT_UNIVERSE;
    let mut rng = StdRng::seed_from_u64(seed);
    let zext = universe.extent(2);
    (0..count)
        .map(|id| {
            // Branch structure: segment chains share lateral locality by
            // sampling a branch anchor every 16 segments.
            let cx = rng.random_range(universe.min.x..universe.max.x);
            let cy = rng.random_range(universe.min.y..universe.max.y);
            let cz = normal::sample(
                &mut rng,
                universe.min.z + z_mean_frac * zext,
                z_sigma_frac * zext,
            )
            .clamp(universe.min.z, universe.max.z);

            // Cylinder-like: one long axis (1..6 units), two thin axes
            // (0.1..0.5 units). The long axis direction varies.
            let long = rng.random_range(1.0..6.0f64);
            let thin1 = rng.random_range(0.1..0.5f64);
            let thin2 = rng.random_range(0.1..0.5f64);
            let axis = rng.random_range(0..3usize);
            let mut half = [
                thin1 / 2.0,
                thin2 / 2.0,
                rng.random_range(0.1..0.5f64) / 2.0,
            ];
            half[axis] = long / 2.0;

            let min = Point3::new(
                (cx - half[0]).max(universe.min.x),
                (cy - half[1]).max(universe.min.y),
                (cz - half[2]).max(universe.min.z),
            );
            let max = Point3::new(
                (cx + half[0]).min(universe.max.x),
                (cy + half[1]).min(universe.max.y),
                (cz + half[2]).min(universe.max.z),
            );
            SpatialElement::new(id as u64, Aabb::new(min, max))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_split_is_60_40() {
        let (a, d) = axon_dendrite_pair(1000, 1);
        assert_eq!(a.len(), 600);
        assert_eq!(d.len(), 400);
    }

    #[test]
    fn axons_sit_higher_than_dendrites() {
        let (a, d) = axon_dendrite_pair(4000, 2);
        let mean_z =
            |v: &[SpatialElement]| v.iter().map(|e| e.mbb.center().z).sum::<f64>() / v.len() as f64;
        assert!(
            mean_z(&a) > mean_z(&d) + 100.0,
            "axons z {} vs dendrites z {}",
            mean_z(&a),
            mean_z(&d)
        );
    }

    #[test]
    fn cylinders_are_elongated() {
        for e in axons(500, 3) {
            let mut exts = [e.mbb.extent(0), e.mbb.extent(1), e.mbb.extent(2)];
            exts.sort_by(f64::total_cmp);
            // Longest axis noticeably longer than the shortest, unless the
            // box was clipped at the universe boundary.
            if e.mbb.min.z > 0.0 && e.mbb.max.z < 1000.0 {
                assert!(exts[2] >= exts[0], "{exts:?}");
                assert!(exts[2] <= 6.0 + 1e-9);
            }
        }
    }

    #[test]
    fn all_inside_universe_and_valid() {
        let (a, d) = axon_dendrite_pair(2000, 4);
        for e in a.iter().chain(d.iter()) {
            assert!(e.mbb.is_valid());
            assert!(DEFAULT_UNIVERSE.contains(&e.mbb));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(axons(100, 5), axons(100, 5));
        assert_ne!(axons(100, 5), axons(100, 6));
    }
}
