//! Mixed read/write trace generation for the mutable serving path.
//!
//! The serving subsystem gained a write path (`tfm-wal` + the mutable
//! TRANSFORMERS overlay), so workloads need *mixed* traces: spatial probes
//! interleaved with inserts and deletes, in one deterministic arrival
//! order. A [`MixedTraceSpec`] describes the blend — the write fraction,
//! the insert/delete split within writes, the probe distribution of the
//! reads and the shape of inserted elements — and [`generate_mixed_trace`]
//! expands it into a `Vec<MixedOp>`, exactly as repeatable as dataset and
//! query-trace generation.
//!
//! Design points:
//!
//! * **Deletes always target live ids.** The generator tracks the live id
//!   set as it goes (base dataset ids, plus its own inserts, minus its own
//!   deletes), so a generated trace never asks the index to delete an id
//!   that cannot exist at that point of the replay. With no live ids left
//!   a would-be delete degrades to an insert.
//! * **Inserts get fresh ids** above the base dataset's maximum, assigned
//!   densely in generation order, so a trace replayed against the matching
//!   dataset never collides with an existing id.
//! * **Reads feed the serve trace format.** [`queries_of`] projects the
//!   read-only sub-trace out as a plain `Vec<SpatialQuery>` — the exact
//!   input `tfm_serve::serve_trace` takes — so read-equivalence checks can
//!   replay the same probes against a mutated and a rebuilt index.

use crate::queries::{generate_trace, QueryTraceSpec};
use crate::{box_at, element_centers, DatasetSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tfm_geom::{SpatialElement, SpatialQuery};

/// One operation of a mixed read/write trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MixedOp {
    /// A spatial probe (window / point / distance) — the read side.
    Query(SpatialQuery),
    /// Insert a fresh element (id unused by the base dataset or any
    /// earlier insert of the trace).
    Insert(SpatialElement),
    /// Delete a live id (guaranteed live at this point of the replay).
    Delete(u64),
}

/// Full description of a mixed read/write trace; generation is a pure
/// function of this value plus the base dataset's live ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedTraceSpec {
    /// Total operations (reads + writes) in the trace.
    pub ops: usize,
    /// Fraction of operations that are writes, in permille (0..=1000).
    pub write_permille: u32,
    /// Fraction of *writes* that are inserts, in permille (0..=1000); the
    /// remainder are deletes.
    pub insert_permille: u32,
    /// Probe distribution of the read operations ([`QueryTraceSpec::count`]
    /// is ignored — the blend decides how many reads the trace holds).
    pub reads: QueryTraceSpec,
    /// Shape of inserted elements: spatial distribution, universe and
    /// `max_side` ([`DatasetSpec::count`] is ignored, [`DatasetSpec::seed`]
    /// seeds the insert stream).
    pub inserts: DatasetSpec,
    /// Seed of the op-kind / delete-victim stream; same spec and live ids
    /// ⇒ same trace.
    pub seed: u64,
}

impl Default for MixedTraceSpec {
    /// A read-heavy default: 20 % writes, 70 % of them inserts.
    fn default() -> Self {
        Self {
            ops: 1000,
            write_permille: 200,
            insert_permille: 700,
            reads: QueryTraceSpec::default(),
            inserts: DatasetSpec::default(),
            seed: 0,
        }
    }
}

impl MixedTraceSpec {
    /// A trace of `ops` operations with the given write fraction
    /// (permille) and seed, uniform probes and uniform inserts.
    pub fn uniform(ops: usize, write_permille: u32, seed: u64) -> Self {
        Self {
            ops,
            write_permille,
            seed,
            reads: QueryTraceSpec::uniform(0, seed ^ 0x9E37_79B9),
            inserts: DatasetSpec {
                count: 0,
                seed: seed ^ 0x7F4A_7C15,
                ..DatasetSpec::default()
            },
            ..Self::default()
        }
    }
}

/// Expands `spec` into its mixed trace, taking `live_ids` as the set of
/// ids alive before the first operation (the base dataset's ids).
///
/// Inserted ids start at `max(live_ids) + 1` and grow densely. The trace
/// is a pure function of `(spec, live_ids)`.
pub fn generate_mixed_trace(spec: &MixedTraceSpec, live_ids: &[u64]) -> Vec<MixedOp> {
    assert!(spec.write_permille <= 1000, "write_permille is 0..=1000");
    assert!(spec.insert_permille <= 1000, "insert_permille is 0..=1000");
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Pre-draw the read stream: probes come from the standard query
    // generator so mixed traces share the probe distributions (and the
    // determinism guarantees) of pure serve traces.
    let reads = generate_trace(&QueryTraceSpec {
        count: spec.ops,
        ..spec.reads.clone()
    });
    let mut next_read = 0usize;

    // Pre-draw the insert stream the same way datasets are drawn: centers
    // from the spec's spatial distribution, boxes via `box_at`. Ids are
    // assigned densely above the base dataset's maximum.
    let insert_spec = DatasetSpec {
        count: spec.ops,
        ..spec.inserts.clone()
    };
    let mut insert_rng = StdRng::seed_from_u64(insert_spec.seed);
    let insert_centers = element_centers(&insert_spec, &mut insert_rng);
    let mut next_insert = 0usize;
    let mut next_id = live_ids.iter().copied().max().map_or(0, |m| m + 1);

    // The live set as a vector for O(1) random victim picks; deletes
    // swap-remove their victim so it can't be picked twice.
    let mut live: Vec<u64> = live_ids.to_vec();

    (0..spec.ops)
        .map(|_| {
            let is_write = rng.random_range(0..1000u32) < spec.write_permille;
            if !is_write {
                let q = reads[next_read];
                next_read += 1;
                return MixedOp::Query(q);
            }
            let is_insert = rng.random_range(0..1000u32) < spec.insert_permille || live.is_empty();
            if is_insert {
                let c = insert_centers[next_insert];
                next_insert += 1;
                let e = SpatialElement::new(next_id, box_at(c, &insert_spec, &mut insert_rng));
                next_id += 1;
                live.push(e.id);
                MixedOp::Insert(e)
            } else {
                let victim = live.swap_remove(rng.random_range(0..live.len()));
                MixedOp::Delete(victim)
            }
        })
        .collect()
}

/// Projects the read-only sub-trace out of a mixed trace, in arrival
/// order — the exact input shape `tfm_serve::serve_trace` consumes.
pub fn queries_of(trace: &[MixedOp]) -> Vec<SpatialQuery> {
    trace
        .iter()
        .filter_map(|op| match op {
            MixedOp::Query(q) => Some(*q),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn base_ids(n: u64) -> Vec<u64> {
        (0..n).collect()
    }

    #[test]
    fn mixed_trace_is_deterministic() {
        let spec = MixedTraceSpec::uniform(800, 300, 7);
        let ids = base_ids(500);
        let a = generate_mixed_trace(&spec, &ids);
        let b = generate_mixed_trace(&spec, &ids);
        assert_eq!(a.len(), 800);
        assert_eq!(a, b);
        let mut other = spec.clone();
        other.seed = 8;
        assert_ne!(a, generate_mixed_trace(&other, &ids));
    }

    #[test]
    fn write_fraction_is_respected() {
        for permille in [0, 200, 500, 1000] {
            let spec = MixedTraceSpec::uniform(4000, permille, 11);
            let trace = generate_mixed_trace(&spec, &base_ids(1000));
            let writes = trace
                .iter()
                .filter(|op| !matches!(op, MixedOp::Query(_)))
                .count();
            let expected = 4000 * permille as usize / 1000;
            assert!(
                writes.abs_diff(expected) <= 120,
                "permille {permille}: {writes} writes vs expected {expected}"
            );
        }
    }

    #[test]
    fn insert_delete_split_is_respected() {
        let spec = MixedTraceSpec {
            insert_permille: 250,
            ..MixedTraceSpec::uniform(4000, 1000, 13)
        };
        let trace = generate_mixed_trace(&spec, &base_ids(10_000));
        let inserts = trace
            .iter()
            .filter(|op| matches!(op, MixedOp::Insert(_)))
            .count();
        let deletes = trace
            .iter()
            .filter(|op| matches!(op, MixedOp::Delete(_)))
            .count();
        assert_eq!(inserts + deletes, 4000);
        assert!(
            inserts.abs_diff(1000) <= 120,
            "{inserts} inserts vs expected 1000"
        );
    }

    #[test]
    fn deletes_only_target_live_ids_and_inserts_are_fresh() {
        let spec = MixedTraceSpec {
            insert_permille: 500,
            ..MixedTraceSpec::uniform(3000, 600, 17)
        };
        let mut live: BTreeSet<u64> = (0..200).collect();
        for op in generate_mixed_trace(&spec, &base_ids(200)) {
            match op {
                MixedOp::Query(_) => {}
                MixedOp::Insert(e) => {
                    assert!(live.insert(e.id), "insert of live id {}", e.id);
                    assert!(e.mbb.is_valid());
                }
                MixedOp::Delete(id) => {
                    assert!(live.remove(&id), "delete of dead id {id}");
                }
            }
        }
    }

    #[test]
    fn deletes_degrade_to_inserts_when_nothing_is_live() {
        // All-write, all-delete blend against an empty base: every op must
        // still be valid, so the generator flips to inserts.
        let spec = MixedTraceSpec {
            insert_permille: 0,
            ..MixedTraceSpec::uniform(50, 1000, 19)
        };
        let trace = generate_mixed_trace(&spec, &[]);
        // The first op has nothing to delete; after that inserts populate
        // the live set, so genuine deletes appear.
        assert!(matches!(trace[0], MixedOp::Insert(_)));
        assert!(trace.iter().any(|op| matches!(op, MixedOp::Delete(_))));
    }

    #[test]
    fn queries_project_out_in_arrival_order() {
        let spec = MixedTraceSpec::uniform(600, 400, 23);
        let trace = generate_mixed_trace(&spec, &base_ids(100));
        let qs = queries_of(&trace);
        assert_eq!(
            qs.len(),
            trace
                .iter()
                .filter(|op| matches!(op, MixedOp::Query(_)))
                .count()
        );
        let mut it = qs.iter();
        for op in &trace {
            if let MixedOp::Query(q) = op {
                assert_eq!(it.next(), Some(q));
            }
        }
    }
}
