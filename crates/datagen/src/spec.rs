//! Dataset specifications.

use serde::{Deserialize, Serialize};
use tfm_geom::{Aabb, Point3};

/// The `[0, 1000]³` universe of the paper's synthetic datasets (§VII-B).
pub const DEFAULT_UNIVERSE: Aabb = Aabb {
    min: Point3::new(0.0, 0.0, 0.0),
    max: Point3::new(1000.0, 1000.0, 1000.0),
};

/// The spatial distribution of a synthetic dataset (paper §VII-B, Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Uniformly distributed elements.
    Uniform,
    /// Many small, densely populated clusters (paper default: ≈700).
    DenseCluster {
        /// Number of clusters.
        clusters: usize,
    },
    /// Few clusters whose elements spread so widely the overall distribution
    /// is nearly uniform (paper default: 100).
    UniformCluster {
        /// Number of clusters.
        clusters: usize,
    },
    /// A handful of box-shaped regions, each packed with a fixed number of
    /// uniform elements (paper default: 5 × 100 K).
    MassiveCluster {
        /// Number of cluster regions.
        clusters: usize,
        /// Elements placed in each region; any remaining budget becomes
        /// uniform background noise.
        elements_per_cluster: usize,
    },
}

impl Distribution {
    /// The paper's DenseCluster configuration (≈700 clusters).
    pub fn dense_cluster_default() -> Self {
        Distribution::DenseCluster { clusters: 700 }
    }

    /// The paper's UniformCluster configuration (100 wide clusters).
    pub fn uniform_cluster_default() -> Self {
        Distribution::UniformCluster { clusters: 100 }
    }

    /// The paper's MassiveCluster configuration scaled by `count`: 5
    /// clusters sharing the element budget equally.
    pub fn massive_cluster_for(count: usize) -> Self {
        Distribution::MassiveCluster {
            clusters: 5,
            elements_per_cluster: count / 5,
        }
    }
}

/// Full description of a synthetic dataset; generation is a pure function
/// of this value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Number of elements to generate.
    pub count: usize,
    /// Spatial distribution of element centers.
    pub distribution: Distribution,
    /// The universe elements are confined to.
    pub universe: Aabb,
    /// Box side lengths are drawn uniformly from `(0, max_side]`.
    pub max_side: f64,
    /// RNG seed; same spec ⇒ same dataset.
    pub seed: u64,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        Self {
            count: 10_000,
            distribution: Distribution::Uniform,
            universe: DEFAULT_UNIVERSE,
            max_side: 1.0,
            seed: 0,
        }
    }
}

impl DatasetSpec {
    /// Uniform dataset of `count` elements with the given seed.
    pub fn uniform(count: usize, seed: u64) -> Self {
        Self {
            count,
            seed,
            ..Self::default()
        }
    }

    /// Dataset of `count` elements with a given distribution and seed.
    pub fn with_distribution(count: usize, distribution: Distribution, seed: u64) -> Self {
        Self {
            count,
            distribution,
            seed,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_universe_is_paper_cube() {
        assert_eq!(DEFAULT_UNIVERSE.extent(0), 1000.0);
        assert_eq!(DEFAULT_UNIVERSE.extent(1), 1000.0);
        assert_eq!(DEFAULT_UNIVERSE.extent(2), 1000.0);
    }

    #[test]
    fn massive_cluster_splits_budget() {
        let d = Distribution::massive_cluster_for(1000);
        assert_eq!(
            d,
            Distribution::MassiveCluster {
                clusters: 5,
                elements_per_cluster: 200
            }
        );
    }

    #[test]
    fn builders_set_fields() {
        let s = DatasetSpec::uniform(55, 9);
        assert_eq!(s.count, 55);
        assert_eq!(s.seed, 9);
        assert_eq!(s.distribution, Distribution::Uniform);
    }
}
