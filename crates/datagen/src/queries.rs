//! Query-trace generation for the serving subsystem (`tfm-serve`).
//!
//! The paper's motivation (§I–II) is neuroscience analyses issuing massive
//! numbers of spatial probes against the built structures. This module
//! turns that into a reproducible workload: a [`QueryTraceSpec`] describes
//! a mix of window / point-enclosure / distance queries and a spatial
//! distribution of probe centers, and [`generate_trace`] expands it into a
//! deterministic `Vec<SpatialQuery>` — same spec, same trace, exactly like
//! dataset generation.
//!
//! Three probe-center distributions:
//!
//! * **Uniform** — probes spread over the whole universe (worst case for
//!   locality: consecutive probes land far apart);
//! * **Clustered** — probes concentrate around a few analysis hot spots
//!   (a scientist inspecting one region issues many nearby probes);
//! * **NeuroCorrelated** — probe centers follow the surrogate axon band
//!   (z skewed towards the top of the volume, like synapse-site probes
//!   against the rat-brain model of §II-B).

use crate::{normal, DEFAULT_UNIVERSE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tfm_geom::{Aabb, Point3, SpatialQuery};

/// Spatial distribution of probe centers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProbeMix {
    /// Probe centers uniform over the universe.
    Uniform,
    /// Probe centers normally distributed around `clusters` hot spots.
    Clustered {
        /// Number of analysis hot spots.
        clusters: usize,
    },
    /// Probe centers follow the neuroscience surrogate's axon band
    /// (z ~ N(0.78·extent, 0.12·extent), x/y uniform — see
    /// [`crate::neuro`]).
    NeuroCorrelated,
}

/// Relative weights of the three query kinds in a trace.
///
/// Kinds are drawn per query with probability proportional to the weight;
/// a zero weight removes the kind entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryKindMix {
    /// Weight of window (range) queries.
    pub window: u32,
    /// Weight of point-enclosure queries.
    pub point: u32,
    /// Weight of distance (ε-ball) queries.
    pub distance: u32,
}

impl Default for QueryKindMix {
    /// The default mix leans on windows (the dominant analysis probe) with
    /// point and distance probes mixed in.
    fn default() -> Self {
        Self {
            window: 6,
            point: 2,
            distance: 2,
        }
    }
}

impl QueryKindMix {
    /// Only window queries.
    pub fn windows_only() -> Self {
        Self {
            window: 1,
            point: 0,
            distance: 0,
        }
    }
}

/// Full description of a query trace; generation is a pure function of
/// this value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTraceSpec {
    /// Number of queries in the trace.
    pub count: usize,
    /// Spatial distribution of probe centers.
    pub mix: ProbeMix,
    /// Relative frequency of the query kinds.
    pub kinds: QueryKindMix,
    /// Universe probe centers are confined to.
    pub universe: Aabb,
    /// Window side lengths are drawn uniformly from `(0, max_window_side]`.
    pub max_window_side: f64,
    /// Distance-query radii are drawn uniformly from `(0, max_eps]`.
    pub max_eps: f64,
    /// RNG seed; same spec ⇒ same trace.
    pub seed: u64,
}

impl Default for QueryTraceSpec {
    fn default() -> Self {
        Self {
            count: 1000,
            mix: ProbeMix::Uniform,
            kinds: QueryKindMix::default(),
            universe: DEFAULT_UNIVERSE,
            max_window_side: 20.0,
            max_eps: 5.0,
            seed: 0,
        }
    }
}

impl QueryTraceSpec {
    /// Uniform probe trace of `count` queries with the given seed.
    pub fn uniform(count: usize, seed: u64) -> Self {
        Self {
            count,
            seed,
            ..Self::default()
        }
    }

    /// Trace of `count` queries with the given probe-center mix and seed.
    pub fn with_mix(count: usize, mix: ProbeMix, seed: u64) -> Self {
        Self {
            count,
            mix,
            seed,
            ..Self::default()
        }
    }
}

/// Expands `spec` into its query trace.
pub fn generate_trace(spec: &QueryTraceSpec) -> Vec<SpatialQuery> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let u = &spec.universe;
    let hot_spots: Vec<Point3> = match spec.mix {
        ProbeMix::Clustered { clusters } => {
            assert!(clusters > 0, "cluster count must be positive");
            (0..clusters)
                .map(|_| {
                    let c = u.center();
                    clamp(
                        Point3::new(
                            normal::sample(&mut rng, c.x, 0.22 * u.extent(0)),
                            normal::sample(&mut rng, c.y, 0.22 * u.extent(1)),
                            normal::sample(&mut rng, c.z, 0.22 * u.extent(2)),
                        ),
                        u,
                    )
                })
                .collect()
        }
        _ => Vec::new(),
    };
    let total_weight = spec.kinds.window + spec.kinds.point + spec.kinds.distance;
    assert!(
        total_weight > 0,
        "query kind mix must have a positive weight"
    );

    (0..spec.count)
        .map(|i| {
            let center = match spec.mix {
                ProbeMix::Uniform => Point3::new(
                    uniform(u.min.x, u.max.x, &mut rng),
                    uniform(u.min.y, u.max.y, &mut rng),
                    uniform(u.min.z, u.max.z, &mut rng),
                ),
                ProbeMix::Clustered { .. } => {
                    let spot = hot_spots[i % hot_spots.len()];
                    // Probes spread a few percent of the extent around
                    // their hot spot — tight enough that batch-mates share
                    // pages, wide enough that every node gets some traffic.
                    let sigma = 0.03 * ((u.extent(0) + u.extent(1) + u.extent(2)) / 3.0);
                    clamp(
                        Point3::new(
                            normal::sample(&mut rng, spot.x, sigma),
                            normal::sample(&mut rng, spot.y, sigma),
                            normal::sample(&mut rng, spot.z, sigma),
                        ),
                        u,
                    )
                }
                ProbeMix::NeuroCorrelated => clamp(
                    Point3::new(
                        uniform(u.min.x, u.max.x, &mut rng),
                        uniform(u.min.y, u.max.y, &mut rng),
                        normal::sample(&mut rng, u.min.z + 0.78 * u.extent(2), 0.12 * u.extent(2)),
                    ),
                    u,
                ),
            };
            let pick = rng.random_range(0..total_weight);
            if pick < spec.kinds.window {
                let hx = uniform(0.0, spec.max_window_side, &mut rng) / 2.0;
                let hy = uniform(0.0, spec.max_window_side, &mut rng) / 2.0;
                let hz = uniform(0.0, spec.max_window_side, &mut rng) / 2.0;
                SpatialQuery::Window(Aabb::new(
                    clamp(Point3::new(center.x - hx, center.y - hy, center.z - hz), u),
                    clamp(Point3::new(center.x + hx, center.y + hy, center.z + hz), u),
                ))
            } else if pick < spec.kinds.window + spec.kinds.point {
                SpatialQuery::Point(center)
            } else {
                SpatialQuery::Distance {
                    center,
                    eps: uniform(0.0, spec.max_eps, &mut rng).max(1e-9),
                }
            }
        })
        .collect()
}

fn uniform(lo: f64, hi: f64, rng: &mut StdRng) -> f64 {
    if hi > lo {
        rng.random_range(lo..hi)
    } else {
        lo
    }
}

fn clamp(p: Point3, u: &Aabb) -> Point3 {
    Point3::new(
        p.x.clamp(u.min.x, u.max.x),
        p.y.clamp(u.min.y, u.max.y),
        p.z.clamp(u.min.z, u.max.z),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_sized() {
        let spec = QueryTraceSpec::uniform(500, 9);
        let a = generate_trace(&spec);
        let b = generate_trace(&spec);
        assert_eq!(a.len(), 500);
        assert_eq!(a, b);
        let mut other = spec.clone();
        other.seed = 10;
        assert_ne!(a, generate_trace(&other));
    }

    #[test]
    fn probes_stay_in_universe() {
        for mix in [
            ProbeMix::Uniform,
            ProbeMix::Clustered { clusters: 4 },
            ProbeMix::NeuroCorrelated,
        ] {
            let trace = generate_trace(&QueryTraceSpec::with_mix(800, mix, 3));
            for q in &trace {
                let c = q.center();
                assert!(
                    DEFAULT_UNIVERSE.contains_point(&c),
                    "{mix:?}: center {c:?} escapes"
                );
                if let SpatialQuery::Window(w) = q {
                    assert!(DEFAULT_UNIVERSE.contains(w));
                }
            }
        }
    }

    #[test]
    fn kind_mix_is_respected() {
        let spec = QueryTraceSpec {
            kinds: QueryKindMix {
                window: 1,
                point: 1,
                distance: 1,
            },
            count: 3000,
            ..QueryTraceSpec::default()
        };
        let trace = generate_trace(&spec);
        let windows = trace
            .iter()
            .filter(|q| matches!(q, SpatialQuery::Window(_)))
            .count();
        let points = trace
            .iter()
            .filter(|q| matches!(q, SpatialQuery::Point(_)))
            .count();
        let dists = trace
            .iter()
            .filter(|q| matches!(q, SpatialQuery::Distance { .. }))
            .count();
        assert_eq!(windows + points + dists, 3000);
        for (label, n) in [("window", windows), ("point", points), ("distance", dists)] {
            assert!(
                (700..1300).contains(&n),
                "{label} count {n} far from the 1/3 share"
            );
        }
        let only = generate_trace(&QueryTraceSpec {
            kinds: QueryKindMix::windows_only(),
            count: 100,
            ..QueryTraceSpec::default()
        });
        assert!(only.iter().all(|q| matches!(q, SpatialQuery::Window(_))));
    }

    #[test]
    fn clustered_probes_concentrate() {
        let clustered = generate_trace(&QueryTraceSpec::with_mix(
            2000,
            ProbeMix::Clustered { clusters: 3 },
            7,
        ));
        let uniform = generate_trace(&QueryTraceSpec::uniform(2000, 7));
        // Mean distance of consecutive same-cluster probes is far below the
        // uniform trace's (probes cycle through clusters, so stride 3).
        let spread = |qs: &[SpatialQuery], stride: usize| {
            let mut total = 0.0;
            let mut n = 0;
            for w in qs.windows(stride + 1) {
                total += w[0].center().distance(&w[stride].center());
                n += 1;
            }
            total / n as f64
        };
        assert!(
            spread(&clustered, 3) < spread(&uniform, 1) / 3.0,
            "clustered {} vs uniform {}",
            spread(&clustered, 3),
            spread(&uniform, 1)
        );
    }

    #[test]
    fn neuro_probes_sit_high() {
        let trace = generate_trace(&QueryTraceSpec::with_mix(
            2000,
            ProbeMix::NeuroCorrelated,
            5,
        ));
        let mean_z = trace.iter().map(|q| q.center().z).sum::<f64>() / trace.len() as f64;
        assert!(mean_z > 650.0, "axon-band probes should sit high: {mean_z}");
    }
}
