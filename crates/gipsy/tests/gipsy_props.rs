//! Property tests for GIPSY: oracle equivalence regardless of which side
//! is sparse and of index geometry.

use proptest::prelude::*;
use tfm_geom::{Aabb, Point3, SpatialElement};
use tfm_gipsy::{gipsy_join, GipsyConfig, GipsyStats, SparseFile};
use tfm_memjoin::{canonicalize, nested_loop_join, JoinStats};
use tfm_storage::Disk;
use transformers::{IndexConfig, TransformersIndex};

fn arb_elems(max: usize) -> impl Strategy<Value = Vec<SpatialElement>> {
    prop::collection::vec(
        (
            0.0..100.0f64,
            0.0..100.0f64,
            0.0..100.0f64,
            0.0..8.0f64,
            0.0..8.0f64,
            0.0..8.0f64,
        ),
        0..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(id, (x, y, z, dx, dy, dz))| {
                SpatialElement::new(
                    id as u64,
                    Aabb::new(Point3::new(x, y, z), Point3::new(x + dx, y + dy, z + dz)),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matches_oracle(
        sparse in arb_elems(40),
        dense in arb_elems(120),
        unit_cap in 2usize..20,
        node_cap in 2usize..8,
    ) {
        let sparse_disk = Disk::in_memory(2048);
        let dense_disk = Disk::in_memory(2048);
        let sf = SparseFile::write(&sparse_disk, sparse.clone());
        let idx_cfg = IndexConfig {
            unit_capacity: Some(unit_cap),
            node_capacity: Some(node_cap),
            ..IndexConfig::default()
        };
        let di = TransformersIndex::build(&dense_disk, dense.clone(), &idx_cfg);
        let mut stats = GipsyStats::default();
        let pairs = gipsy_join(&sparse_disk, &sf, &dense_disk, &di, &GipsyConfig::default(), &mut stats);
        let total = pairs.len();
        let got = canonicalize(pairs);
        prop_assert_eq!(got.len(), total, "duplicates emitted");
        let mut s = JoinStats::default();
        prop_assert_eq!(got, canonicalize(nested_loop_join(&sparse, &dense, &mut s)));
    }

    #[test]
    fn tiny_walk_patience_is_still_correct(
        sparse in arb_elems(30),
        dense in arb_elems(90),
        patience in 0usize..3,
    ) {
        let sparse_disk = Disk::in_memory(1024);
        let dense_disk = Disk::in_memory(1024);
        let sf = SparseFile::write(&sparse_disk, sparse.clone());
        let idx_cfg = IndexConfig { unit_capacity: Some(4), node_capacity: Some(3), ..IndexConfig::default() };
        let di = TransformersIndex::build(&dense_disk, dense.clone(), &idx_cfg);
        let cfg = GipsyConfig { walk_patience: patience, ..GipsyConfig::default() };
        let mut stats = GipsyStats::default();
        let got = canonicalize(gipsy_join(&sparse_disk, &sf, &dense_disk, &di, &cfg, &mut stats));
        let mut s = JoinStats::default();
        prop_assert_eq!(got, canonicalize(nested_loop_join(&sparse, &dense, &mut s)));
    }
}
