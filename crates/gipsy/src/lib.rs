//! GIPSY: joining spatial datasets with contrasting density
//! (Pavlovic et al., SSDBM '13) — baseline of the paper's evaluation.
//!
//! GIPSY partitions the *dense* dataset in a data-oriented way with
//! connectivity information and then iterates the *sparse* dataset element
//! by element, using each sparse element to direct a walk/crawl through
//! the dense dataset and retrieve only the pages it can intersect.
//!
//! Two design choices distinguish it from TRANSFORMERS (paper §II-A,
//! §VIII-A) and are faithfully reproduced here:
//!
//! * **static roles** — the caller must declare which dataset is sparse;
//!   GIPSY cannot adapt when the local density relationship flips;
//! * **single granularity** — the walk is directed at the *spatial element*
//!   level, its only level; joining similar-density datasets drowns in
//!   per-element walk overhead ("GIPSY's performance suffers from the
//!   overhead of the directed walk on the spatial element level").
//!
//! The dense side reuses [`TransformersIndex`] (same partitioning +
//! connectivity the paper's GIPSY uses); the sparse side is stored as a
//! spatially-ordered sequence of element pages read sequentially. Both
//! sides bulk-load through the shared [`IndexBuildPipeline`]
//! ([`SparseFile::write_with`] for the sparse file), so GIPSY's build
//! parallelizes exactly like the TRANSFORMERS build.

#![warn(missing_docs)]

use tfm_geom::SpatialElement;
use tfm_memjoin::{JoinStats, ResultPair};
use tfm_storage::{CacheHandle, Disk, ElementPageCodec, PageId, PageReads, SharedPageCache};
use transformers::{IndexBuildPipeline, TransformersIndex};

/// Configuration of a GIPSY join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GipsyConfig {
    /// Page-cache pages for the dense dataset's element pages.
    pub pool_pages: usize,
    /// Walk patience (same semantics as TRANSFORMERS').
    pub walk_patience: usize,
    /// Read the dense side through a [`SharedPageCache`] (zero-copy pin
    /// guards + decoded tier) instead of a private pool. Results are
    /// identical either way; this is the same `--private-pool` ablation
    /// switch the TRANSFORMERS join has.
    pub shared_cache: bool,
}

impl Default for GipsyConfig {
    fn default() -> Self {
        Self {
            pool_pages: tfm_storage::DEFAULT_POOL_PAGES,
            walk_patience: 64,
            shared_cache: true,
        }
    }
}

/// Counters of a GIPSY join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GipsyStats {
    /// Descriptor-MBB comparisons (walk + crawl + page filters).
    pub metadata_tests: u64,
    /// Element-level counters.
    pub mem: JoinStats,
    /// Walk expansion steps (the per-element directed-walk overhead).
    pub walk_steps: u64,
    /// Crawl expansion steps.
    pub crawl_steps: u64,
    /// Walks that fell back to the exhaustive metadata scan.
    pub walk_fallbacks: u64,
}

/// The sparse dataset stored as a spatially-ordered run of element pages.
#[derive(Debug)]
pub struct SparseFile {
    pages: Vec<PageId>,
    len: usize,
}

impl SparseFile {
    /// Writes `elements` to `disk` in STR order (spatially adjacent
    /// elements share pages and consecutive pages are adjacent, so the
    /// per-element walk moves smoothly through the dense dataset).
    pub fn write(disk: &Disk, elements: Vec<SpatialElement>) -> Self {
        Self::write_with(disk, elements, &IndexBuildPipeline::sequential())
    }

    /// [`SparseFile::write`] on a caller-supplied build pipeline: the STR
    /// pass and the page encoding fan out over the pipeline's workers, the
    /// writes stay in page order — the file is byte-identical at any
    /// thread count.
    pub fn write_with(
        disk: &Disk,
        elements: Vec<SpatialElement>,
        pipeline: &IndexBuildPipeline,
    ) -> Self {
        let codec = ElementPageCodec::new(disk.page_size());
        let len = elements.len();
        let parts = pipeline.partition(elements, codec.capacity());
        let first = pipeline.pack_pages(disk, &parts, |p, buf| codec.encode_into(&p.items, buf));
        let pages = (0..parts.len())
            .map(|i| PageId(first.0 + i as u64))
            .collect();
        Self { pages, len }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// Runs the GIPSY join: `sparse` (a plain file) drives the retrieval from
/// `dense` (a connectivity-indexed dataset).
///
/// Returns pairs oriented `(sparse element id, dense element id)`.
pub fn gipsy_join(
    sparse_disk: &Disk,
    sparse: &SparseFile,
    dense_disk: &Disk,
    dense: &TransformersIndex,
    cfg: &GipsyConfig,
    stats: &mut GipsyStats,
) -> Vec<ResultPair> {
    use transformers::explore::{
        adaptive_crawl, adaptive_walk, scan_for_intersection, ExploreScratch,
    };

    let mut out = Vec::new();
    if sparse.is_empty() || dense.is_empty() {
        return out;
    }

    let sparse_codec = ElementPageCodec::new(sparse_disk.page_size());
    // Per-join read handle over the dense side's element pages — the same
    // split handle concurrent query serving hands to each worker, viewing
    // either the shared page cache (default) or a private pool.
    let dense_cache = cfg
        .shared_cache
        .then(|| SharedPageCache::with_shards(dense_disk, cfg.pool_pages, 1));
    let mut dense_reader = match &dense_cache {
        Some(cache) => dense.unit_reader_shared(cache),
        None => dense.unit_reader(dense_disk, cfg.pool_pages),
    };
    let mut scratch = ExploreScratch::default();
    // The sparse file is a single sequential scan; a tiny private cache
    // handle routes it through the same decode-into read path instead of
    // allocating a fresh `Vec` per page (`Disk::read_page_vec`).
    let mut sparse_cache = CacheHandle::private(sparse_disk, 4);
    let mut sparse_scratch = Vec::new();

    let nodes = dense.nodes();
    let units = dense.units();
    let reach = dense.reach_eps();
    let dense_extent = dense.extent().inflate(reach);

    let mut walk_pos: Option<transformers::NodeId> = None;

    for &page in &sparse.pages {
        // Sequential scan of the sparse dataset.
        let sparse_elems: Vec<SpatialElement> = sparse_cache
            .elements(&sparse_codec, page, &mut sparse_scratch)
            .to_vec();
        for e in &sparse_elems {
            stats.metadata_tests += 1;
            if !dense_extent.intersects(&e.mbb) {
                continue;
            }
            // Directed walk at spatial-element granularity — GIPSY's only
            // level.
            let start = match walk_pos {
                Some(n) => n,
                // The cold-start B+-tree descent reads through the dense
                // side's cache, so tree pages share frames with element
                // pages instead of hitting the disk directly.
                None => dense
                    .walk_start_with(dense_reader.cache_mut(), &e.mbb.center())
                    .expect("dense index non-empty"),
            };
            let r = adaptive_walk(nodes, reach, &e.mbb, start, cfg.walk_patience, &mut scratch);
            stats.walk_steps += r.steps;
            stats.metadata_tests += r.metadata_tests;
            walk_pos = Some(r.found.unwrap_or(r.closest));
            let found = match r.found {
                Some(n) => Some(n),
                None => {
                    stats.walk_fallbacks += 1;
                    scan_for_intersection(nodes, reach, &e.mbb, &mut stats.metadata_tests)
                }
            };
            let Some(nf) = found else { continue };

            let mut crawl = adaptive_crawl(nodes, units, reach, &e.mbb, nf, &mut scratch);
            stats.crawl_steps += crawl.steps;
            stats.metadata_tests += crawl.metadata_tests;
            // Elevator order: candidate pages of one element are contiguous
            // within their nodes.
            crawl
                .candidates
                .sort_unstable_by_key(|u| units[u.0 as usize].page);

            for cu in crawl.candidates {
                // Zero-copy read: the shared cache's decoded tier is
                // borrowed directly; the private ablation decodes into
                // the handle's scratch buffer.
                let dense_page = dense_reader.elements(cu);
                for d in dense_page.iter() {
                    stats.mem.element_tests += 1;
                    if e.mbb.intersects(&d.mbb) {
                        out.push((e.id, d.id));
                    }
                }
            }
        }
    }
    stats.mem.results += out.len() as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_datagen::{generate, DatasetSpec, Distribution};
    use tfm_memjoin::{canonicalize, nested_loop_join};
    use transformers::IndexConfig;

    fn run(sparse: &[SpatialElement], dense: &[SpatialElement]) -> (Vec<ResultPair>, GipsyStats) {
        let sparse_disk = Disk::default_in_memory();
        let dense_disk = Disk::default_in_memory();
        let sparse_file = SparseFile::write(&sparse_disk, sparse.to_vec());
        let dense_idx =
            TransformersIndex::build(&dense_disk, dense.to_vec(), &IndexConfig::default());
        let mut stats = GipsyStats::default();
        let pairs = gipsy_join(
            &sparse_disk,
            &sparse_file,
            &dense_disk,
            &dense_idx,
            &GipsyConfig::default(),
            &mut stats,
        );
        (pairs, stats)
    }

    fn oracle(a: &[SpatialElement], b: &[SpatialElement]) -> Vec<ResultPair> {
        let mut s = JoinStats::default();
        canonicalize(nested_loop_join(a, b, &mut s))
    }

    #[test]
    fn matches_oracle_sparse_vs_dense() {
        let sparse = generate(&DatasetSpec {
            max_side: 15.0,
            ..DatasetSpec::uniform(200, 40)
        });
        let dense = generate(&DatasetSpec {
            max_side: 3.0,
            ..DatasetSpec::uniform(20_000, 41)
        });
        let (pairs, stats) = run(&sparse, &dense);
        assert_eq!(canonicalize(pairs), oracle(&sparse, &dense));
        assert!(stats.walk_steps > 0);
    }

    #[test]
    fn matches_oracle_similar_density() {
        let a = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(2000, 42)
        });
        let b = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(2000, 43)
        });
        let (pairs, _) = run(&a, &b);
        assert_eq!(canonicalize(pairs), oracle(&a, &b));
    }

    #[test]
    fn matches_oracle_clustered_dense() {
        let sparse = generate(&DatasetSpec {
            max_side: 10.0,
            ..DatasetSpec::uniform(300, 44)
        });
        let dense = generate(&DatasetSpec {
            max_side: 3.0,
            ..DatasetSpec::with_distribution(8000, Distribution::DenseCluster { clusters: 10 }, 45)
        });
        let (pairs, _) = run(&sparse, &dense);
        assert_eq!(canonicalize(pairs), oracle(&sparse, &dense));
    }

    #[test]
    fn empty_sides() {
        let a = generate(&DatasetSpec::uniform(100, 46));
        assert!(run(&[], &a).0.is_empty());
        assert!(run(&a, &[]).0.is_empty());
    }

    #[test]
    fn no_duplicate_pairs() {
        let sparse = generate(&DatasetSpec {
            max_side: 25.0,
            ..DatasetSpec::uniform(150, 47)
        });
        let dense = generate(&DatasetSpec {
            max_side: 5.0,
            ..DatasetSpec::uniform(5000, 48)
        });
        let (pairs, _) = run(&sparse, &dense);
        let n = pairs.len();
        assert_eq!(canonicalize(pairs).len(), n);
    }

    #[test]
    fn parallel_sparse_file_is_byte_identical() {
        let elems = generate(&DatasetSpec::uniform(2000, 50));
        let seq_disk = Disk::default_in_memory();
        let seq = SparseFile::write(&seq_disk, elems.clone());
        let dump = |d: &Disk, f: &SparseFile| -> Vec<Vec<u8>> {
            f.pages.iter().map(|&p| d.read_page_vec(p)).collect()
        };
        let seq_pages = dump(&seq_disk, &seq);
        for threads in [2, 4] {
            let disk = Disk::default_in_memory();
            let f = SparseFile::write_with(
                &disk,
                elems.clone(),
                &transformers::IndexBuildPipeline::new(threads),
            );
            assert_eq!(f.len(), seq.len());
            assert_eq!(f.page_count(), seq.page_count());
            assert_eq!(dump(&disk, &f), seq_pages, "threads = {threads}");
        }
    }

    #[test]
    fn sparse_file_layout() {
        let disk = Disk::default_in_memory();
        let elems = generate(&DatasetSpec::uniform(1000, 49));
        let f = SparseFile::write(&disk, elems);
        assert_eq!(f.len(), 1000);
        // STR may produce slightly more partitions than the lower bound
        // because slabs round up independently per dimension.
        let min_pages = 1000usize.div_ceil(ElementPageCodec::new(8192).capacity());
        assert!(f.page_count() >= min_pages);
        assert!(f.page_count() <= 2 * min_pages);
    }
}
