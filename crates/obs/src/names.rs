//! The unified metric naming scheme.
//!
//! Every tier of the reproduction reports under `subsystem.metric_unit`:
//! the subsystem prefix (`cache`, `io`, `serve`, `join`, `build`) names
//! the layer that owns the signal, and duration metrics carry a `_nanos`
//! suffix. Counters previously scattered across `Metrics.pool_hits`,
//! `TransformersStats.pool_hits` and `ServeStats.cache` all route to the
//! single `cache.*` family below, published once per run from the
//! handle-local pool counters (never from both a local and a shared
//! surface, so nothing double-counts).
//!
//! Use these constants rather than string literals so the kind checks in
//! [`crate::MetricsRegistry`] stay meaningful and typos fail review, not
//! runs.

// --- cache.* : buffer-pool behaviour (SharedPageCache + CacheHandle) ---

/// Pool page hits, summed over all handle-local counters of a run.
pub const CACHE_HITS: &str = "cache.hits";
/// Pool page misses (disk page reads), handle-local.
pub const CACHE_MISSES: &str = "cache.misses";
/// Decoded-node cache hits (shared cache only).
pub const CACHE_DECODED_HITS: &str = "cache.decoded_hits";
/// Decoded-node cache misses (shared cache only).
pub const CACHE_DECODED_MISSES: &str = "cache.decoded_misses";
/// Frames evicted from the shared cache.
pub const CACHE_EVICTIONS: &str = "cache.evictions";
/// Evicted frames recycled instead of freshly allocated.
pub const CACHE_RECYCLED_FRAMES: &str = "cache.recycled_frames";
/// Fresh frame allocations in the shared cache.
pub const CACHE_FRESH_ALLOCS: &str = "cache.fresh_allocs";
/// Shard lock acquisitions in the shared cache.
pub const CACHE_LOCK_ACQUISITIONS: &str = "cache.lock_acquisitions";
/// Shard lock acquisitions that had to wait (contention signal).
pub const CACHE_LOCK_CONTENDED: &str = "cache.lock_contended";
/// Writes installed into the shared cache's dirty tier.
pub const CACHE_DIRTY_INSTALLS: &str = "cache.dirty_installs";
/// Dirty frames written back to the store by ordered flushing.
pub const CACHE_FLUSHED_PAGES: &str = "cache.flushed_pages";

// --- io.* : simulated-disk access pattern (IoStats) ---

/// Sequential page reads.
pub const IO_SEQ_READS: &str = "io.seq_reads";
/// Random page reads.
pub const IO_RAND_READS: &str = "io.rand_reads";
/// Sequential page writes.
pub const IO_SEQ_WRITES: &str = "io.seq_writes";
/// Random page writes.
pub const IO_RAND_WRITES: &str = "io.rand_writes";
/// Simulated I/O cost in nanoseconds (disk model time, not wall time).
pub const IO_SIM_NANOS: &str = "io.sim_nanos";

// --- io.prefetch.* : the readahead pipeline (SharedPageCache prefetch) ---
//
// Kept disjoint from the `cache.*` hit/miss pair: a read served by a
// prefetched frame counts here and **only** here, so readahead can never
// inflate a cache hit-fraction gate.

/// Pages the prefetch pipeline read and landed into cache frames.
pub const IO_PREFETCH_ISSUED: &str = "io.prefetch.issued";
/// Demand reads served by a prefetched (not yet otherwise used) frame.
pub const IO_PREFETCH_HITS: &str = "io.prefetch.hits";
/// Prefetched frames evicted before any demand read used them.
pub const IO_PREFETCH_UNUSED: &str = "io.prefetch.unused";

// --- io.prefetch.join.* : the join-path slice of the readahead pipeline ---
//
// The `io.prefetch.*` totals above sum every prefetch source of a
// process. The join path publishes its share again under this prefix, so
// a mis-sized `tfm join --readahead` window shows up by itself instead of
// being averaged away against the serve tier's readahead.

/// Pages the join-chunk scheduler prefetched into the caches.
pub const IO_PREFETCH_JOIN_ISSUED: &str = "io.prefetch.join.issued";
/// Join demand reads served by a prefetched frame.
pub const IO_PREFETCH_JOIN_HITS: &str = "io.prefetch.join.hits";
/// Join-prefetched frames never used by a demand read (evicted early, or
/// still untouched when the join finished).
pub const IO_PREFETCH_JOIN_UNUSED: &str = "io.prefetch.join.unused";

// --- cache.2q.* : scan-resistant 2Q admission (CachePolicy::TwoQ) ---
//
// Only published when the 2Q policy is active; see
// `tfm_storage::CachePolicy` for the tier semantics.

/// Demand misses the ghost queue admitted straight to the protected tier.
pub const CACHE_2Q_GHOST_PROMOTIONS: &str = "cache.2q.ghost_promotions";
/// Probationary frames promoted on a second demand access.
pub const CACHE_2Q_REUSE_PROMOTIONS: &str = "cache.2q.reuse_promotions";
/// Fills admitted as scan traffic (prefetch landings, always probationary).
pub const CACHE_2Q_SCAN_ADMISSIONS: &str = "cache.2q.scan_admissions";
/// Evictions taken from the probationary tier.
pub const CACHE_2Q_PROBATION_EVICTIONS: &str = "cache.2q.probation_evictions";
/// Evictions taken from the protected tier.
pub const CACHE_2Q_PROTECTED_EVICTIONS: &str = "cache.2q.protected_evictions";

// --- wal.* : the write-ahead log (tfm-wal) ---
//
// Published once per run by `Wal::publish_metrics` (writer-side counters)
// and `RecoveryReport::publish` (replay counters) — the log owns these
// signals, nothing else writes them.

/// Records appended to the log (page images + commit markers).
pub const WAL_RECORDS: &str = "wal.records";
/// Bytes appended to the log, framing included.
pub const WAL_BYTES: &str = "wal.bytes";
/// fsyncs issued against log segments.
pub const WAL_FSYNCS: &str = "wal.fsyncs";
/// Transactions committed through the log.
pub const WAL_COMMITS: &str = "wal.commits";
/// Histogram: records made durable per fsync (group-commit batch size).
pub const WAL_GROUP_COMMIT_RECORDS: &str = "wal.group_commit_records";
/// Page records replayed against the image during recovery.
pub const WAL_RECOVERY_REPLAYED: &str = "wal.recovery.replayed";
/// Records of uncommitted transactions skipped during recovery.
pub const WAL_RECOVERY_SKIPPED: &str = "wal.recovery.skipped";

// --- serve.* : the concurrent query-serving subsystem ---

/// Queries served.
pub const SERVE_QUERIES: &str = "serve.queries";
/// Batches admitted to the request queue.
pub const SERVE_BATCHES: &str = "serve.batches";
/// Total result element IDs returned.
pub const SERVE_RESULT_IDS: &str = "serve.result_ids";
/// End-to-end serve wall time (one sample per run).
pub const SERVE_WALL_NANOS: &str = "serve.wall_nanos";
/// Per-query service time histogram (probe execution only).
pub const SERVE_SERVICE_NANOS: &str = "serve.service_nanos";
/// Per-query queue-wait histogram (admission to worker pop).
pub const SERVE_QUEUE_WAIT_NANOS: &str = "serve.queue_wait_nanos";

// --- serve.autobatch.* : the self-tuning batch-size loop (--auto-batch) ---

/// Retune decisions taken (one per feedback window).
pub const SERVE_AUTOBATCH_RETUNES: &str = "serve.autobatch.retunes";
/// Retunes that grew the batch size.
pub const SERVE_AUTOBATCH_GROWS: &str = "serve.autobatch.grows";
/// Retunes that shrank the batch size.
pub const SERVE_AUTOBATCH_SHRINKS: &str = "serve.autobatch.shrinks";
/// Batch size in effect when the run ended (gauge).
pub const SERVE_AUTOBATCH_FINAL_BATCH: &str = "serve.autobatch.final_batch";

// --- shard.* : the sharded scatter-gather serve cluster ---
//
// Cluster-wide signals use the constants below; per-shard breakdowns use
// dynamic names of the form `shard.<i>.queries`, `shard.<i>.pool_hits`,
// `shard.<i>.pool_misses` and `shard.<i>.queue_wait_nanos` (the registry
// keys metrics by string, so dynamic families need no constants).

/// Queries admitted to the sharded serve path.
pub const SHARD_QUERIES: &str = "shard.queries";
/// Query partials routed to shards (Σ per-query fanout).
pub const SHARD_ROUTED: &str = "shard.routed";
/// Per-query fanout histogram: how many shards each probe scattered to.
pub const SHARD_FANOUT: &str = "shard.fanout";
/// Per-partial service-time histogram across all shards.
pub const SHARD_SERVICE_NANOS: &str = "shard.service_nanos";
/// Per-partial queue-wait histogram: sub-batch admission to worker pop.
pub const SHARD_QUEUE_WAIT_NANOS: &str = "shard.queue_wait_nanos";
/// Sub-batches refused by full shard queues (load-shedding admission).
pub const SHARD_SHED_BATCHES: &str = "shard.shed_batches";
/// Query partials lost to shed sub-batches.
pub const SHARD_SHED_QUERIES: &str = "shard.shed_queries";
/// Shards in the serving cluster.
pub const SHARD_COUNT: &str = "shard.count";
/// Peak percentage of shard queues simultaneously full during the run —
/// the cluster-level backpressure signal.
pub const SHARD_CLUSTER_PRESSURE_MAX_PCT: &str = "shard.cluster_pressure_max_pct";

// --- join.* : the adaptive parallel join ---

/// Pivot elements processed.
pub const JOIN_PIVOTS: &str = "join.pivots";
/// Chunks executed by the work-stealing scheduler.
pub const JOIN_CHUNKS: &str = "join.chunks";
/// Chunks skipped by the scheduler's pruning.
pub const JOIN_CHUNKS_PRUNED: &str = "join.chunks_pruned";
/// Successful steals between join workers.
pub const JOIN_STEALS: &str = "join.steals";
/// Per-chunk execution time histogram.
pub const JOIN_CHUNK_NANOS: &str = "join.chunk_nanos";
/// End-to-end join wall time (one sample per run).
pub const JOIN_WALL_NANOS: &str = "join.wall_nanos";
/// Join predicate evaluations (TRANSFORMERS `tests`).
pub const JOIN_TESTS: &str = "join.tests";
/// Guide/follower role transformations.
pub const JOIN_ROLE_TRANSFORMATIONS: &str = "join.role_transformations";
/// Units pruned by the connectivity filter.
pub const JOIN_PRUNED_UNITS: &str = "join.pruned_units";
/// Guide-walk steps.
pub const JOIN_WALK_STEPS: &str = "join.walk_steps";
/// Follower-crawl steps.
pub const JOIN_CRAWL_STEPS: &str = "join.crawl_steps";

// --- build.* : index-build stage timings ---
//
// Each stage records via `MetricsRegistry::stage_span(prefix)`, which
// emits `<prefix>_nanos` (wall histogram) and `<prefix>_cpu_nanos`
// (process-CPU counter). The constants below are the prefixes.

/// STR partitioning of the raw elements (tfm-partition pipeline).
pub const BUILD_PARTITION: &str = "build.partition";
/// Encoding and writing sorted runs to the disk image.
pub const BUILD_ENCODE_WRITE: &str = "build.encode_write";
/// Stage 1: STR ordering of leaf units.
pub const BUILD_UNIT_STR: &str = "build.unit_str";
/// Stage 2: STR ordering of internal nodes.
pub const BUILD_NODE_STR: &str = "build.node_str";
/// Stage 3: packing elements into pages.
pub const BUILD_PAGE_PACK: &str = "build.page_pack";
/// Stage 4: connectivity metadata.
pub const BUILD_CONNECTIVITY: &str = "build.connectivity";
/// Stage 5: finalize and root assembly.
pub const BUILD_FINALIZE: &str = "build.finalize";
