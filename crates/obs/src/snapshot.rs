//! Metric snapshots and the two exporters (JSON-lines, Prometheus text).
//!
//! The JSON-lines form is the archival format: one flat JSON object per
//! metric, hand-rolled with `write!` (the workspace has no JSON
//! dependency) and parseable back via [`MetricsSnapshot::parse_jsonl`] —
//! the round-trip is what CI archives and what the snapshot tests gate
//! on. Unrecognized lines (per-query trace events, snapshot-sequence
//! headers) are skipped on parse, so one `.jsonl` file can interleave
//! snapshots and traces.

use crate::hist::{bucket_index, bucket_lower_bound, HistogramSnapshot};
use std::fmt::Write as _;

/// One metric's point-in-time value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Signed gauge.
    Gauge(i64),
    /// Log-bucketed histogram.
    Histogram(HistogramSnapshot),
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Dotted metric name (see [`crate::names`]).
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A point-in-time copy of a whole [`crate::MetricsRegistry`],
/// name-sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All registered metrics, ascending by name.
    pub entries: Vec<MetricSnapshot>,
}

impl MetricsSnapshot {
    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// Convenience: a counter's value (`None` when absent or of a
    /// different kind).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: a histogram's snapshot.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Serializes to JSON lines: one object per metric.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{}\",\"kind\":\"counter\",\"value\":{v}}}",
                        e.name
                    );
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{}\",\"kind\":\"gauge\",\"value\":{v}}}",
                        e.name
                    );
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                        e.name, h.count, h.sum, h.max
                    );
                    for (i, (lower, n)) in h.buckets.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{lower},{n}]");
                    }
                    out.push_str("]}\n");
                }
            }
        }
        out
    }

    /// Serializes to Prometheus text exposition format. Dots in metric
    /// names become underscores; histograms emit cumulative `le` buckets
    /// (upper bounds inclusive) plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let name = e.name.replace('.', "_");
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    for &(lower, n) in &h.buckets {
                        cumulative += n;
                        let upper = bucket_lower_bound(bucket_index(lower) + 1) - 1;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{upper}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                    let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
                }
            }
        }
        out
    }

    /// Parses the JSON-lines form back (the inverse of
    /// [`MetricsSnapshot::to_jsonl`]). Lines that are not metric objects
    /// (no `"kind"` key — e.g. interleaved trace events) are skipped;
    /// malformed lines are an error.
    pub fn parse_jsonl(text: &str) -> Result<MetricsSnapshot, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields = parse_flat_object(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let Some(JsonValue::Str(kind)) =
                fields.iter().find(|(k, _)| k == "kind").map(|(_, v)| v)
            else {
                continue;
            };
            let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let name = match get("name") {
                Some(JsonValue::Str(s)) => s.clone(),
                _ => return Err(format!("line {}: metric without a name", i + 1)),
            };
            let int = |key: &str| -> Result<i64, String> {
                match get(key) {
                    Some(JsonValue::Int(v)) => Ok(*v),
                    _ => Err(format!("line {}: `{name}` missing numeric `{key}`", i + 1)),
                }
            };
            let value = match kind.as_str() {
                "counter" => MetricValue::Counter(int("value")? as u64),
                "gauge" => MetricValue::Gauge(int("value")?),
                "histogram" => {
                    let buckets = match get("buckets") {
                        Some(JsonValue::Pairs(p)) => p.clone(),
                        _ => return Err(format!("line {}: `{name}` missing buckets", i + 1)),
                    };
                    MetricValue::Histogram(HistogramSnapshot {
                        count: int("count")? as u64,
                        sum: int("sum")? as u64,
                        max: int("max")? as u64,
                        buckets,
                    })
                }
                other => return Err(format!("line {}: unknown metric kind `{other}`", i + 1)),
            };
            entries.push(MetricSnapshot { name, value });
        }
        Ok(MetricsSnapshot { entries })
    }
}

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    Int(i64),
    Pairs(Vec<(u64, u64)>),
}

/// Parses one flat `{"key":value,...}` object of the snapshot dialect:
/// string / integer / `[[u64,u64],...]` values only. Not a general JSON
/// parser — exactly the inverse of what [`MetricsSnapshot::to_jsonl`] and
/// [`crate::QueryTrace::to_json`] emit.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let key_start = rest.strip_prefix('"').ok_or("expected a quoted key")?;
        let key_end = key_start.find('"').ok_or("unterminated key")?;
        let key = &key_start[..key_end];
        rest = key_start[key_end + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or("expected `:` after key")?
            .trim_start();
        let (value, remainder) = parse_value(rest)?;
        fields.push((key.to_string(), value));
        rest = remainder.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("trailing content `{rest}`"));
        }
    }
    Ok(fields)
}

fn parse_value(rest: &str) -> Result<(JsonValue, &str), String> {
    if let Some(s) = rest.strip_prefix('"') {
        let end = s.find('"').ok_or("unterminated string")?;
        return Ok((JsonValue::Str(s[..end].to_string()), &s[end + 1..]));
    }
    if let Some(list) = rest.strip_prefix('[') {
        let end = list.find("]]").map(|i| i + 1).unwrap_or(
            // Empty bucket list: "[]".
            list.find(']').ok_or("unterminated array")?,
        );
        let (body, remainder) = (&list[..end], &list[end + 1..]);
        let mut pairs = Vec::new();
        for pair in body.split("],").filter(|p| !p.trim().is_empty()) {
            let pair = pair.trim().trim_start_matches('[').trim_end_matches(']');
            let (a, b) = pair
                .split_once(',')
                .ok_or_else(|| format!("malformed bucket pair `{pair}`"))?;
            let a: u64 = a.trim().parse().map_err(|_| "bad bucket bound")?;
            let b: u64 = b.trim().parse().map_err(|_| "bad bucket count")?;
            pairs.push((a, b));
        }
        return Ok((JsonValue::Pairs(pairs), remainder));
    }
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-'))
        .unwrap_or(rest.len());
    if end == 0 {
        return Err(format!("unexpected value at `{rest}`"));
    }
    let v: i64 = rest[..end].parse().map_err(|_| "bad integer")?;
    Ok((JsonValue::Int(v), &rest[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter("cache.hits").add(123);
        r.gauge("serve.queue_depth").set(-4);
        let h = r.histogram("serve.service_nanos");
        for v in [3u64, 3, 70, 5_000, 123_456] {
            h.record(v);
        }
        r.histogram("serve.queue_wait_nanos"); // empty histogram
        r.snapshot()
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let snap = sample();
        let text = snap.to_jsonl();
        assert_eq!(text.lines().count(), snap.entries.len());
        let parsed = MetricsSnapshot::parse_jsonl(&text).expect("parse back");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn parse_skips_non_metric_lines_and_blanks() {
        let snap = sample();
        let mut text = String::from("{\"snapshot\":1,\"elapsed_nanos\":99}\n\n");
        text.push_str(&snap.to_jsonl());
        text.push_str("{\"trace_id\":7,\"worker\":0,\"queue_wait_nanos\":5,\"service_nanos\":10,\"pool_hits\":1,\"pool_misses\":2,\"result_ids\":3}\n");
        let parsed = MetricsSnapshot::parse_jsonl(&text).expect("parse with extras");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(MetricsSnapshot::parse_jsonl("not json").is_err());
        assert!(MetricsSnapshot::parse_jsonl("{\"kind\":\"counter\"}").is_err());
        assert!(
            MetricsSnapshot::parse_jsonl("{\"name\":\"x\",\"kind\":\"wobble\",\"value\":1}")
                .is_err()
        );
    }

    #[test]
    fn accessors_find_metrics_by_name() {
        let snap = sample();
        assert_eq!(snap.counter("cache.hits"), Some(123));
        assert_eq!(snap.counter("cache.misses"), None);
        assert_eq!(snap.counter("serve.queue_depth"), None, "kind mismatch");
        let h = snap.histogram("serve.service_nanos").expect("histogram");
        assert_eq!(h.count, 5);
        assert_eq!(h.max, 123_456);
    }

    #[test]
    fn prometheus_output_has_types_sums_and_cumulative_buckets() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE cache_hits counter"));
        assert!(text.contains("cache_hits 123"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("serve_queue_depth -4"));
        assert!(text.contains("# TYPE serve_service_nanos histogram"));
        assert!(text.contains("serve_service_nanos_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("serve_service_nanos_count 5"));
        // The first bucket (two samples at 3) is cumulative count 2 with
        // an inclusive upper bound of 3 (width-1 bucket).
        assert!(text.contains("serve_service_nanos_bucket{le=\"3\"} 2"));
    }
}
