//! `tfm-obs`: dependency-free observability substrate for the
//! TRANSFORMERS reproduction.
//!
//! Every performance tier — the adaptive parallel join, the staged index
//! build, the `SharedPageCache`, and `tfm-serve` — reports into one
//! process-wide [`MetricsRegistry`] under the dotted naming scheme
//! documented in [`names`]. The design goals, in order:
//!
//! 1. **Hot-path cost is one atomic add.** Metric handles are resolved
//!    once per name ([`Arc`]s out of the registry map); recording through
//!    a handle is a relaxed `fetch_add` into a counter or a log-bucketed
//!    [`Histogram`] slot.
//! 2. **Off means off.** The registry carries a runtime switch shared by
//!    all of its metrics: while off (the [`global`] registry's default),
//!    every record call is a single relaxed flag load and no
//!    read-modify-write. Compiling with the `noop` feature removes even
//!    the load.
//! 3. **Exportable.** [`MetricsSnapshot`] serializes to JSON lines (and
//!    parses back — CI archives and gates on the round-trip) and to
//!    Prometheus text; [`QueryTrace`] records interleave in the same
//!    `.jsonl` stream; [`SnapshotThread`] appends periodic snapshots for
//!    long serve runs.
//!
//! Timing comes from RAII spans: [`SpanTimer`] (wall time into a
//! histogram, used per join chunk and per query) and [`StageTimer`]
//! (wall + process-CPU per build stage).

#![warn(missing_docs)]

mod hist;
mod registry;
mod snapshot;
mod trace;

pub mod names;

pub use hist::{
    bucket_index, bucket_lower_bound, Histogram, HistogramSnapshot, SpanTimer, BUCKETS, SUB_BUCKETS,
};
pub use registry::{Counter, Gauge, MetricsRegistry, StageTimer};
pub use snapshot::{MetricSnapshot, MetricValue, MetricsSnapshot};
pub use trace::QueryTrace;

use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The process-wide registry every subsystem publishes into.
///
/// Starts **disabled** (zero-overhead beyond one relaxed load per record
/// call) unless the `TFM_METRICS` environment variable is set to
/// something other than `0` at first access; `tfm serve --metrics` /
/// `tfm join --metrics` flip it on explicitly via [`set_enabled`].
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let r = MetricsRegistry::default();
        let on = std::env::var("TFM_METRICS").is_ok_and(|v| !v.is_empty() && v != "0");
        r.set_enabled(on);
        r
    })
}

/// Flips recording on the [`global`] registry.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Whether the [`global`] registry is currently recording.
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Total process CPU time (user + system, all threads) in nanoseconds.
///
/// Reads `/proc/self/stat` `utime`+`stime`, assuming the conventional
/// 100 Hz clock tick, so the granularity is 10 ms. Returns `None` on
/// non-Linux platforms or if the file is unreadable — stage timers
/// simply skip CPU attribution then.
pub fn process_cpu_nanos() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Field 2 (comm) may contain spaces; everything after the closing
    // paren is whitespace-delimited, with utime/stime at positions 13/14
    // of that remainder (0-indexed; stat fields 14/15 overall).
    let after_comm = &stat[stat.rfind(')')? + 1..];
    let mut fields = after_comm.split_ascii_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    const NANOS_PER_TICK: u64 = 1_000_000_000 / 100;
    Some((utime + stime) * NANOS_PER_TICK)
}

/// Background thread appending periodic JSON-lines snapshots of a
/// registry to a file.
///
/// Each interval it writes a sequence-header line
/// (`{"snapshot":N,"elapsed_nanos":E}`) followed by the registry's
/// metric lines; [`MetricsSnapshot::parse_jsonl`] skips the headers, so
/// the accumulated file parses as the union of all snapshots (last
/// occurrence of each metric wins for point-in-time reads). A final
/// snapshot is written on [`SnapshotThread::stop`].
#[derive(Debug)]
pub struct SnapshotThread {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl SnapshotThread {
    /// Starts the writer. `registry` is typically [`global`]; tests can
    /// leak a local one. Snapshots append to `path` (created if absent).
    pub fn start(
        registry: &'static MetricsRegistry,
        path: std::path::PathBuf,
        interval: Duration,
    ) -> std::io::Result<SnapshotThread> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("tfm-obs-snapshot".into())
            .spawn(move || -> std::io::Result<()> {
                let start = Instant::now();
                let mut seq = 0u64;
                let (lock, cv) = &*stop2;
                loop {
                    let stopped = {
                        let guard = lock.lock().expect("snapshot stop lock poisoned");
                        let (guard, _) = cv
                            .wait_timeout_while(guard, interval, |s| !*s)
                            .expect("snapshot stop lock poisoned");
                        *guard
                    };
                    seq += 1;
                    writeln!(
                        file,
                        "{{\"snapshot\":{seq},\"elapsed_nanos\":{}}}",
                        start.elapsed().as_nanos()
                    )?;
                    file.write_all(registry.snapshot().to_jsonl().as_bytes())?;
                    file.flush()?;
                    if stopped {
                        return Ok(());
                    }
                }
            })?;
        Ok(SnapshotThread {
            stop,
            handle: Some(handle),
        })
    }

    /// Signals the writer, waits for its final snapshot, and returns any
    /// I/O error the thread hit.
    pub fn stop(mut self) -> std::io::Result<()> {
        self.signal();
        match self.handle.take() {
            Some(h) => h.join().unwrap_or(Ok(())),
            None => Ok(()),
        }
    }

    fn signal(&self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().expect("snapshot stop lock poisoned") = true;
        cv.notify_all();
    }
}

impl Drop for SnapshotThread {
    fn drop(&mut self) {
        self.signal();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_cpu_time_is_monotone_when_available() {
        let Some(a) = process_cpu_nanos() else {
            return; // non-Linux: nothing to assert
        };
        // Burn a little CPU; the reading must never go backwards.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i).rotate_left(7);
        }
        assert!(x != 42, "keep the loop alive");
        let b = process_cpu_nanos().expect("second reading");
        assert!(b >= a);
    }

    #[test]
    fn snapshot_thread_writes_parseable_snapshots() {
        let reg: &'static MetricsRegistry = Box::leak(Box::new(MetricsRegistry::new()));
        reg.counter("test.count").add(5);
        reg.histogram("test.nanos").record(1_000);
        let path = std::env::temp_dir().join(format!("tfm_obs_snap_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let t = SnapshotThread::start(reg, path.clone(), Duration::from_millis(5))
            .expect("start snapshot thread");
        std::thread::sleep(Duration::from_millis(25));
        reg.counter("test.count").add(2);
        t.stop().expect("stop snapshot thread");
        let text = std::fs::read_to_string(&path).expect("read snapshot file");
        let parsed = MetricsSnapshot::parse_jsonl(&text).expect("parse snapshots");
        // Multiple snapshots accumulate; at least the final one carries
        // the updated counter, and headers were skipped cleanly.
        assert!(text.contains("\"snapshot\":1"));
        assert!(parsed
            .entries
            .iter()
            .any(|e| e.name == "test.count" && e.value == MetricValue::Counter(7)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn global_registry_starts_disabled_and_toggles() {
        // TFM_METRICS is unset in the test environment, so the global
        // registry defaults to off; flipping it is what the CLI does.
        if std::env::var("TFM_METRICS").is_ok() {
            return;
        }
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
