//! Per-query traces: one record per served query, linking queue wait to
//! service time and I/O attribution.
//!
//! A trace ID is assigned at `RequestQueue` admission (the query's
//! position in the workload trace, so IDs are stable across runs and
//! thread counts) and travels with the query through the worker's
//! `QuerySession` probe down to the `CacheHandle` pool counters. The
//! serve loop stamps queue-wait at pop time and service time around the
//! probe, and snapshots the handle-local pool counters before/after to
//! attribute hits and misses to the individual query.

use std::fmt::Write as _;

/// One served query's timing and I/O record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Stable query identifier: the query's index in the workload trace.
    pub trace_id: u64,
    /// Worker that executed the query (0 on the single-threaded path).
    pub worker: u64,
    /// Nanoseconds between batch admission to the request queue and the
    /// executing worker popping it.
    pub queue_wait_nanos: u64,
    /// Nanoseconds spent executing the probe itself.
    pub service_nanos: u64,
    /// Buffer-pool hits attributed to this query (delta of the worker's
    /// handle-local counters around the probe).
    pub pool_hits: u64,
    /// Buffer-pool misses (page reads) attributed to this query.
    pub pool_misses: u64,
    /// Number of result element IDs the probe returned.
    pub result_ids: u64,
}

impl QueryTrace {
    /// One flat JSON object (no trailing newline), interleavable with
    /// metric snapshot lines in the same `.jsonl` file —
    /// [`crate::MetricsSnapshot::parse_jsonl`] skips trace lines because
    /// they carry no `"kind"` key.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"trace_id\":{},\"worker\":{},\"queue_wait_nanos\":{},\"service_nanos\":{},\"pool_hits\":{},\"pool_misses\":{},\"result_ids\":{}}}",
            self.trace_id,
            self.worker,
            self.queue_wait_nanos,
            self.service_nanos,
            self.pool_hits,
            self.pool_misses,
            self.result_ids
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_serializes_flat_json() {
        let t = QueryTrace {
            trace_id: 7,
            worker: 2,
            queue_wait_nanos: 1_500,
            service_nanos: 42_000,
            pool_hits: 9,
            pool_misses: 1,
            result_ids: 13,
        };
        let json = t.to_json();
        assert!(json.starts_with("{\"trace_id\":7,"));
        assert!(json.contains("\"queue_wait_nanos\":1500"));
        assert!(json.contains("\"service_nanos\":42000"));
        assert!(json.ends_with("\"result_ids\":13}"));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn trace_lines_are_skipped_by_snapshot_parser() {
        let text = format!("{}\n", QueryTrace::default().to_json());
        let parsed = crate::MetricsSnapshot::parse_jsonl(&text).expect("parse");
        assert!(parsed.entries.is_empty());
    }
}
