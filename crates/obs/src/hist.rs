//! Log-bucketed latency histograms and RAII span timers.
//!
//! The bucket layout is HDR-style **log-linear**: values below
//! [`SUB_BUCKETS`] get one bucket each (exact), and every further power of
//! two is split into [`SUB_BUCKETS`] equal sub-buckets, so the relative
//! quantization error is bounded by `1 / SUB_BUCKETS` (~3.1%) across the
//! full `u64` range. Recording is one relaxed `fetch_add` into the bucket
//! plus the count/sum/max upkeep — cheap enough for per-query paths.

use crate::registry::flag_is_on;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Sub-buckets per power of two (the log-linear resolution).
pub const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Total bucket count covering the full `u64` value range.
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// Bucket index of `v` (log-linear; monotonic in `v`).
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (msb - SUB_BITS as usize)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (msb - SUB_BITS as usize + 1) * SUB_BUCKETS + sub
}

/// Smallest value mapping to bucket `index` — the bucket's reported
/// representative (so exactly-representable samples round-trip exactly).
pub fn bucket_lower_bound(index: usize) -> u64 {
    let block = index / SUB_BUCKETS;
    if block <= 1 {
        return index as u64;
    }
    ((SUB_BUCKETS + index % SUB_BUCKETS) as u64) << (block - 1)
}

/// A concurrent log-bucketed histogram of `u64` samples (nanoseconds by
/// convention; see [`crate::names`]).
///
/// All methods take `&self`; recording is wait-free (relaxed atomics).
/// A snapshot taken while writers are active is a consistent-enough
/// point-in-time view: each counter is monotone, but `count`/`sum`/buckets
/// are read independently.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    enabled: Arc<AtomicBool>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An always-on standalone histogram (not gated by any registry's
    /// runtime switch) — for per-run accumulators whose recording *is*
    /// the measurement, e.g. the serve path's latency summary.
    pub fn new() -> Self {
        Self::with_flag(Arc::new(AtomicBool::new(true)))
    }

    pub(crate) fn with_flag(enabled: Arc<AtomicBool>) -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            enabled,
        }
    }

    /// Records one sample. No-op while the owning registry is disabled
    /// (one relaxed flag load, no read-modify-write).
    pub fn record(&self, v: u64) {
        if !flag_is_on(&self.enabled) {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Starts an RAII span: the elapsed wall time in nanoseconds is
    /// recorded when the returned timer drops.
    pub fn span(self: &Arc<Self>) -> SpanTimer {
        SpanTimer {
            hist: Arc::clone(self),
            start: Instant::now(),
        }
    }

    /// Folds a snapshot's buckets into this histogram (e.g. publishing a
    /// per-run accumulator into the process-wide registry). Gated like
    /// [`Histogram::record`].
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        if !flag_is_on(&self.enabled) || snap.count == 0 {
            return;
        }
        for &(lower, n) in &snap.buckets {
            self.buckets[bucket_index(lower)].fetch_add(n, Ordering::Relaxed);
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy (non-empty buckets only).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_lower_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    pub(crate) fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// RAII wall-clock span: records the elapsed nanoseconds into its
/// histogram on drop. Obtain via [`Histogram::span`] or
/// [`crate::MetricsRegistry::span`].
#[derive(Debug)]
pub struct SpanTimer {
    hist: Arc<Histogram>,
    start: Instant,
}

impl SpanTimer {
    /// Ends the span now (equivalent to dropping it).
    pub fn stop(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

/// An immutable copy of a [`Histogram`]: total count/sum, the exact
/// maximum, and the non-empty `(bucket_lower_bound, count)` pairs in
/// ascending value order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (exact, not bucketed).
    pub sum: u64,
    /// Largest sample (exact, not bucketed).
    pub max: u64,
    /// Non-empty buckets as `(lower_bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean (exact; 0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        self.sum / self.count
    }

    /// Nearest-rank percentile over the buckets: the lower bound of the
    /// bucket containing rank `ceil(p * count)` (clamped into the sample
    /// range). Agrees exactly with a sorted-samples nearest-rank when
    /// every sample is exactly bucket-representable, and within one
    /// bucket width (≤ `1 / SUB_BUCKETS` relative error) otherwise.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(lower, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return lower;
            }
        }
        // Torn concurrent snapshot (count ahead of buckets): report the
        // largest bucket we have.
        self.buckets.last().map_or(0, |&(lower, _)| lower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_double_sub_buckets() {
        // Buckets 0..2*SUB_BUCKETS are width 1: index == value and the
        // lower bound round-trips exactly.
        for v in 0..(2 * SUB_BUCKETS as u64) {
            assert_eq!(bucket_index(v), v as usize, "value {v}");
            assert_eq!(bucket_lower_bound(v as usize), v, "value {v}");
        }
    }

    #[test]
    fn bucket_boundaries_follow_log_linear_widths() {
        // In [64, 128) buckets are width 2; in [128, 256) width 4, etc.
        assert_eq!(bucket_index(64), bucket_index(65));
        assert_ne!(bucket_index(65), bucket_index(66));
        assert_eq!(bucket_index(128), bucket_index(131));
        assert_ne!(bucket_index(131), bucket_index(132));
        // Power-of-two boundaries start a fresh block.
        for shift in 6..63u32 {
            let v = 1u64 << shift;
            assert_ne!(bucket_index(v - 1), bucket_index(v), "boundary {v}");
            assert_eq!(bucket_lower_bound(bucket_index(v)), v, "boundary {v}");
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_lower_bound_consistent() {
        let probes = [
            0u64,
            1,
            31,
            32,
            63,
            64,
            100,
            1000,
            4096,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ];
        let mut prev = None;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            let lower = bucket_lower_bound(i);
            assert!(lower <= v, "lower {lower} above value {v}");
            assert_eq!(bucket_index(lower), i, "lower bound changes bucket");
            if let Some(p) = prev {
                assert!(i >= p, "index not monotone at {v}");
            }
            prev = Some(i);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[100u64, 999, 5_000, 77_777, 1_000_000, 123_456_789_123] {
            let lower = bucket_lower_bound(bucket_index(v));
            let err = (v - lower) as f64 / v as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64, "value {v}: error {err}");
        }
    }

    #[test]
    fn record_snapshot_and_percentiles() {
        let h = Histogram::new();
        for v in 1..=60u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 60);
        assert_eq!(s.sum, (1..=60).sum::<u64>());
        assert_eq!(s.max, 60);
        assert_eq!(s.mean(), s.sum / 60);
        // All samples < 64 are exactly representable: nearest-rank matches
        // the sorted-samples definition exactly.
        assert_eq!(s.percentile(0.50), 30);
        assert_eq!(s.percentile(0.95), 57);
        assert_eq!(s.percentile(0.99), 60);
        assert_eq!(s.percentile(0.0), 1);
        assert_eq!(s.percentile(1.0), 60);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.mean(), 0);
        assert_eq!(s.percentile(0.99), 0);
    }

    #[test]
    fn merge_snapshot_accumulates() {
        let a = Histogram::new();
        a.record(5);
        a.record(1000);
        let b = Histogram::new();
        b.merge_snapshot(&a.snapshot());
        b.merge_snapshot(&a.snapshot());
        let s = b.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 2 * (5 + 1000));
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn span_records_elapsed_time() {
        let h = Arc::new(Histogram::new());
        {
            let _span = h.span();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.max >= 2_000_000, "span recorded {} ns", s.max);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 4000);
    }
}
