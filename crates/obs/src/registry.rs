//! The named-metric registry: counters, gauges and histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`crate::Histogram`]) are `Arc`s
//! resolved **once** per name, so the name lookup (a mutexed map) stays
//! off every hot path; recording through a handle is a single relaxed
//! `fetch_add`. Each registry carries a runtime switch shared by all of
//! its metrics: while off, every record call is one relaxed flag load and
//! no read-modify-write. Compiling with the `noop` feature removes even
//! that (see `Cargo.toml`).

use crate::hist::{Histogram, SpanTimer};
use crate::process_cpu_nanos;
use crate::snapshot::{MetricSnapshot, MetricValue, MetricsSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The shared gate check every record path runs first.
#[inline]
pub(crate) fn flag_is_on(flag: &AtomicBool) -> bool {
    #[cfg(feature = "noop")]
    {
        let _ = flag;
        false
    }
    #[cfg(not(feature = "noop"))]
    {
        flag.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing named counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    fn with_flag(enabled: Arc<AtomicBool>) -> Self {
        Self {
            value: AtomicU64::new(0),
            enabled,
        }
    }

    /// Adds `n` (no-op while the registry is disabled).
    pub fn add(&self, n: u64) {
        if flag_is_on(&self.enabled) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A named signed gauge (set/adjust semantics, e.g. a queue depth).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    fn with_flag(enabled: Arc<AtomicBool>) -> Self {
        Self {
            value: AtomicI64::new(0),
            enabled,
        }
    }

    /// Sets the gauge (no-op while the registry is disabled).
    pub fn set(&self, v: i64) {
        if flag_is_on(&self.enabled) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the gauge by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        if flag_is_on(&self.enabled) {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A process-wide (or test-local) registry of named metrics.
///
/// Names follow the dotted scheme documented in [`crate::names`]
/// (`subsystem.metric_unit`). Looking a name up registers it on first
/// use; re-registering the same name returns the same underlying metric,
/// and asking for it under a different kind panics — a naming-scheme
/// violation is a programming error, not a runtime condition.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An enabled, empty registry. The process-wide [`crate::global`]
    /// registry starts **disabled** instead; test-local registries are
    /// usually wanted live immediately.
    pub fn new() -> Self {
        let r = Self::default();
        r.set_enabled(true);
        r
    }

    /// Flips the runtime switch shared by every metric of this registry.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently on. Callers with per-run publication
    /// blocks (several registry lookups) should gate on this once rather
    /// than rely on each metric's internal check.
    pub fn is_enabled(&self) -> bool {
        flag_is_on(&self.enabled)
    }

    fn resolve(&self, name: &str, make: impl FnOnce(Arc<AtomicBool>) -> Metric) -> Metric {
        let mut map = self.metrics.lock().expect("metrics registry poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| make(Arc::clone(&self.enabled)))
            .clone()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.resolve(name, |f| Metric::Counter(Arc::new(Counter::with_flag(f)))) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.resolve(name, |f| Metric::Gauge(Arc::new(Gauge::with_flag(f)))) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.resolve(name, |f| {
            Metric::Histogram(Arc::new(Histogram::with_flag(f)))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Starts an RAII wall-clock span recording into the histogram named
    /// `name` when dropped.
    pub fn span(&self, name: &str) -> SpanTimer {
        self.histogram(name).span()
    }

    /// Starts a build-stage timer: wall time goes to `<prefix>_nanos`
    /// (histogram), process CPU time to `<prefix>_cpu_nanos` (counter;
    /// scheduler-tick granularity, Linux only — see
    /// [`crate::process_cpu_nanos`]).
    pub fn stage_span(&self, prefix: &str) -> StageTimer {
        let cpu_start = self.is_enabled().then(process_cpu_nanos).flatten();
        StageTimer {
            wall: self.histogram(&format!("{prefix}_nanos")),
            cpu: self.counter(&format!("{prefix}_cpu_nanos")),
            start: Instant::now(),
            cpu_start,
        }
    }

    /// Point-in-time copy of every registered metric, name-sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            entries: map
                .iter()
                .map(|(name, metric)| MetricSnapshot {
                    name: name.clone(),
                    value: match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }

    /// Zeroes every registered metric (handles stay valid).
    pub fn reset(&self) {
        let map = self.metrics.lock().expect("metrics registry poisoned");
        for metric in map.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

/// RAII build-stage timer pairing a wall-time histogram with a process-CPU
/// counter; see [`MetricsRegistry::stage_span`].
#[derive(Debug)]
pub struct StageTimer {
    wall: Arc<Histogram>,
    cpu: Arc<Counter>,
    start: Instant,
    cpu_start: Option<u64>,
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        self.wall.record(self.start.elapsed().as_nanos() as u64);
        if let (Some(before), Some(after)) = (self.cpu_start, process_cpu_nanos()) {
            self.cpu.add(after.saturating_sub(before));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = MetricsRegistry::new();
        let c = r.counter("test.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name resolves to the same metric.
        assert_eq!(r.counter("test.count").get(), 5);
        let g = r.gauge("test.depth");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricsRegistry::new();
        let c = r.counter("test.count");
        let h = r.histogram("test.nanos");
        r.set_enabled(false);
        assert!(!r.is_enabled());
        c.add(10);
        h.record(10);
        r.gauge("test.depth").set(3);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(r.gauge("test.depth").get(), 0);
        // Flipping back on re-activates the very same handles.
        r.set_enabled(true);
        c.add(10);
        h.record(10);
        assert_eq!(c.get(), 10);
        assert_eq!(h.count(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("test.count");
        r.gauge("test.count");
    }

    #[test]
    fn snapshot_is_name_sorted_and_reset_zeroes() {
        let r = MetricsRegistry::new();
        r.counter("b.two").add(2);
        r.counter("a.one").add(1);
        r.histogram("c.nanos").record(42);
        let s = r.snapshot();
        let names: Vec<&str> = s.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a.one", "b.two", "c.nanos"]);
        r.reset();
        for e in r.snapshot().entries {
            match e.value {
                MetricValue::Counter(v) => assert_eq!(v, 0, "{}", e.name),
                MetricValue::Gauge(v) => assert_eq!(v, 0, "{}", e.name),
                MetricValue::Histogram(h) => assert_eq!(h.count, 0, "{}", e.name),
            }
        }
    }

    #[test]
    fn stage_span_times_wall_and_cpu() {
        let r = MetricsRegistry::new();
        {
            let _t = r.stage_span("test.stage");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let wall = r.histogram("test.stage_nanos").snapshot();
        assert_eq!(wall.count, 1);
        assert!(wall.max >= 1_000_000);
        // CPU time is best-effort (tick granularity); just ensure the
        // counter exists and is readable.
        let _ = r.counter("test.stage_cpu_nanos").get();
    }
}
