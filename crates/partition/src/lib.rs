//! Data- and space-oriented partitioning substrates.
//!
//! * [`str_partition`] — the Sort-Tile-Recursive bulk-loading partitioner
//!   (Leutenegger et al., ICDE '97). TRANSFORMERS partitions both datasets
//!   with it (paper §IV "Partitioning"), GIPSY partitions the dense side,
//!   and the R-Tree baseline is STR-bulkloaded (§VII-A).
//!   [`str_partition_pooled`] is the same partitioner with the coordinate
//!   sorts and the per-slab passes fanned out over a
//!   [`tfm_pool::StagePool`]; it returns the **identical** partition
//!   vector at any thread count, which is what keeps parallel index
//!   builds byte-identical to sequential ones.
//! * [`UniformGrid`] — the uniform space tiling used by PBSM and by
//!   TRANSFORMERS' connectivity self-join (§IV "Connectivity").
//! * [`IndexBuildPipeline`] — the staged, data-parallel bulk-load
//!   pipeline (STR partition stage + order-preserving page encode/write
//!   stage over a `tfm_pool::StagePool`) shared by the TRANSFORMERS
//!   index build, GIPSY's sparse file and the STR-packed R-Tree.
//!
//! STR returns, for every partition, **two** bounding boxes exactly as the
//! paper's space descriptors store them (§IV "Data Organization"):
//!
//! * the **page MBB** — tight box around the partition's elements;
//! * the **partition MBB** — the slab region of the recursive sort-split,
//!   extended to the dataset extent, so that partition MBBs *tile* space
//!   with no gaps. Without it, "there may be gaps between two neighboring
//!   page MBBs … and TRANSFORMERS cannot navigate between them".

#![warn(missing_docs)]

mod grid;
mod pipeline;
mod str;

pub use grid::UniformGrid;
pub use pipeline::IndexBuildPipeline;
pub use str::{str_partition, str_partition_pooled, StrPartition};
