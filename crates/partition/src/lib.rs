//! Data- and space-oriented partitioning substrates.
//!
//! * [`str_partition`] — the Sort-Tile-Recursive bulk-loading partitioner
//!   (Leutenegger et al., ICDE '97). TRANSFORMERS partitions both datasets
//!   with it (paper §IV "Partitioning"), GIPSY partitions the dense side,
//!   and the R-Tree baseline is STR-bulkloaded (§VII-A).
//! * [`UniformGrid`] — the uniform space tiling used by PBSM and by
//!   TRANSFORMERS' connectivity self-join (§IV "Connectivity").
//!
//! STR returns, for every partition, **two** bounding boxes exactly as the
//! paper's space descriptors store them (§IV "Data Organization"):
//!
//! * the **page MBB** — tight box around the partition's elements;
//! * the **partition MBB** — the slab region of the recursive sort-split,
//!   extended to the dataset extent, so that partition MBBs *tile* space
//!   with no gaps. Without it, "there may be gaps between two neighboring
//!   page MBBs … and TRANSFORMERS cannot navigate between them".

#![warn(missing_docs)]

mod grid;
mod str;

pub use grid::UniformGrid;
pub use str::{str_partition, StrPartition};
