//! Sort-Tile-Recursive partitioning, sequential and pooled.

use tfm_geom::{Aabb, HasMbb};
use tfm_pool::StagePool;

/// One STR partition: its items plus the two descriptor boxes.
#[derive(Debug, Clone)]
pub struct StrPartition<T> {
    /// The items assigned to this partition (at most `capacity`).
    pub items: Vec<T>,
    /// Tight bounding box of the items ("page MBB", paper §IV).
    pub page_mbb: Aabb,
    /// The slab region of the sort-split; partition MBBs of all partitions
    /// tile the dataset extent with no gaps ("partition MBB", paper §IV).
    pub partition_mbb: Aabb,
}

/// Partitions `items` into groups of at most `capacity` with 3-D STR.
///
/// The items are sorted by x-center and cut into vertical slabs, each slab
/// is sorted by y-center and cut into runs, and each run is sorted by
/// z-center and chunked into final partitions. Consecutive partitions are
/// spatially adjacent, so writing them to disk in order preserves spatial
/// locality (paper §IV: "spatially close elements are stored on the same
/// disk page").
///
/// Slab boundaries are the midpoints between neighbouring sort keys,
/// extended to the dataset extent at the edges — this is what makes the
/// partition MBBs a gap-free tiling (verified by property tests).
///
/// # Panics
/// Panics if `capacity == 0`.
pub fn str_partition<T: HasMbb>(items: Vec<T>, capacity: usize) -> Vec<StrPartition<T>> {
    assert!(capacity > 0, "partition capacity must be positive");
    if items.is_empty() {
        return Vec::new();
    }
    let plan = StrPlan::new(&items, capacity);
    let x_slabs = split_sorted(items, 0, plan.sx, plan.per_x_slab);
    with_bounds(x_slabs, plan.extent.min.x, plan.extent.max.x, 0)
        .into_iter()
        .flat_map(|(x_lo, x_hi, slab)| partition_slab(slab, x_lo, x_hi, &plan))
        .collect()
}

/// [`str_partition`] with the sorts and the per-slab y/z passes fanned out
/// over `pool`.
///
/// The result is **identical** to the sequential [`str_partition`] at any
/// thread count: the x-coordinate sort uses the pool's stable merge sort
/// (same output as `sort_by`), and each x-slab — an independent unit of
/// work after the x pass — is partitioned by exactly the sequential code,
/// with the slabs' outputs concatenated in slab order. Index builds
/// therefore lay out byte-identical pages however many build threads run
/// (verified by equivalence property tests).
pub fn str_partition_pooled<T: HasMbb + Send>(
    mut items: Vec<T>,
    capacity: usize,
    pool: &StagePool,
) -> Vec<StrPartition<T>> {
    assert!(capacity > 0, "partition capacity must be positive");
    if pool.is_sequential() {
        return str_partition(items, capacity);
    }
    if items.is_empty() {
        return Vec::new();
    }
    let plan = StrPlan::new(&items, capacity);
    pool.sort_by(&mut items, |a, b| {
        a.center().coord(0).total_cmp(&b.center().coord(0))
    });
    let x_slabs = split_runs(items, plan.sx, plan.per_x_slab);
    let slabs = with_bounds(x_slabs, plan.extent.min.x, plan.extent.max.x, 0);
    pool.map_owned(slabs, |_, (x_lo, x_hi, slab)| {
        partition_slab(slab, x_lo, x_hi, &plan)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// The split geometry shared by the sequential and pooled partitioners.
struct StrPlan {
    extent: Aabb,
    /// Number of x-slabs: sx ≈ p^(1/3).
    sx: usize,
    per_x_slab: usize,
    /// y-runs per x-slab: sy ≈ sqrt(p/sx).
    sy: usize,
    capacity: usize,
}

impl StrPlan {
    fn new<T: HasMbb>(items: &[T], capacity: usize) -> Self {
        let extent = Aabb::union_all(items.iter().map(|i| i.mbb()));
        let n = items.len();
        let p = n.div_ceil(capacity);
        let sx = (p as f64).cbrt().ceil() as usize;
        let per_x_slab = n.div_ceil(sx);
        let p_per_slab = p.div_ceil(sx);
        let sy = (p_per_slab as f64).sqrt().ceil() as usize;
        Self {
            extent,
            sx,
            per_x_slab,
            sy,
            capacity,
        }
    }
}

/// The y/z passes over one x-slab — the independent unit of work the
/// pooled partitioner fans out.
fn partition_slab<T: HasMbb>(
    slab: Vec<T>,
    x_lo: f64,
    x_hi: f64,
    plan: &StrPlan,
) -> Vec<StrPartition<T>> {
    let mut out = Vec::new();
    let per_y_run = slab.len().div_ceil(plan.sy);
    let y_runs = split_sorted(slab, 1, plan.sy, per_y_run);
    for (y_lo, y_hi, run) in with_bounds(y_runs, plan.extent.min.y, plan.extent.max.y, 1) {
        let chunks = split_sorted(run, 2, usize::MAX, plan.capacity);
        for (z_lo, z_hi, chunk) in with_bounds(chunks, plan.extent.min.z, plan.extent.max.z, 2) {
            debug_assert!(!chunk.is_empty());
            let page_mbb = Aabb::union_all(chunk.iter().map(|i| i.mbb()));
            let partition_mbb = Aabb::new(
                tfm_geom::Point3::new(x_lo, y_lo, z_lo),
                tfm_geom::Point3::new(x_hi, y_hi, z_hi),
            );
            out.push(StrPartition {
                items: chunk,
                page_mbb,
                partition_mbb,
            });
        }
    }
    out
}

/// Sorts `items` by center along `dim` and splits into runs of
/// `per_run` items (at most `max_runs` runs; the last run absorbs any
/// remainder if the cap is hit).
fn split_sorted<T: HasMbb>(
    mut items: Vec<T>,
    dim: usize,
    max_runs: usize,
    per_run: usize,
) -> Vec<Vec<T>> {
    items.sort_by(|a, b| a.center().coord(dim).total_cmp(&b.center().coord(dim)));
    split_runs(items, max_runs, per_run)
}

/// Splits already-sorted `items` into runs of `per_run` (at most
/// `max_runs`; the last run absorbs any remainder if the cap is hit).
fn split_runs<T>(items: Vec<T>, max_runs: usize, per_run: usize) -> Vec<Vec<T>> {
    let mut runs: Vec<Vec<T>> = Vec::new();
    let mut it = items.into_iter().peekable();
    while it.peek().is_some() {
        if runs.len() + 1 == max_runs {
            runs.push(it.by_ref().collect());
            break;
        }
        let run: Vec<T> = it.by_ref().take(per_run).collect();
        runs.push(run);
    }
    runs
}

/// Computes tiling bounds for runs sorted along dimension `dim`: boundaries
/// are midpoints between the last center of a run and the first center of
/// the next, with the outermost bounds extended to the dataset extent.
/// Midpoints are additionally clamped to be non-decreasing so that
/// duplicate sort keys cannot produce inverted slabs.
fn with_bounds<T: HasMbb>(
    runs: Vec<Vec<T>>,
    lo: f64,
    hi: f64,
    dim: usize,
) -> Vec<(f64, f64, Vec<T>)> {
    let n = runs.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        let only = runs.into_iter().next().expect("n == 1");
        return vec![(lo, hi, only)];
    }

    let mut bounds = Vec::with_capacity(n + 1);
    bounds.push(lo);
    for w in runs.windows(2) {
        let last = w[0].last().expect("runs are non-empty").center().coord(dim);
        let first = w[1]
            .first()
            .expect("runs are non-empty")
            .center()
            .coord(dim);
        let prev = *bounds.last().expect("non-empty bounds");
        bounds.push(((last + first) * 0.5).clamp(prev, hi));
    }
    bounds.push(hi);

    runs.into_iter()
        .enumerate()
        .map(|(i, run)| (bounds[i], bounds[i + 1].max(bounds[i]), run))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_geom::{Point3, SpatialElement};

    fn pt_elem(id: u64, x: f64, y: f64, z: f64) -> SpatialElement {
        SpatialElement::new(id, Aabb::from_point(Point3::new(x, y, z)))
    }

    fn grid_elems(n: usize) -> Vec<SpatialElement> {
        let mut v = Vec::new();
        let mut id = 0;
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    v.push(pt_elem(id, x as f64, y as f64, z as f64));
                    id += 1;
                }
            }
        }
        v
    }

    #[test]
    fn empty_input_gives_no_partitions() {
        let parts = str_partition(Vec::<SpatialElement>::new(), 10);
        assert!(parts.is_empty());
    }

    #[test]
    fn single_partition_when_under_capacity() {
        let elems = grid_elems(2); // 8 elements
        let parts = str_partition(elems.clone(), 100);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].items.len(), 8);
        let extent = Aabb::union_all(elems.iter().map(|e| e.mbb));
        assert_eq!(parts[0].partition_mbb, extent);
        assert_eq!(parts[0].page_mbb, extent);
    }

    #[test]
    fn every_item_lands_in_exactly_one_partition() {
        let elems = grid_elems(6); // 216
        let parts = str_partition(elems.clone(), 10);
        let mut ids: Vec<u64> = parts
            .iter()
            .flat_map(|p| p.items.iter().map(|e| e.id))
            .collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (0..216).collect();
        assert_eq!(ids, expected);
        for p in &parts {
            assert!(p.items.len() <= 10);
            assert!(!p.items.is_empty());
        }
    }

    #[test]
    fn page_mbb_is_tight_and_inside_items_union() {
        let elems = grid_elems(5);
        for p in str_partition(elems, 12) {
            let tight = Aabb::union_all(p.items.iter().map(|e| e.mbb));
            assert_eq!(p.page_mbb, tight);
        }
    }

    #[test]
    fn partition_mbbs_cover_every_item_center() {
        let elems = grid_elems(6);
        for p in str_partition(elems, 9) {
            for item in &p.items {
                assert!(
                    p.partition_mbb.contains_point(&item.center()),
                    "{:?} outside {:?}",
                    item.center(),
                    p.partition_mbb
                );
            }
        }
    }

    #[test]
    fn partition_mbbs_tile_without_gaps() {
        // Total volume of partition MBBs equals the extent volume, and no
        // two partition MBBs overlap with positive volume.
        let elems = grid_elems(6);
        let parts = str_partition(elems, 9);
        let extent = Aabb::union_all(parts.iter().map(|p| p.partition_mbb));
        let total: f64 = parts.iter().map(|p| p.partition_mbb.volume()).sum();
        assert!(
            (total - extent.volume()).abs() < 1e-6 * extent.volume(),
            "tiling volume {total} vs extent {}",
            extent.volume()
        );
        for (i, a) in parts.iter().enumerate() {
            for b in parts.iter().skip(i + 1) {
                let overlap = a
                    .partition_mbb
                    .intersection(&b.partition_mbb)
                    .map(|x| x.volume())
                    .unwrap_or(0.0);
                assert!(overlap < 1e-9, "partitions overlap by {overlap}");
            }
        }
    }

    #[test]
    fn partition_count_is_near_optimal() {
        let elems = grid_elems(6); // 216 items
        let parts = str_partition(elems, 10); // ⌈216/10⌉ = 22 minimum
        assert!(parts.len() >= 22);
        assert!(parts.len() <= 40, "too many partitions: {}", parts.len());
    }

    #[test]
    fn duplicate_coordinates_are_handled() {
        // All elements at the same point: degenerate extent.
        let elems: Vec<_> = (0..50).map(|i| pt_elem(i, 1.0, 1.0, 1.0)).collect();
        let parts = str_partition(elems, 8);
        let total: usize = parts.iter().map(|p| p.items.len()).sum();
        assert_eq!(total, 50);
        for p in &parts {
            assert!(p.items.len() <= 8);
        }
    }

    #[test]
    fn pooled_partitioning_matches_sequential_exactly() {
        // Non-trivial sizes with duplicate coordinates so both the stable
        // sort and the slab fan-out are exercised.
        let mut elems = grid_elems(6); // 216 items
        elems.extend((0..40).map(|i| pt_elem(1000 + i, 2.0, 2.0, 2.0)));
        for cap in [1, 7, 10, 50] {
            let seq = str_partition(elems.clone(), cap);
            for threads in [1, 2, 3, 4, 8] {
                let pooled = str_partition_pooled(elems.clone(), cap, &StagePool::new(threads));
                assert_eq!(pooled.len(), seq.len(), "cap {cap} threads {threads}");
                for (a, b) in pooled.iter().zip(&seq) {
                    assert_eq!(a.page_mbb, b.page_mbb, "cap {cap} threads {threads}");
                    assert_eq!(a.partition_mbb, b.partition_mbb);
                    let ids_a: Vec<u64> = a.items.iter().map(|e| e.id).collect();
                    let ids_b: Vec<u64> = b.items.iter().map(|e| e.id).collect();
                    assert_eq!(ids_a, ids_b, "cap {cap} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn works_for_generic_mbb_items() {
        // STR over plain Aabbs (as used when grouping space units into nodes).
        let boxes: Vec<Aabb> = (0..30)
            .map(|i| {
                let f = i as f64;
                Aabb::new(Point3::new(f, 0.0, 0.0), Point3::new(f + 0.5, 1.0, 1.0))
            })
            .collect();
        let parts = str_partition(boxes, 4);
        let total: usize = parts.iter().map(|p| p.items.len()).sum();
        assert_eq!(total, 30);
    }
}
