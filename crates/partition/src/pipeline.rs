//! The staged, data-parallel index-build pipeline (paper §IV, parallelized).
//!
//! Every disk-resident structure in the reproduction is bulk-loaded the
//! same way: STR-partition a set of spatial items, encode each partition
//! into one page image, and write the images to a contiguous page run.
//! [`IndexBuildPipeline`] packages those stages once, fanned out over a
//! [`StagePool`], and is shared by
//!
//! * `TransformersIndex::build` (the `transformers` core crate, which
//!   re-exports this type) — both STR passes, the element-page encoding
//!   and the connectivity self-join run on the pipeline's pool;
//! * GIPSY's `SparseFile` (the `tfm-gipsy` crate) — sparse-side pages;
//! * the STR-packed R-Tree baseline (the `tfm-rtree` crate) — leaf and
//!   inner levels.
//!
//! It lives here — above `tfm-pool` and `tfm-storage`, below every index
//! crate — so the baselines stay decoupled from the TRANSFORMERS core.
//!
//! **Determinism.** All stages are order-preserving: partitioning uses
//! [`str_partition_pooled`] (identical partition vector at any thread
//! count), page images are encoded in parallel but **written sequentially
//! in page order** — so both the bytes on disk and the simulated I/O
//! accounting (sequential-write classification) are independent of the
//! worker count. A build with `build_threads = 8` produces byte-identical
//! disk pages, metadata and B+-tree to a sequential build; only wall time
//! changes. The `build_determinism` test checksums whole disks to hold the
//! pipeline to that.

use crate::str::{str_partition_pooled, StrPartition};
use tfm_geom::HasMbb;
use tfm_pool::StagePool;
use tfm_storage::{Disk, PageId};

/// A reusable, staged, data-parallel index builder: a worker pool plus the
/// order-preserving bulk-load stages every index in the workspace shares.
#[derive(Debug, Clone, Copy)]
pub struct IndexBuildPipeline {
    pool: StagePool,
}

impl IndexBuildPipeline {
    /// A pipeline fanning its stages over `build_threads` workers
    /// (`0` is clamped to 1).
    pub fn new(build_threads: usize) -> Self {
        Self {
            pool: StagePool::new(build_threads),
        }
    }

    /// The single-threaded pipeline: every stage runs inline.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The underlying pool, for stages that need custom fan-out shapes
    /// (e.g. the connectivity self-join's per-node neighbour scan).
    pub fn pool(&self) -> &StagePool {
        &self.pool
    }

    /// **Partition stage**: STR-partitions `items` into groups of at most
    /// `capacity`, with the coordinate sorts and per-slab passes fanned out
    /// over the pool. Identical output to the sequential partitioner at any
    /// thread count.
    pub fn partition<T: HasMbb + Send>(
        &self,
        items: Vec<T>,
        capacity: usize,
    ) -> Vec<StrPartition<T>> {
        let _stage = tfm_obs::global().stage_span(tfm_obs::names::BUILD_PARTITION);
        str_partition_pooled(items, capacity, &self.pool)
    }

    /// **Encode + write stage**: produces `count` page images with `encode`
    /// (fanned out over the pool, collected in index order) and writes them
    /// to a freshly allocated contiguous run **sequentially in page order**,
    /// so the on-disk bytes and the sequential-write I/O accounting match a
    /// single-threaded build exactly. Returns the first page of the run.
    ///
    /// `encode(i, buf)` serializes page `i` into `buf` (handed in empty):
    /// the sequential pipeline streams encode→write one page at a time
    /// through **one reused buffer** (zero per-page allocation — pair it
    /// with `ElementPageCodec::encode_into`); parallel pipelines fan the
    /// encoding out in bounded batches so peak memory stays at a few
    /// thousand page images, not the whole file.
    pub fn encode_and_write<F>(&self, disk: &Disk, count: usize, encode: F) -> PageId
    where
        F: Fn(usize, &mut Vec<u8>) + Sync,
    {
        self.encode_run(disk, count, move |_, i, buf| encode(i, buf))
    }

    /// [`encode_and_write`](Self::encode_and_write) for encoders that must
    /// know the page run before producing bytes — e.g. the B+-tree's leaf
    /// level, where each page stores a next-leaf pointer to its physical
    /// successor. The run is allocated first and its first page id passed
    /// to every `encode(first, i)` call; everything else (parallel encode,
    /// sequential in-order writes, byte-determinism) is identical.
    pub fn encode_run<F>(&self, disk: &Disk, count: usize, encode: F) -> PageId
    where
        F: Fn(PageId, usize, &mut Vec<u8>) + Sync,
    {
        let _stage = tfm_obs::global().stage_span(tfm_obs::names::BUILD_ENCODE_WRITE);
        let first = disk.allocate_contiguous(count as u64);
        if self.pool.is_sequential() {
            // One buffer for the whole run: `encode` fills it in place.
            let mut buf = Vec::new();
            for i in 0..count {
                buf.clear();
                encode(first, i, &mut buf);
                disk.write_page(PageId(first.0 + i as u64), &buf);
            }
            return first;
        }
        // Batch sizing trades the per-batch scope spawn/join against peak
        // memory: a few thousand in-flight page images (single-digit MiB
        // at typical page sizes) amortizes the thread churn to a handful
        // of scopes even for million-page builds.
        let batch = (self.pool.threads() * 512).max(2048);
        let mut start = 0;
        while start < count {
            let end = (start + batch).min(count);
            let images = self.pool.map_range(end - start, |i| {
                let mut buf = Vec::new();
                encode(first, start + i, &mut buf);
                buf
            });
            for (i, image) in images.iter().enumerate() {
                disk.write_page(PageId(first.0 + (start + i) as u64), image);
            }
            start = end;
        }
        first
    }

    /// Convenience wrapper over [`encode_and_write`](Self::encode_and_write)
    /// for the common "one partition = one page" layout. Returns the first
    /// page; partition `i` lives on page `first + i`.
    pub fn pack_pages<T, F>(&self, disk: &Disk, parts: &[StrPartition<T>], encode: F) -> PageId
    where
        T: Sync,
        F: Fn(&StrPartition<T>, &mut Vec<u8>) + Sync,
    {
        self.encode_and_write(disk, parts.len(), |i, buf| encode(&parts[i], buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_geom::{Aabb, Point3, SpatialElement};
    use tfm_storage::ElementPageCodec;

    fn elems(n: usize) -> Vec<SpatialElement> {
        (0..n)
            .map(|i| {
                let f = i as f64;
                SpatialElement::new(
                    i as u64,
                    Aabb::new(
                        Point3::new(f, f * 0.5, -f),
                        Point3::new(f + 1.0, f * 0.5 + 1.0, -f + 1.0),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn pack_pages_writes_identical_bytes_at_any_thread_count() {
        let reference = {
            let disk = Disk::in_memory(512);
            let pipe = IndexBuildPipeline::sequential();
            let codec = ElementPageCodec::new(512);
            let parts = pipe.partition(elems(500), codec.capacity());
            let first = pipe.pack_pages(&disk, &parts, |p, buf| codec.encode_into(&p.items, buf));
            (0..parts.len())
                .map(|i| disk.read_page_vec(PageId(first.0 + i as u64)))
                .collect::<Vec<_>>()
        };
        for threads in [2, 4] {
            let disk = Disk::in_memory(512);
            let pipe = IndexBuildPipeline::new(threads);
            let codec = ElementPageCodec::new(512);
            let parts = pipe.partition(elems(500), codec.capacity());
            let first = pipe.pack_pages(&disk, &parts, |p, buf| codec.encode_into(&p.items, buf));
            let got: Vec<_> = (0..parts.len())
                .map(|i| disk.read_page_vec(PageId(first.0 + i as u64)))
                .collect();
            assert_eq!(got, reference, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_writes_stay_sequentially_classified() {
        // The deterministic write order is also what keeps the simulated
        // I/O accounting honest: a contiguous run written in order is all
        // sequential writes after the first.
        let disk = Disk::in_memory(256);
        let pipe = IndexBuildPipeline::new(4);
        let first = pipe.encode_and_write(&disk, 64, |i, buf| buf.resize(16, i as u8));
        assert_eq!(first, PageId(0));
        let s = disk.stats();
        assert_eq!(s.rand_writes, 1);
        assert_eq!(s.seq_writes, 63);
    }

    #[test]
    fn batched_parallel_encode_spans_batch_boundaries() {
        // 5000 pages > the 2048-image minimum batch, so the parallel path
        // takes several batches; bytes must still match the streaming
        // sequential path exactly.
        let encode = |i: usize, buf: &mut Vec<u8>| buf.resize(32, (i % 251) as u8);
        let seq_disk = Disk::in_memory(64);
        IndexBuildPipeline::sequential().encode_and_write(&seq_disk, 5000, encode);
        let par_disk = Disk::in_memory(64);
        IndexBuildPipeline::new(4).encode_and_write(&par_disk, 5000, encode);
        assert_eq!(seq_disk.allocated_pages(), par_disk.allocated_pages());
        for p in 0..5000 {
            assert_eq!(
                seq_disk.read_page_vec(PageId(p)),
                par_disk.read_page_vec(PageId(p)),
                "page {p}"
            );
        }
        // Batch boundaries leave no seams in the I/O classification.
        assert_eq!(par_disk.stats().rand_writes, 1);
        assert_eq!(par_disk.stats().seq_writes, 4999);
    }

    #[test]
    fn zero_pages_allocate_nothing() {
        let disk = Disk::in_memory(256);
        let pipe = IndexBuildPipeline::new(2);
        pipe.encode_and_write(&disk, 0, |_, _: &mut Vec<u8>| {});
        assert_eq!(disk.allocated_pages(), 0);
    }
}
