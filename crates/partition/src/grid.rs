//! Uniform space tiling.

use tfm_geom::{Aabb, Point3};

/// A uniform grid over an extent, with `n[d]` cells along dimension `d`.
///
/// This is the space-oriented partitioning PBSM uses (paper §VIII-B) and
/// the tool TRANSFORMERS' connectivity self-join is built on (§IV).
/// Cell ids are dense in `0..cell_count()`, x-major.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    extent: Aabb,
    n: [usize; 3],
    cell_size: [f64; 3],
}

impl UniformGrid {
    /// Creates a grid of `n[d]` cells per dimension over `extent`.
    ///
    /// # Panics
    /// Panics if any dimension has zero cells.
    pub fn new(extent: Aabb, n: [usize; 3]) -> Self {
        assert!(
            n.iter().all(|&c| c > 0),
            "grid must have cells in every dimension"
        );
        let cell_size = [
            extent.extent(0) / n[0] as f64,
            extent.extent(1) / n[1] as f64,
            extent.extent(2) / n[2] as f64,
        ];
        Self {
            extent,
            n,
            cell_size,
        }
    }

    /// Creates a cubic grid with `n` cells per dimension.
    pub fn cubic(extent: Aabb, n: usize) -> Self {
        Self::new(extent, [n, n, n])
    }

    /// The extent tiled by this grid.
    #[inline]
    pub fn extent(&self) -> &Aabb {
        &self.extent
    }

    /// Cells per dimension.
    #[inline]
    pub fn dims(&self) -> [usize; 3] {
        self.n
    }

    /// Total number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.n[0] * self.n[1] * self.n[2]
    }

    /// Dense id of the cell with coordinates `(x, y, z)`.
    #[inline]
    pub fn cell_id(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.n[0] && y < self.n[1] && z < self.n[2]);
        (z * self.n[1] + y) * self.n[0] + x
    }

    /// Cell coordinates of a dense id.
    #[inline]
    pub fn cell_coords(&self, id: usize) -> [usize; 3] {
        let x = id % self.n[0];
        let y = (id / self.n[0]) % self.n[1];
        let z = id / (self.n[0] * self.n[1]);
        [x, y, z]
    }

    /// The spatial box of cell `id`; the last cell in each dimension is
    /// extended to the extent boundary so cells tile it exactly.
    pub fn cell_box(&self, id: usize) -> Aabb {
        let [x, y, z] = self.cell_coords(id);
        let min = Point3::new(
            self.extent.min.x + x as f64 * self.cell_size[0],
            self.extent.min.y + y as f64 * self.cell_size[1],
            self.extent.min.z + z as f64 * self.cell_size[2],
        );
        let max = Point3::new(
            if x + 1 == self.n[0] {
                self.extent.max.x
            } else {
                min.x + self.cell_size[0]
            },
            if y + 1 == self.n[1] {
                self.extent.max.y
            } else {
                min.y + self.cell_size[1]
            },
            if z + 1 == self.n[2] {
                self.extent.max.z
            } else {
                min.z + self.cell_size[2]
            },
        );
        Aabb::new(min, max)
    }

    /// Inclusive range of cell coordinates overlapped by `mbb` (clamped to
    /// the grid).
    pub fn cell_range(&self, mbb: &Aabb) -> ([usize; 3], [usize; 3]) {
        let mut lo = [0usize; 3];
        let mut hi = [0usize; 3];
        for d in 0..3 {
            let cs = self.cell_size[d];
            let (l, h) = if cs > 0.0 {
                (
                    ((mbb.min.coord(d) - self.extent.min.coord(d)) / cs).floor() as i64,
                    ((mbb.max.coord(d) - self.extent.min.coord(d)) / cs).floor() as i64,
                )
            } else {
                (0, 0)
            };
            lo[d] = l.clamp(0, self.n[d] as i64 - 1) as usize;
            hi[d] = h.clamp(0, self.n[d] as i64 - 1) as usize;
        }
        (lo, hi)
    }

    /// Iterates over the dense ids of all cells overlapped by `mbb`.
    pub fn cells_overlapping<'a>(&'a self, mbb: &Aabb) -> impl Iterator<Item = usize> + 'a {
        let (lo, hi) = self.cell_range(mbb);
        (lo[2]..=hi[2]).flat_map(move |z| {
            (lo[1]..=hi[1]).flat_map(move |y| (lo[0]..=hi[0]).map(move |x| self.cell_id(x, y, z)))
        })
    }

    /// The cell containing point `p` (clamped onto the grid).
    pub fn cell_of_point(&self, p: &Point3) -> usize {
        let (lo, _) = self.cell_range(&Aabb::from_point(*p));
        self.cell_id(lo[0], lo[1], lo[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid(n: usize) -> UniformGrid {
        UniformGrid::cubic(
            Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(10.0, 10.0, 10.0)),
            n,
        )
    }

    #[test]
    fn ids_and_coords_roundtrip() {
        let g = UniformGrid::new(
            Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(6.0, 4.0, 2.0)),
            [3, 2, 1],
        );
        assert_eq!(g.cell_count(), 6);
        for id in 0..g.cell_count() {
            let [x, y, z] = g.cell_coords(id);
            assert_eq!(g.cell_id(x, y, z), id);
        }
    }

    #[test]
    fn cell_boxes_tile_extent() {
        let g = unit_grid(4);
        let total: f64 = (0..g.cell_count()).map(|id| g.cell_box(id).volume()).sum();
        assert!((total - 1000.0).abs() < 1e-9);
        let union = Aabb::union_all((0..g.cell_count()).map(|id| g.cell_box(id)));
        assert_eq!(union, *g.extent());
    }

    #[test]
    fn overlap_enumeration_matches_geometry() {
        let g = unit_grid(5);
        let probe = Aabb::new(Point3::new(1.5, 1.5, 1.5), Point3::new(4.5, 2.5, 2.0));
        let cells: Vec<usize> = g.cells_overlapping(&probe).collect();
        for id in 0..g.cell_count() {
            let should = g.cell_box(id).intersects(&probe);
            assert_eq!(cells.contains(&id), should, "cell {id}");
        }
    }

    #[test]
    fn out_of_extent_boxes_clamp() {
        let g = unit_grid(2);
        let probe = Aabb::new(
            Point3::new(-100.0, -100.0, -100.0),
            Point3::new(-50.0, -50.0, -50.0),
        );
        let cells: Vec<usize> = g.cells_overlapping(&probe).collect();
        assert_eq!(cells, vec![0]); // clamped to the nearest cell
    }

    #[test]
    fn point_location() {
        let g = unit_grid(10);
        assert_eq!(
            g.cell_of_point(&Point3::new(0.5, 0.5, 0.5)),
            g.cell_id(0, 0, 0)
        );
        assert_eq!(
            g.cell_of_point(&Point3::new(9.9, 9.9, 9.9)),
            g.cell_id(9, 9, 9)
        );
        // The extent max corner belongs to the last cell, not one past it.
        assert_eq!(
            g.cell_of_point(&Point3::new(10.0, 10.0, 10.0)),
            g.cell_id(9, 9, 9)
        );
    }

    #[test]
    fn degenerate_extent_dimension() {
        let g = UniformGrid::new(
            Aabb::new(Point3::new(0.0, 0.0, 5.0), Point3::new(10.0, 10.0, 5.0)),
            [2, 2, 1],
        );
        let probe = Aabb::new(Point3::new(0.0, 0.0, 5.0), Point3::new(10.0, 10.0, 5.0));
        assert_eq!(g.cells_overlapping(&probe).count(), 4);
    }

    #[test]
    #[should_panic(expected = "cells in every dimension")]
    fn zero_cells_panics() {
        UniformGrid::new(
            Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0)),
            [0, 1, 1],
        );
    }
}
