//! Property tests for the STR partitioner: the invariants the adaptive walk
//! depends on must hold for arbitrary inputs.

use proptest::prelude::*;
use tfm_geom::{Aabb, Point3, SpatialElement};
use tfm_partition::{str_partition, str_partition_pooled};
use tfm_pool::StagePool;

fn arb_elems(max: usize) -> impl Strategy<Value = Vec<SpatialElement>> {
    prop::collection::vec(
        (
            -100.0..100.0f64,
            -100.0..100.0f64,
            -100.0..100.0f64,
            0.0..5.0f64,
            0.0..5.0f64,
            0.0..5.0f64,
        ),
        1..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(id, (x, y, z, dx, dy, dz))| {
                SpatialElement::new(
                    id as u64,
                    Aabb::new(Point3::new(x, y, z), Point3::new(x + dx, y + dy, z + dz)),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn partitions_preserve_items_exactly(elems in arb_elems(200), cap in 1usize..40) {
        let n = elems.len();
        let parts = str_partition(elems, cap);
        let mut ids: Vec<u64> = parts.iter().flat_map(|p| p.items.iter().map(|e| e.id)).collect();
        ids.sort_unstable();
        let expected: Vec<u64> = (0..n as u64).collect();
        prop_assert_eq!(ids, expected);
    }

    #[test]
    fn capacity_respected(elems in arb_elems(150), cap in 1usize..30) {
        for p in str_partition(elems, cap) {
            prop_assert!(!p.items.is_empty());
            prop_assert!(p.items.len() <= cap);
        }
    }

    #[test]
    fn centers_inside_partition_mbb(elems in arb_elems(150), cap in 1usize..30) {
        use tfm_geom::HasMbb;
        for p in str_partition(elems, cap) {
            for item in &p.items {
                prop_assert!(p.partition_mbb.contains_point(&item.center()));
            }
        }
    }

    #[test]
    fn partition_mbbs_tile_extent(elems in arb_elems(120), cap in 1usize..25) {
        let elems_boxes: Vec<Aabb> = elems.iter().map(|e| e.mbb).collect();
        let extent = Aabb::union_all(elems_boxes);
        let parts = str_partition(elems, cap);
        // Union of partition MBBs covers the extent...
        let union = Aabb::union_all(parts.iter().map(|p| p.partition_mbb));
        prop_assert_eq!(union, extent);
        // ...their volumes sum to the extent volume (no gaps)...
        let total: f64 = parts.iter().map(|p| p.partition_mbb.volume()).sum();
        prop_assert!((total - extent.volume()).abs() <= 1e-6 * extent.volume().max(1.0));
        // ...and pairwise interiors are disjoint.
        for (i, a) in parts.iter().enumerate() {
            for b in parts.iter().skip(i + 1) {
                let v = a.partition_mbb.intersection(&b.partition_mbb).map(|x| x.volume()).unwrap_or(0.0);
                prop_assert!(v <= 1e-9, "overlap volume {}", v);
            }
        }
    }

    #[test]
    fn page_mbb_is_union_of_items(elems in arb_elems(120), cap in 1usize..25) {
        for p in str_partition(elems, cap) {
            let tight = Aabb::union_all(p.items.iter().map(|e| e.mbb));
            prop_assert_eq!(p.page_mbb, tight);
        }
    }

    #[test]
    fn pooled_equals_sequential(elems in arb_elems(200), cap in 1usize..40, threads in 2usize..6) {
        // The parallel partitioner must reproduce the sequential partition
        // vector exactly — same partition order, same items per partition
        // (in order), same boxes — or parallel index builds would lay out
        // different pages.
        let seq = str_partition(elems.clone(), cap);
        let pooled = str_partition_pooled(elems, cap, &StagePool::new(threads));
        prop_assert_eq!(pooled.len(), seq.len());
        for (a, b) in pooled.iter().zip(&seq) {
            prop_assert_eq!(a.page_mbb, b.page_mbb);
            prop_assert_eq!(a.partition_mbb, b.partition_mbb);
            let ids_a: Vec<u64> = a.items.iter().map(|e| e.id).collect();
            let ids_b: Vec<u64> = b.items.iter().map(|e| e.id).collect();
            prop_assert_eq!(ids_a, ids_b);
        }
    }
}
