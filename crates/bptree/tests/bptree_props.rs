//! Property tests for the B+-tree against `BTreeMap` as the model.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tfm_bptree::BPlusTree;
use tfm_storage::Disk;

fn arb_pairs(max: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::btree_map(any::<u64>(), any::<u64>(), 0..max)
        .prop_map(|m| m.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn get_matches_model(pairs in arb_pairs(300), probes in prop::collection::vec(any::<u64>(), 20)) {
        let disk = Disk::in_memory(128); // tiny pages -> multi-level trees
        let tree = BPlusTree::bulk_load(&disk, &pairs);
        let model: BTreeMap<u64, u64> = pairs.iter().copied().collect();
        for key in pairs.iter().map(|&(k, _)| k).chain(probes) {
            prop_assert_eq!(tree.get(&disk, key), model.get(&key).copied());
        }
    }

    #[test]
    fn range_matches_model(pairs in arb_pairs(300), lo in any::<u64>(), hi in any::<u64>()) {
        let disk = Disk::in_memory(128);
        let tree = BPlusTree::bulk_load(&disk, &pairs);
        let model: BTreeMap<u64, u64> = pairs.iter().copied().collect();
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let got = tree.range(&disk, lo, hi);
        let expected: Vec<(u64, u64)> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn nearest_matches_model(pairs in arb_pairs(200), probes in prop::collection::vec(any::<u64>(), 20)) {
        let disk = Disk::in_memory(128);
        let tree = BPlusTree::bulk_load(&disk, &pairs);
        let model: BTreeMap<u64, u64> = pairs.iter().copied().collect();
        for key in probes {
            let got = tree.nearest(&disk, key);
            let below = model.range(..=key).next_back().map(|(&k, &v)| (k, v));
            let above = model.range(key..).next().map(|(&k, &v)| (k, v));
            let expected = match (below, above) {
                (None, x) => x,
                (x, None) => x,
                (Some(b), Some(a)) => {
                    if key - b.0 <= a.0 - key { Some(b) } else { Some(a) }
                }
            };
            prop_assert_eq!(got, expected, "key {}", key);
        }
    }
}
