//! Online insert and delete for the B+-tree, with latch-crabbing writers
//! and **latch-free readers**.
//!
//! [`MutableBPlusTree`] shares the bulk loader's node byte layout (tag,
//! count, next-leaf pointer, fixed 16-byte entries), so a bulk-loaded
//! tree can be [adopted](MutableBPlusTree::adopt) and mutated in place.
//! All page access is generic over [`tfm_storage::PageReads`] /
//! [`tfm_storage::PageWrites`]: mutations routed through
//! `tfm_storage::LoggedPages` are WAL-logged and land in the shared
//! cache's dirty tier; the `&Disk` implementations give unlogged direct
//! mutation for tests.
//!
//! # Concurrency protocol
//!
//! *Writers* serialize on per-page exclusive latches acquired top-down
//! with **crabbing**: a writer latches the root, then repeatedly latches
//! the child it descends into and releases the parent. Splits are
//! **preventive** — a full child is split while both parent and child
//! latches are held, so an insert never has to propagate a split back
//! upward and never holds more than three latches. All writers latch
//! strictly top-down, so they cannot deadlock.
//!
//! *Readers take no latches at all* — this is what keeps serve workers
//! off the writers' path. Two structural invariants make that safe:
//!
//! 1. **Keys only move right.** A split keeps the low half in the
//!    original page and moves the high half to a fresh right sibling,
//!    writing the sibling before the original before the parent. A
//!    reader that descends through a stale parent lands *at or left of*
//!    the correct leaf and recovers by walking the leaf chain right
//!    (the B-link trick). Deletion never moves keys (see below), so
//!    rightward recovery is always sufficient.
//! 2. **Pages are never recycled.** Deletion is lazy: an entry is
//!    removed in place, and a leaf that empties is unlinked from its
//!    parent and chain predecessor but keeps its contents and next
//!    pointer, so an in-flight reader standing on it still terminates
//!    correctly. The orphaned page is reclaimed by the next offline
//!    rebuild, mirroring how production B-trees defer page recycling.
//!
//! Readers therefore see every committed key and never a torn node; a
//! read racing a writer returns the pre- or post-state of that key,
//! either of which is a valid linearization.

use std::collections::HashSet;
use std::sync::{Condvar, Mutex};

use crate::{encode_node_into, Node, ENTRY, HEADER, INNER_TAG, LEAF_TAG, NO_LEAF};
use tfm_storage::{PageId, PageReads, PageWrites};

use crate::BPlusTree;

/// Tree header state shared by all handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TreeMeta {
    root: PageId,
    height: u32,
    len: u64,
}

/// A B+-tree on `u64` keys supporting online insert and delete.
///
/// See the module docs at the top of `mutable.rs` for the concurrency
/// protocol. The struct
/// itself is `Sync`: concurrent writers (each with its own
/// [`PageWrites`] handle) and readers may share one `&MutableBPlusTree`.
#[derive(Debug)]
pub struct MutableBPlusTree {
    meta: Mutex<TreeMeta>,
    latches: LatchTable,
    fanout: usize,
}

impl MutableBPlusTree {
    /// Creates an empty tree: one empty leaf as the root.
    pub fn create<P: PageWrites>(pages: &mut P) -> Self {
        let fanout = (pages.page_size() - HEADER - 8) / ENTRY;
        assert!(fanout >= 2, "page size too small for a B+-tree node");
        let root = pages.allocate();
        let mut buf = Vec::new();
        encode_node_into(LEAF_TAG, NO_LEAF, &[], &mut buf);
        pages.write(root, &buf);
        Self {
            meta: Mutex::new(TreeMeta {
                root,
                height: 0,
                len: 0,
            }),
            latches: LatchTable::default(),
            fanout,
        }
    }

    /// Takes over a bulk-loaded tree for in-place mutation. The node
    /// layout is identical, so no pages are rewritten.
    pub fn adopt(tree: &BPlusTree) -> Self {
        Self::from_parts(tree.root(), tree.height(), tree.len() as u64, tree.fanout())
    }

    /// Rebuilds a handle from persisted header state (`root`, `height`,
    /// `len` as stored by a superblock) and the node fanout.
    pub fn from_parts(root: PageId, height: u32, len: u64, fanout: usize) -> Self {
        assert!(fanout >= 2);
        Self {
            meta: Mutex::new(TreeMeta { root, height, len }),
            latches: LatchTable::default(),
            fanout,
        }
    }

    /// Header state for persistence: `(root, height, len)`.
    pub fn parts(&self) -> (PageId, u32, u64) {
        let m = self.meta.lock().unwrap();
        (m.root, m.height, m.len)
    }

    /// Number of stored pairs.
    pub fn len(&self) -> u64 {
        self.meta.lock().unwrap().len
    }

    /// True if the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum entries per node.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    // ------------------------------------------------------------------
    // Readers (latch-free)
    // ------------------------------------------------------------------

    /// Returns the first value stored under `key`, if any.
    pub fn get_with<C: PageReads>(&self, cache: &mut C, key: u64) -> Option<u64> {
        let mut node = self.descend(cache, key);
        loop {
            if let Some(&(_, v)) = node.entries.iter().find(|&&(k, _)| k == key) {
                return Some(v);
            }
            // B-link recovery: a concurrent split may have moved the key
            // into a right sibling this parent did not yet point to.
            match node.next_leaf {
                Some(next) if node.entries.last().is_none_or(|&(k, _)| key > k) => {
                    node = Node::read(cache, next);
                }
                _ => return None,
            }
        }
    }

    /// Returns all `(key, value)` pairs with `lo <= key <= hi` in key
    /// order.
    pub fn range_with<C: PageReads>(&self, cache: &mut C, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let mut node = self.descend(cache, lo);
        loop {
            for &(k, v) in &node.entries {
                if k > hi {
                    return out;
                }
                if k >= lo {
                    out.push((k, v));
                }
            }
            match node.next_leaf {
                Some(next) => node = Node::read(cache, next),
                None => return out,
            }
        }
    }

    /// Returns a stored pair whose key is closest to `key` (ties toward
    /// the smaller key). Quiescent trees answer exactly; after deletions
    /// the true predecessor may live in an earlier leaf than the descent
    /// lands on, in which case the successor is returned instead — for
    /// the walk-start use this is still a valid (near) entry point.
    pub fn nearest_with<C: PageReads>(&self, cache: &mut C, key: u64) -> Option<(u64, u64)> {
        let mut node = self.descend(cache, key);
        let mut below: Option<(u64, u64)> = None;
        let mut above: Option<(u64, u64)> = None;
        loop {
            for &(k, v) in &node.entries {
                if k <= key {
                    below = Some((k, v));
                } else if above.is_none() {
                    above = Some((k, v));
                }
            }
            if above.is_some() {
                break;
            }
            match node.next_leaf {
                Some(next) => node = Node::read(cache, next),
                None => break,
            }
        }
        match (below, above) {
            (Some(b), Some(a)) => Some(if key - b.0 <= a.0 - key { b } else { a }),
            (Some(b), None) => Some(b),
            (None, a) => a,
        }
    }

    /// Root-to-leaf walk for readers: lands at or left of the leaf
    /// covering `key`; rightward chain recovery happens at the caller.
    fn descend<C: PageReads>(&self, cache: &mut C, key: u64) -> Node {
        let root = self.meta.lock().unwrap().root;
        let mut node = Node::read(cache, root);
        while !node.is_leaf {
            let idx = child_index(&node, key);
            node = Node::read(cache, PageId(node.entries[idx].1));
        }
        node
    }

    // ------------------------------------------------------------------
    // Writers (latch-crabbing)
    // ------------------------------------------------------------------

    /// Inserts `(key, value)`. Duplicate keys are kept in insertion
    /// order after existing equals.
    pub fn insert<P: PageReads + PageWrites>(&self, pages: &mut P, key: u64, value: u64) {
        loop {
            let meta = *self.meta.lock().unwrap();
            let root_latch = self.latches.acquire(meta.root);
            // The root may have split between the meta read and the
            // latch grant; restart on the new root if so.
            if self.meta.lock().unwrap().root != meta.root {
                drop(root_latch);
                continue;
            }
            let root = Node::read(pages, meta.root);
            if root.entries.len() >= self.fanout {
                self.split_root(pages, meta, root);
                drop(root_latch);
                continue; // redescend through the new root
            }
            self.insert_descent(pages, meta.root, root, root_latch, key, value);
            self.meta.lock().unwrap().len += 1;
            return;
        }
    }

    /// Descends from a latched, non-full node, splitting full children
    /// preventively, and inserts at the leaf.
    fn insert_descent<'a, P: PageReads + PageWrites>(
        &'a self,
        pages: &mut P,
        mut page: PageId,
        mut node: Node,
        mut latch: Latch<'a>,
        key: u64,
        value: u64,
    ) {
        let mut buf = Vec::new();
        while !node.is_leaf {
            let idx = child_index_upper(&node, key);
            let mut child_page = PageId(node.entries[idx].1);
            let mut child_latch = self.latches.acquire(child_page);
            let mut child = Node::read(pages, child_page);
            if child.entries.len() >= self.fanout {
                let (split_key, right_page) = self.split_child(
                    pages, page, &mut node, idx, child_page, &mut child, &mut buf,
                );
                if key >= split_key {
                    drop(child_latch);
                    child_latch = self.latches.acquire(right_page);
                    child = Node::read(pages, right_page);
                    child_page = right_page;
                }
            }
            drop(latch);
            latch = child_latch;
            page = child_page;
            node = child;
        }
        let pos = node.entries.partition_point(|&(k, _)| k <= key);
        node.entries.insert(pos, (key, value));
        write_node(pages, page, &node, &mut buf);
        drop(latch);
    }

    /// Splits the full root while holding its latch: the old root page
    /// keeps the low half (it becomes the left child in place, so stale
    /// readers entering through it just start one level lower), a fresh
    /// right sibling takes the high half, and a fresh root points at
    /// both.
    fn split_root<P: PageReads + PageWrites>(&self, pages: &mut P, meta: TreeMeta, mut root: Node) {
        let mut buf = Vec::new();
        let mid = root.entries.len() / 2;
        let high: Vec<(u64, u64)> = root.entries.split_off(mid);
        let split_key = high[0].0;
        let low_key = root.entries[0].0;

        let right = pages.allocate();
        let tag = if root.is_leaf { LEAF_TAG } else { INNER_TAG };
        let right_next = if root.is_leaf {
            root.next_leaf.map_or(NO_LEAF, |p| p.0)
        } else {
            NO_LEAF
        };
        encode_node_into(tag, right_next, &high, &mut buf);
        pages.write(right, &buf);

        if root.is_leaf {
            root.next_leaf = Some(right);
        }
        write_node(pages, meta.root, &root, &mut buf);

        let new_root = pages.allocate();
        encode_node_into(
            INNER_TAG,
            NO_LEAF,
            &[(low_key, meta.root.0), (split_key, right.0)],
            &mut buf,
        );
        pages.write(new_root, &buf);

        let mut m = self.meta.lock().unwrap();
        m.root = new_root;
        m.height = meta.height + 1;
    }

    /// Splits a full child while holding both the parent's and the
    /// child's latch. Write order — right sibling, then child, then
    /// parent — keeps every interleaving readable: a reader through the
    /// stale parent lands on the shrunken child and chains right.
    /// Returns the separator key and the new right page.
    #[allow(clippy::too_many_arguments)]
    fn split_child<P: PageReads + PageWrites>(
        &self,
        pages: &mut P,
        parent_page: PageId,
        parent: &mut Node,
        idx: usize,
        child_page: PageId,
        child: &mut Node,
        buf: &mut Vec<u8>,
    ) -> (u64, PageId) {
        let mid = child.entries.len() / 2;
        let high: Vec<(u64, u64)> = child.entries.split_off(mid);
        let split_key = high[0].0;

        let right = pages.allocate();
        let tag = if child.is_leaf { LEAF_TAG } else { INNER_TAG };
        let right_next = if child.is_leaf {
            child.next_leaf.map_or(NO_LEAF, |p| p.0)
        } else {
            NO_LEAF
        };
        encode_node_into(tag, right_next, &high, buf);
        pages.write(right, buf);

        if child.is_leaf {
            child.next_leaf = Some(right);
        }
        write_node(pages, child_page, child, buf);

        parent.entries.insert(idx + 1, (split_key, right.0));
        write_node(pages, parent_page, parent, buf);
        (split_key, right)
    }

    /// Deletes one entry stored under `key`, returning its value. With
    /// unique keys this is exact; with duplicates the rightmost subtree
    /// holding the key is searched, so an equal entry left of a split
    /// boundary may be passed over while any duplicate remains reachable
    /// to its right.
    ///
    /// Deletion is lazy (module docs): the entry is removed in place; a
    /// leaf that empties is unlinked from its parent and, when its chain
    /// predecessor shares the parent, from the leaf chain. The empty
    /// page keeps its bytes so latch-free readers standing on it still
    /// terminate.
    pub fn delete<P: PageReads + PageWrites>(&self, pages: &mut P, key: u64) -> Option<u64> {
        let mut buf = Vec::new();
        loop {
            let meta = *self.meta.lock().unwrap();
            let root_latch = self.latches.acquire(meta.root);
            if self.meta.lock().unwrap().root != meta.root {
                drop(root_latch);
                continue;
            }
            let root = Node::read(pages, meta.root);
            let removed = self.delete_descent(pages, meta.root, root, root_latch, key, &mut buf);
            if removed.is_some() {
                self.meta.lock().unwrap().len -= 1;
            }
            return removed;
        }
    }

    fn delete_descent<'a, P: PageReads + PageWrites>(
        &'a self,
        pages: &mut P,
        mut page: PageId,
        mut node: Node,
        mut latch: Latch<'a>,
        key: u64,
        buf: &mut Vec<u8>,
    ) -> Option<u64> {
        // Crab down until `node` is the parent of the target leaf (or is
        // itself a leaf when the tree is height 0).
        while !node.is_leaf {
            let idx = child_index_upper(&node, key);
            let child_page = PageId(node.entries[idx].1);
            let child_latch = self.latches.acquire(child_page);
            let child = Node::read(pages, child_page);
            if child.is_leaf {
                let removed =
                    self.delete_in_leaf(pages, page, &mut node, idx, child_page, child, buf, key);
                drop(child_latch);
                drop(latch);
                return removed;
            }
            drop(latch);
            latch = child_latch;
            page = child_page;
            node = child;
        }
        // Height-0 tree: the root is the leaf.
        let pos = node.entries.iter().position(|&(k, _)| k == key)?;
        let (_, value) = node.entries.remove(pos);
        write_node(pages, page, &node, buf);
        drop(latch);
        Some(value)
    }

    /// Removes `key` from the leaf at `parent.entries[idx]`, unlinking
    /// the leaf if it empties. Caller holds both latches.
    #[allow(clippy::too_many_arguments)]
    fn delete_in_leaf<P: PageReads + PageWrites>(
        &self,
        pages: &mut P,
        parent_page: PageId,
        parent: &mut Node,
        idx: usize,
        leaf_page: PageId,
        mut leaf: Node,
        buf: &mut Vec<u8>,
        key: u64,
    ) -> Option<u64> {
        let pos = leaf.entries.iter().position(|&(k, _)| k == key)?;
        let (_, value) = leaf.entries.remove(pos);
        write_node(pages, leaf_page, &leaf, buf);
        if leaf.entries.is_empty() && parent.entries.len() > 1 && idx > 0 {
            // Unlink: the left sibling under the same parent is the
            // chain predecessor. Bypass the empty leaf in the chain
            // first, then drop its separator; a reader through the stale
            // parent still finds an intact (empty) leaf whose next
            // pointer leads onward.
            let sibling_page = PageId(parent.entries[idx - 1].1);
            let _sibling_latch = self.latches.acquire(sibling_page);
            let mut sibling = Node::read(pages, sibling_page);
            sibling.next_leaf = leaf.next_leaf;
            write_node(pages, sibling_page, &sibling, buf);
            parent.entries.remove(idx);
            write_node(pages, parent_page, parent, buf);
        }
        Some(value)
    }
}

/// Reader descent rule: the child *before the first separator ≥ `key`*.
/// A split between equal keys copies the separator from the right half's
/// first key, so entries equal to a separator can sit in the child to its
/// left — biasing left and recovering rightward along the leaf chain
/// covers every occurrence.
fn child_index(node: &Node, key: u64) -> usize {
    node.entries
        .partition_point(|&(k, _)| k < key)
        .saturating_sub(1)
}

/// Writer descent rule: the last child whose separator is ≤ `key` — the
/// rightmost subtree that may hold `key`, so duplicate inserts append
/// after every existing equal. Exact for unique keys; with duplicate keys
/// split across subtrees, a delete routed this way removes the rightmost
/// reachable equal (see [`MutableBPlusTree::delete`]).
fn child_index_upper(node: &Node, key: u64) -> usize {
    node.entries
        .partition_point(|&(k, _)| k <= key)
        .saturating_sub(1)
}

fn write_node<P: PageWrites>(pages: &mut P, page: PageId, node: &Node, buf: &mut Vec<u8>) {
    let tag = if node.is_leaf { LEAF_TAG } else { INNER_TAG };
    let next = node.next_leaf.map_or(NO_LEAF, |p| p.0);
    encode_node_into(tag, next, &node.entries, buf);
    pages.write(page, buf);
}

/// Exclusive per-page latches for writers, hand-rolled on
/// `std::sync` (the vendored `parking_lot` facade has no `Condvar`).
/// One mutex + condvar over the held-set is plenty for the writer
/// concurrency this tree sees; readers never touch it.
#[derive(Debug, Default)]
struct LatchTable {
    held: Mutex<HashSet<u64>>,
    freed: Condvar,
}

impl LatchTable {
    fn acquire(&self, page: PageId) -> Latch<'_> {
        let mut held = self.held.lock().unwrap();
        while held.contains(&page.0) {
            held = self.freed.wait(held).unwrap();
        }
        held.insert(page.0);
        Latch { table: self, page }
    }
}

/// RAII exclusive latch on one page.
struct Latch<'a> {
    table: &'a LatchTable,
    page: PageId,
}

impl Drop for Latch<'_> {
    fn drop(&mut self) {
        self.table.held.lock().unwrap().remove(&self.page.0);
        self.table.freed.notify_all();
    }
}

impl std::fmt::Debug for Latch<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Latch({})", self.page.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_storage::{Disk, DiskModel};

    fn small_disk() -> Disk {
        // fanout = (64 - 3 - 8) / 16 = 3: splits happen immediately.
        Disk::in_memory(64).with_model(DiskModel::free())
    }

    fn insert_all(
        tree: &MutableBPlusTree,
        disk: &Disk,
        pairs: impl IntoIterator<Item = (u64, u64)>,
    ) {
        let mut pages: &Disk = disk;
        for (k, v) in pairs {
            tree.insert(&mut pages, k, v);
        }
    }

    #[test]
    fn insert_then_get_across_many_splits() {
        let disk = small_disk();
        let mut pages: &Disk = &disk;
        let tree = MutableBPlusTree::create(&mut pages);
        insert_all(&tree, &disk, (0..500u64).map(|k| (k * 2, k)));
        assert_eq!(tree.len(), 500);
        let mut cache: &Disk = &disk;
        for k in 0..500u64 {
            assert_eq!(tree.get_with(&mut cache, k * 2), Some(k), "key {}", k * 2);
            assert_eq!(tree.get_with(&mut cache, k * 2 + 1), None);
        }
    }

    #[test]
    fn random_order_inserts_match_a_sorted_reference() {
        let disk = small_disk();
        let mut pages: &Disk = &disk;
        let tree = MutableBPlusTree::create(&mut pages);
        // Deterministic shuffle: odd multiplier mod power of two is a
        // bijection, so every key appears exactly once.
        let keys: Vec<u64> = (0..1024u64).map(|i| (i * 293) % 1024).collect();
        insert_all(&tree, &disk, keys.iter().map(|&k| (k, k ^ 0x5A)));
        let mut cache: &Disk = &disk;
        let got = tree.range_with(&mut cache, 0, u64::MAX);
        let expect: Vec<(u64, u64)> = (0..1024u64).map(|k| (k, k ^ 0x5A)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn range_and_nearest_behave_like_the_bulk_loaded_tree() {
        let disk = small_disk();
        let mut pages: &Disk = &disk;
        let tree = MutableBPlusTree::create(&mut pages);
        insert_all(&tree, &disk, (0..30u64).map(|k| (k * 10, k)));
        let mut cache: &Disk = &disk;
        let got = tree.range_with(&mut cache, 95, 160);
        assert_eq!(
            got,
            vec![
                (100, 10),
                (110, 11),
                (120, 12),
                (130, 13),
                (140, 14),
                (150, 15),
                (160, 16)
            ]
        );
        assert_eq!(tree.nearest_with(&mut cache, 95), Some((90, 9)));
        assert_eq!(tree.nearest_with(&mut cache, 96), Some((100, 10)));
        assert_eq!(tree.nearest_with(&mut cache, 0), Some((0, 0)));
        assert_eq!(tree.nearest_with(&mut cache, 1_000_000), Some((290, 29)));
    }

    #[test]
    fn duplicate_keys_keep_insertion_order() {
        let disk = small_disk();
        let mut pages: &Disk = &disk;
        let tree = MutableBPlusTree::create(&mut pages);
        insert_all(&tree, &disk, [(5, 100), (7, 200), (5, 101), (5, 102)]);
        let mut cache: &Disk = &disk;
        assert_eq!(
            tree.range_with(&mut cache, 5, 5),
            vec![(5, 100), (5, 101), (5, 102)]
        );
        assert_eq!(tree.get_with(&mut cache, 5), Some(100));
    }

    #[test]
    fn delete_removes_and_reports_values() {
        let disk = small_disk();
        let mut pages: &Disk = &disk;
        let tree = MutableBPlusTree::create(&mut pages);
        insert_all(&tree, &disk, (0..200u64).map(|k| (k, k + 1000)));
        let mut rw: &Disk = &disk;
        // Delete every third key.
        for k in (0..200u64).step_by(3) {
            assert_eq!(tree.delete(&mut rw, k), Some(k + 1000));
            assert_eq!(tree.delete(&mut rw, k), None, "second delete finds nothing");
        }
        let mut cache: &Disk = &disk;
        for k in 0..200u64 {
            let expect = if k % 3 == 0 { None } else { Some(k + 1000) };
            assert_eq!(tree.get_with(&mut cache, k), expect, "key {k}");
        }
        let live = tree.range_with(&mut cache, 0, u64::MAX);
        assert_eq!(live.len() as u64, tree.len());
        assert!(live.iter().all(|&(k, _)| k % 3 != 0));
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let disk = small_disk();
        let mut pages: &Disk = &disk;
        let tree = MutableBPlusTree::create(&mut pages);
        insert_all(&tree, &disk, (0..100u64).map(|k| (k, k)));
        let mut rw: &Disk = &disk;
        for k in 0..100u64 {
            assert_eq!(tree.delete(&mut rw, k), Some(k));
        }
        assert!(tree.is_empty());
        let mut cache: &Disk = &disk;
        assert_eq!(tree.range_with(&mut cache, 0, u64::MAX), vec![]);
        assert_eq!(tree.nearest_with(&mut cache, 50), None);
        // The emptied tree keeps working.
        insert_all(&tree, &disk, (0..100u64).map(|k| (k, k * 2)));
        for k in 0..100u64 {
            assert_eq!(tree.get_with(&mut cache, k), Some(k * 2));
        }
    }

    #[test]
    fn adopting_a_bulk_loaded_tree_preserves_and_extends_it() {
        let disk = small_disk();
        let pairs: Vec<(u64, u64)> = (0..100u64).map(|k| (k * 4, k)).collect();
        let bulk = BPlusTree::bulk_load(&disk, &pairs);
        let tree = MutableBPlusTree::adopt(&bulk);
        let mut rw: &Disk = &disk;
        // Bulk-loaded leaves are full, so the first inserts split.
        for k in 0..100u64 {
            tree.insert(&mut rw, k * 4 + 1, k + 5000);
        }
        assert_eq!(tree.delete(&mut rw, 40), Some(10));
        let mut cache: &Disk = &disk;
        for k in 0..100u64 {
            let expect = if k == 10 { None } else { Some(k) };
            assert_eq!(tree.get_with(&mut cache, k * 4), expect);
            assert_eq!(tree.get_with(&mut cache, k * 4 + 1), Some(k + 5000));
        }
        assert_eq!(tree.len(), 100 + 100 - 1);
    }

    #[test]
    fn parts_roundtrip_reattaches_the_same_tree() {
        let disk = small_disk();
        let mut pages: &Disk = &disk;
        let tree = MutableBPlusTree::create(&mut pages);
        insert_all(&tree, &disk, (0..50u64).map(|k| (k, k * 3)));
        let (root, height, len) = tree.parts();
        let again = MutableBPlusTree::from_parts(root, height, len, tree.fanout());
        let mut cache: &Disk = &disk;
        for k in 0..50u64 {
            assert_eq!(again.get_with(&mut cache, k), Some(k * 3));
        }
    }

    #[test]
    fn concurrent_writers_do_not_lose_keys() {
        let disk = small_disk();
        let mut pages: &Disk = &disk;
        let tree = MutableBPlusTree::create(&mut pages);
        let writers = 8u64;
        let per = 200u64;
        std::thread::scope(|s| {
            for w in 0..writers {
                let tree = &tree;
                let disk = &disk;
                s.spawn(move || {
                    let mut rw: &Disk = disk;
                    for i in 0..per {
                        let key = w * per + i;
                        tree.insert(&mut rw, key, key ^ 0xBEEF);
                    }
                });
            }
        });
        assert_eq!(tree.len(), writers * per);
        let mut cache: &Disk = &disk;
        for key in 0..writers * per {
            assert_eq!(
                tree.get_with(&mut cache, key),
                Some(key ^ 0xBEEF),
                "key {key}"
            );
        }
        let all = tree.range_with(&mut cache, 0, u64::MAX);
        assert_eq!(all.len() as u64, writers * per);
    }

    #[test]
    fn readers_stay_correct_while_writers_split_pages() {
        // Latch-free readers racing inserting writers: every key a
        // reader is told is committed must be found, through any number
        // of concurrent splits.
        use std::sync::atomic::{AtomicU64, Ordering};
        let disk = small_disk();
        let mut pages: &Disk = &disk;
        let tree = MutableBPlusTree::create(&mut pages);
        let committed = AtomicU64::new(0);
        let total = 600u64;
        std::thread::scope(|s| {
            let tree = &tree;
            let disk = &disk;
            let committed = &committed;
            s.spawn(move || {
                let mut rw: &Disk = disk;
                for key in 0..total {
                    tree.insert(&mut rw, key, key + 7);
                    committed.store(key + 1, Ordering::Release);
                }
            });
            for _ in 0..2 {
                s.spawn(move || {
                    let mut cache: &Disk = disk;
                    loop {
                        let seen = committed.load(Ordering::Acquire);
                        // Every committed key must be visible.
                        for key in (0..seen).step_by(97) {
                            assert_eq!(
                                tree.get_with(&mut cache, key),
                                Some(key + 7),
                                "committed key {key} invisible (committed={seen})"
                            );
                        }
                        let in_range = tree.range_with(&mut cache, 0, total);
                        assert!(
                            in_range.len() as u64 >= seen,
                            "range lost keys: {} < {}",
                            in_range.len(),
                            seen
                        );
                        if seen == total {
                            break;
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn readers_stay_correct_while_writers_delete() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let disk = small_disk();
        let mut pages: &Disk = &disk;
        let tree = MutableBPlusTree::create(&mut pages);
        let total = 600u64;
        insert_all(&tree, &disk, (0..total).map(|k| (k, k)));
        let deleted_below = AtomicU64::new(0);
        std::thread::scope(|s| {
            let tree = &tree;
            let disk = &disk;
            let deleted_below = &deleted_below;
            s.spawn(move || {
                let mut rw: &Disk = disk;
                for key in 0..total {
                    assert_eq!(tree.delete(&mut rw, key), Some(key));
                    deleted_below.store(key + 1, Ordering::Release);
                }
            });
            for _ in 0..2 {
                s.spawn(move || {
                    let mut cache: &Disk = disk;
                    loop {
                        let gone = deleted_below.load(Ordering::Acquire);
                        // Keys at/above the deletion frontier (with slack
                        // for in-flight deletes read later) must remain.
                        let frontier = deleted_below.load(Ordering::Acquire);
                        for key in (gone.max(frontier)..total).step_by(131) {
                            let got = tree.get_with(&mut cache, key);
                            let now = deleted_below.load(Ordering::Acquire);
                            // `key == now` means the deleter is mid-way
                            // through this very key: its physical removal
                            // precedes the frontier bump.
                            assert!(
                                got == Some(key) || key <= now,
                                "undeleted key {key} invisible (frontier {now})"
                            );
                        }
                        if gone == total {
                            break;
                        }
                    }
                });
            }
        });
        assert!(tree.is_empty());
    }
}
