//! A disk-page B+-tree on `u64` keys.
//!
//! TRANSFORMERS "indexes the Hilbert value of the center point of all space
//! nodes in a dataset with a B+-Tree … instead of an R-Tree to avoid the
//! issue of overlap and also to speed up building the index" (paper §V,
//! "Adaptive Walk"). The tree maps Hilbert values to space-node ids and is
//! used only to locate the *start descriptor* of an adaptive walk.
//!
//! The tree is bulk-loaded bottom-up from sorted pairs, stores its nodes on
//! a [`Disk`] (every traversal is charged page I/O), and supports exact
//! lookup, range scans, and nearest-key search ([`BPlusTree::nearest`]) —
//! the operation the walk start actually needs.
//!
//! [`BPlusTree::bulk_load_with`] routes every level's page encoding through
//! the shared [`IndexBuildPipeline`] — the last sequential stage of the
//! staged index build. Pages are encoded in parallel but written in page
//! order, so the tree is **byte-identical at any thread count** (see the
//! `parallel_bulk_load_is_byte_identical` test).
//!
//! Traversals are generic over [`tfm_storage::PageReads`]: the `_with`
//! variants ([`BPlusTree::get_with`], [`BPlusTree::nearest_with`],
//! [`BPlusTree::range_with`]) read node pages through a caller-supplied
//! cache (a private `BufferPool`, a `CacheHandle`, or a view onto the
//! process-wide `SharedPageCache`), so B+-tree pages share whatever cache
//! the surrounding join or serve session uses. The plain `&Disk` variants
//! remain as uncached conveniences for one-shot lookups.

#![warn(missing_docs)]

use bytes::{Buf, BufMut};
use tfm_partition::IndexBuildPipeline;
use tfm_storage::{Disk, PageId, PageReads};

mod mutable;

pub use mutable::MutableBPlusTree;

pub(crate) const LEAF_TAG: u8 = 1;
pub(crate) const INNER_TAG: u8 = 0;
pub(crate) const HEADER: usize = 1 + 2; // tag + count
pub(crate) const ENTRY: usize = 16; // key + (value | child)
pub(crate) const NO_LEAF: u64 = u64::MAX;

/// A read-only, bulk-loaded B+-tree stored on a disk.
#[derive(Debug)]
pub struct BPlusTree {
    root: PageId,
    height: u32,
    len: usize,
    fanout: usize,
}

impl BPlusTree {
    /// Bulk-loads a tree from key-sorted `(key, value)` pairs.
    ///
    /// Duplicate keys are allowed; lookups return the first match in input
    /// order. Leaves are written contiguously (sequential I/O), then each
    /// upper level in turn, matching how a real bulk loader would stream to
    /// disk.
    ///
    /// # Panics
    /// Panics if `pairs` is not sorted by key or the page size is too small
    /// to hold at least two entries per node.
    pub fn bulk_load(disk: &Disk, pairs: &[(u64, u64)]) -> Self {
        Self::bulk_load_with(disk, pairs, &IndexBuildPipeline::sequential())
    }

    /// [`BPlusTree::bulk_load`] on a caller-supplied build pipeline: every
    /// level's page images are encoded in parallel over the pipeline's
    /// workers and written sequentially in page order, so the on-disk tree
    /// is byte-identical at any thread count.
    pub fn bulk_load_with(
        disk: &Disk,
        pairs: &[(u64, u64)],
        pipeline: &IndexBuildPipeline,
    ) -> Self {
        let fanout = (disk.page_size() - HEADER - 8) / ENTRY;
        assert!(fanout >= 2, "page size too small for a B+-tree node");
        assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_load requires key-sorted input"
        );

        if pairs.is_empty() {
            // A single empty leaf keeps the traversal code uniform.
            let page = disk.allocate();
            let mut buf = Vec::new();
            encode_node_into(LEAF_TAG, NO_LEAF, &[], &mut buf);
            disk.write_page(page, &buf);
            return Self {
                root: page,
                height: 0,
                len: 0,
                fanout,
            };
        }

        // Build the leaf level: leaves are chained through next-leaf
        // pointers to their physical successors, so the encoder needs the
        // run's first page id (`encode_run`).
        let n_leaves = pairs.len().div_ceil(fanout);
        let first_leaf = pipeline.encode_run(disk, n_leaves, |first, i, buf| {
            let chunk = &pairs[i * fanout..((i + 1) * fanout).min(pairs.len())];
            let next = if i + 1 < n_leaves {
                first.0 + i as u64 + 1
            } else {
                NO_LEAF
            };
            encode_node_into(LEAF_TAG, next, chunk, buf)
        });
        let mut level: Vec<(u64, PageId)> = (0..n_leaves)
            .map(|i| (pairs[i * fanout].0, PageId(first_leaf.0 + i as u64)))
            .collect();

        // Build inner levels until a single root remains.
        let mut height = 0u32;
        while level.len() > 1 {
            height += 1;
            let n_nodes = level.len().div_ceil(fanout);
            let first = pipeline.encode_run(disk, n_nodes, |_, i, buf| {
                let chunk = &level[i * fanout..((i + 1) * fanout).min(level.len())];
                let entries: Vec<(u64, u64)> = chunk.iter().map(|&(k, p)| (k, p.0)).collect();
                // The next-leaf slot is unused in inner nodes; keeping it
                // keeps the layout uniform.
                encode_node_into(INNER_TAG, NO_LEAF, &entries, buf)
            });
            level = (0..n_nodes)
                .map(|i| (level[i * fanout].0, PageId(first.0 + i as u64)))
                .collect();
        }

        Self {
            root: level[0].1,
            height,
            len: pairs.len(),
            fanout,
        }
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (0 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Root page id.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Maximum entries per node for this disk's page size.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Returns the first value stored under `key`, if any (uncached
    /// convenience over [`get_with`](Self::get_with)).
    pub fn get(&self, disk: &Disk, key: u64) -> Option<u64> {
        let mut direct: &Disk = disk;
        self.get_with(&mut direct, key)
    }

    /// Returns the first value stored under `key`, reading node pages
    /// through `cache`.
    pub fn get_with<C: PageReads>(&self, cache: &mut C, key: u64) -> Option<u64> {
        let (_, node) = self.descend_to_leaf(cache, key);
        node.entries
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// Returns all `(key, value)` pairs with `lo <= key <= hi` in key order
    /// (uncached convenience over [`range_with`](Self::range_with)).
    pub fn range(&self, disk: &Disk, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut direct: &Disk = disk;
        self.range_with(&mut direct, lo, hi)
    }

    /// [`range`](Self::range) reading node pages through `cache`.
    pub fn range_with<C: PageReads>(&self, cache: &mut C, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if lo > hi || self.is_empty() {
            return out;
        }
        let (_, mut node) = self.descend_to_leaf(cache, lo);
        loop {
            for &(k, v) in &node.entries {
                if k > hi {
                    return out;
                }
                if k >= lo {
                    out.push((k, v));
                }
            }
            match node.next_leaf {
                Some(next) => node = Node::read(cache, next),
                None => return out,
            }
        }
    }

    /// Returns the stored pair whose key is numerically closest to `key`
    /// (ties broken towards the smaller key). This is the walk-start query:
    /// "a range query based on the Hilbert values of the centers of two
    /// neighboring space nodes" collapses to finding the closest indexed
    /// Hilbert value.
    pub fn nearest(&self, disk: &Disk, key: u64) -> Option<(u64, u64)> {
        let mut direct: &Disk = disk;
        self.nearest_with(&mut direct, key)
    }

    /// [`nearest`](Self::nearest) reading node pages through `cache`.
    pub fn nearest_with<C: PageReads>(&self, cache: &mut C, key: u64) -> Option<(u64, u64)> {
        if self.is_empty() {
            return None;
        }
        let (_, node) = self.descend_to_leaf(cache, key);

        // Candidates: the last entry ≤ key in this leaf (or the leaf's first
        // entry if none) and the first entry > key (possibly in the next
        // leaf).
        let mut below: Option<(u64, u64)> = None;
        let mut above: Option<(u64, u64)> = None;
        for &(k, v) in &node.entries {
            if k <= key {
                below = Some((k, v));
            } else if above.is_none() {
                above = Some((k, v));
            }
        }
        if above.is_none() {
            if let Some(next) = node.next_leaf {
                let next_node = Node::read(cache, next);
                above = next_node.entries.first().copied();
            }
        }
        // `below` can be None when key is smaller than every key in the
        // tree: the descend lands in the first leaf and `above` is set.
        match (below, above) {
            (Some(b), Some(a)) => {
                if key - b.0 <= a.0 - key {
                    Some(b)
                } else {
                    Some(a)
                }
            }
            (Some(b), None) => Some(b),
            (None, a) => a,
        }
    }

    /// Walks inner nodes from the root to the leaf that covers `key`,
    /// returning the leaf's page id and decoded contents.
    fn descend_to_leaf<C: PageReads>(&self, cache: &mut C, key: u64) -> (PageId, Node) {
        let mut page = self.root;
        loop {
            let node = Node::read(cache, page);
            if node.is_leaf {
                return (page, node);
            }
            // Last child whose separator ≤ key; keys below the first
            // separator also belong to the first child.
            let idx = match node.entries.binary_search_by(|&(k, _)| k.cmp(&key)) {
                Ok(i) => i,
                Err(0) => 0,
                Err(i) => i - 1,
            };
            page = PageId(node.entries[idx].1);
        }
    }
}

/// Encodes one node page into `buf` (cleared first; the pipeline's
/// sequential path reuses one buffer across the whole run): tag, entry
/// count, next-leaf pointer, then fixed 16-byte entries. Shared by leaves
/// and inner nodes (identical layout; inner nodes carry `NO_LEAF` in the
/// pointer slot).
pub(crate) fn encode_node_into(tag: u8, next: u64, entries: &[(u64, u64)], buf: &mut Vec<u8>) {
    buf.clear();
    buf.reserve(HEADER + 8 + entries.len() * ENTRY);
    buf.put_u8(tag);
    buf.put_u16_le(entries.len() as u16);
    buf.put_u64_le(next);
    for &(k, v) in entries {
        buf.put_u64_le(k);
        buf.put_u64_le(v);
    }
}

/// A decoded node page.
pub(crate) struct Node {
    pub(crate) is_leaf: bool,
    pub(crate) next_leaf: Option<PageId>,
    pub(crate) entries: Vec<(u64, u64)>,
}

impl Node {
    pub(crate) fn read<C: PageReads>(cache: &mut C, page: PageId) -> Self {
        let raw = cache.page(page);
        let mut buf: &[u8] = &raw;
        let tag = buf.get_u8();
        let count = buf.get_u16_le() as usize;
        let next = buf.get_u64_le();
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let k = buf.get_u64_le();
            let v = buf.get_u64_le();
            entries.push((k, v));
        }
        Self {
            is_leaf: tag == LEAF_TAG,
            next_leaf: if tag == LEAF_TAG && next != NO_LEAF {
                Some(PageId(next))
            } else {
                None
            },
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_with(pairs: &[(u64, u64)]) -> (Disk, BPlusTree) {
        let disk = Disk::default_in_memory();
        let tree = BPlusTree::bulk_load(&disk, pairs);
        (disk, tree)
    }

    #[test]
    fn empty_tree_behaviour() {
        let (disk, t) = tree_with(&[]);
        assert!(t.is_empty());
        assert_eq!(t.get(&disk, 5), None);
        assert_eq!(t.nearest(&disk, 5), None);
        assert!(t.range(&disk, 0, u64::MAX).is_empty());
    }

    #[test]
    fn small_tree_lookup() {
        let pairs: Vec<_> = (0..10u64).map(|k| (k * 10, k)).collect();
        let (disk, t) = tree_with(&pairs);
        assert_eq!(t.height(), 0); // fits one leaf
        assert_eq!(t.get(&disk, 30), Some(3));
        assert_eq!(t.get(&disk, 31), None);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn multi_level_tree_lookup() {
        // Force several levels with a small page size: fanout = (64-3-8)/16 = 3.
        let disk = Disk::in_memory(64);
        let pairs: Vec<_> = (0..200u64).map(|k| (k * 2, k)).collect();
        let t = BPlusTree::bulk_load(&disk, &pairs);
        assert!(t.height() >= 3, "height {}", t.height());
        for k in 0..200u64 {
            assert_eq!(t.get(&disk, k * 2), Some(k));
            assert_eq!(t.get(&disk, k * 2 + 1), None);
        }
    }

    #[test]
    fn range_scan_crosses_leaves() {
        let disk = Disk::in_memory(64);
        let pairs: Vec<_> = (0..100u64).map(|k| (k, k * 7)).collect();
        let t = BPlusTree::bulk_load(&disk, &pairs);
        let got = t.range(&disk, 10, 20);
        let expected: Vec<_> = (10..=20u64).map(|k| (k, k * 7)).collect();
        assert_eq!(got, expected);
        assert_eq!(t.range(&disk, 90, 200).len(), 10);
        assert_eq!(t.range(&disk, 200, 300), vec![]);
        assert_eq!(t.range(&disk, 20, 10), vec![]);
    }

    #[test]
    fn nearest_prefers_closer_key() {
        let (disk, t) = tree_with(&[(10, 1), (20, 2), (40, 4)]);
        assert_eq!(t.nearest(&disk, 0), Some((10, 1)));
        assert_eq!(t.nearest(&disk, 10), Some((10, 1)));
        assert_eq!(t.nearest(&disk, 14), Some((10, 1)));
        assert_eq!(t.nearest(&disk, 15), Some((10, 1))); // tie -> smaller
        assert_eq!(t.nearest(&disk, 16), Some((20, 2)));
        assert_eq!(t.nearest(&disk, 29), Some((20, 2)));
        assert_eq!(t.nearest(&disk, 31), Some((40, 4)));
        assert_eq!(t.nearest(&disk, 1000), Some((40, 4)));
    }

    #[test]
    fn nearest_across_leaf_boundary() {
        let disk = Disk::in_memory(64); // fanout 3
        let pairs: Vec<_> = (0..30u64).map(|k| (k * 10, k)).collect();
        let t = BPlusTree::bulk_load(&disk, &pairs);
        // 95 sits between 90 (leaf i) and 100 (possibly next leaf).
        assert_eq!(t.nearest(&disk, 95), Some((90, 9)));
        assert_eq!(t.nearest(&disk, 96), Some((100, 10)));
    }

    #[test]
    fn duplicate_keys_supported() {
        let (disk, t) = tree_with(&[(5, 100), (5, 101), (5, 102), (7, 200)]);
        let r = t.range(&disk, 5, 5);
        assert_eq!(r, vec![(5, 100), (5, 101), (5, 102)]);
        assert_eq!(t.get(&disk, 5), Some(100));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_input_panics() {
        let disk = Disk::default_in_memory();
        BPlusTree::bulk_load(&disk, &[(5, 0), (3, 0)]);
    }

    #[test]
    fn parallel_bulk_load_is_byte_identical() {
        // Small page size forces several levels; the parallel pipeline
        // must reproduce the sequential disk image bit for bit.
        let pairs: Vec<_> = (0..3000u64).map(|k| (k * 3, k ^ 0xABCD)).collect();
        let seq_disk = Disk::in_memory(64);
        let seq = BPlusTree::bulk_load(&seq_disk, &pairs);
        let dump = |d: &Disk| -> Vec<Vec<u8>> {
            (0..d.allocated_pages())
                .map(|p| d.read_page_vec(PageId(p)))
                .collect()
        };
        let seq_pages = dump(&seq_disk);
        for threads in [2, 4, 8] {
            let disk = Disk::in_memory(64);
            let t = BPlusTree::bulk_load_with(&disk, &pairs, &IndexBuildPipeline::new(threads));
            assert_eq!(t.root(), seq.root(), "threads = {threads}");
            assert_eq!(t.height(), seq.height());
            assert_eq!(dump(&disk), seq_pages, "threads = {threads}");
            // The parallel load must stay queryable, not just byte-equal.
            assert_eq!(t.get(&disk, 300), Some(100 ^ 0xABCD));
            assert_eq!(t.nearest(&disk, 301), Some((300, 100 ^ 0xABCD)));
        }
    }

    #[test]
    fn traversal_charges_io() {
        let disk = Disk::in_memory(64);
        let pairs: Vec<_> = (0..500u64).map(|k| (k, k)).collect();
        let t = BPlusTree::bulk_load(&disk, &pairs);
        disk.reset_stats();
        let _ = t.get(&disk, 250);
        let reads = disk.stats().reads();
        assert_eq!(reads as u32, t.height() + 1, "one read per level");
    }
}
