//! The transformation-threshold cost model (paper §VI-C).
//!
//! Splitting a pivot to a finer granularity costs extra exploration
//! (Eq. 1: `nSU × T_ae`) and pays off by reading fewer pages and testing
//! fewer elements (Eq. 2: `V_g/V_f × c_flt × nSU × (T_io + nSO × T_comp)`).
//! Splitting is worthwhile when the benefit exceeds the cost, giving the
//! thresholds of Eq. 4 and Eq. 8:
//!
//! ```text
//! t_su = T_ae / (c_flt · (T_io + nSO · T_comp))
//! t_so = nSO · T_ae / (nSU · c_flt · (T_io + nSO · T_comp))
//! ```
//!
//! `T_ae`, `T_io` and `T_comp` "heavily depend on the hardware of the
//! system and are therefore best determined at runtime" — they are measured
//! while the join runs, and `c_flt` is updated from the actually observed
//! filter rate. Until the first transformation completes, the default
//! thresholds t_su = 8 and t_so = 27 are used (§VII-D2: "this volume ratio
//! corresponds to the case where an edge of one MBB is two/three times
//! bigger than the other one").

use crate::config::ThresholdPolicy;
use std::time::Duration;

/// Default node→unit threshold before runtime calibration (§VII-D2).
pub const DEFAULT_T_SU: f64 = 8.0;

/// Default unit→element threshold before runtime calibration (§VII-D2).
pub const DEFAULT_T_SO: f64 = 27.0;

/// Wide sanity bounds applied to runtime-derived thresholds.
const T_SU_RANGE: (f64, f64) = (1.5, 1e6);
const T_SO_RANGE: (f64, f64) = (1.5, 1e6);

/// Device parameters the Eq. 4/8 terms are evaluated against.
///
/// The paper measures T_ae, T_io and T_comp as wall-clock times on real
/// hardware, where device time *is* wall time. In this reproduction device
/// time is simulated, so the two hardware-bound terms are taken from the
/// disk model instead (see `DESIGN.md`):
///
/// * `T_ae` — the marginal cost of exploring one more fine-grained unit:
///   dominated by repositioning the head for one more small read batch;
/// * `T_io` — the marginal cost of reading one more page inside a batch:
///   the sequential transfer cost (skipping a filtered page saves exactly
///   one transfer; the skip itself is nearly free).
///
/// `T_comp` still comes from online measurement when available.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Cost of repositioning for one additional read batch (T_ae).
    pub reposition: Duration,
    /// Marginal cost of one page transfer (T_io).
    pub transfer: Duration,
}

impl Default for DeviceParams {
    fn default() -> Self {
        Self {
            reposition: Duration::from_micros(350),
            transfer: Duration::from_micros(50),
        }
    }
}

/// Online estimator of the transformation thresholds.
#[derive(Debug, Clone)]
pub struct CostModel {
    policy: ThresholdPolicy,
    device: DeviceParams,
    t_su: f64,
    t_so: f64,
    /// Elements per space unit (paper's nSO).
    n_so: f64,
    /// Units per space node (paper's nSU).
    n_su: f64,
    /// Filter-rate estimate c_flt ∈ (0, 1).
    c_flt: f64,
    // Online measurement accumulators.
    walk_time: Duration,
    walk_ops: u64,
    io_time: Duration,
    io_ops: u64,
    comp_time: Duration,
    comp_ops: u64,
    filtered: u64,
    considered: u64,
    transformations_seen: u64,
}

impl CostModel {
    /// Creates a model for the given policy and index geometry, using
    /// default device parameters.
    pub fn new(policy: ThresholdPolicy, unit_capacity: usize, node_capacity: usize) -> Self {
        Self::with_device(
            policy,
            unit_capacity,
            node_capacity,
            DeviceParams::default(),
        )
    }

    /// Creates a model with explicit device parameters.
    pub fn with_device(
        policy: ThresholdPolicy,
        unit_capacity: usize,
        node_capacity: usize,
        device: DeviceParams,
    ) -> Self {
        let (t_su, t_so) = match policy {
            ThresholdPolicy::CostModel => (DEFAULT_T_SU, DEFAULT_T_SO),
            ThresholdPolicy::Fixed { t_su, t_so } => (t_su, t_so),
            ThresholdPolicy::Disabled => (f64::INFINITY, f64::INFINITY),
        };
        Self {
            policy,
            device,
            t_su,
            t_so,
            n_so: unit_capacity.max(1) as f64,
            n_su: node_capacity.max(1) as f64,
            c_flt: 0.5,
            walk_time: Duration::ZERO,
            walk_ops: 0,
            io_time: Duration::ZERO,
            io_ops: 0,
            comp_time: Duration::ZERO,
            comp_ops: 0,
            filtered: 0,
            considered: 0,
            transformations_seen: 0,
        }
    }

    /// Whether transformations are enabled at all.
    pub fn enabled(&self) -> bool {
        !matches!(self.policy, ThresholdPolicy::Disabled)
    }

    /// Current node→unit threshold t_su.
    pub fn t_su(&self) -> f64 {
        self.t_su
    }

    /// Current unit→element threshold t_so.
    pub fn t_so(&self) -> f64 {
        self.t_so
    }

    /// Current role-switch threshold: `V_g/V_f ≤ 1/t_su` (paper Eq. 5).
    pub fn t_role(&self) -> f64 {
        1.0 / self.t_su
    }

    /// Current filter-rate estimate.
    pub fn c_flt(&self) -> f64 {
        self.c_flt
    }

    /// Should a node-level pivot with volume ratio `vg / vf` be split into
    /// space units?
    pub fn should_split_node(&self, ratio: f64) -> bool {
        self.enabled() && ratio >= self.t_su
    }

    /// Should a unit-level pivot with volume ratio `vg / vf` descend to
    /// single elements?
    pub fn should_split_unit(&self, ratio: f64) -> bool {
        self.enabled() && ratio >= self.t_so
    }

    /// Should guide and follower switch roles at ratio `vg / vf`?
    pub fn should_switch_roles(&self, ratio: f64) -> bool {
        self.enabled() && ratio <= self.t_role()
    }

    /// Records exploration work (walk/crawl steps) for T_ae.
    pub fn record_exploration(&mut self, steps: u64, elapsed: Duration) {
        self.walk_ops += steps;
        self.walk_time += elapsed;
    }

    /// Records page I/O for T_io.
    pub fn record_io(&mut self, pages: u64, elapsed: Duration) {
        self.io_ops += pages;
        self.io_time += elapsed;
    }

    /// Records element comparisons for T_comp.
    pub fn record_comparisons(&mut self, tests: u64, elapsed: Duration) {
        self.comp_ops += tests;
        self.comp_time += elapsed;
    }

    /// Records a filter decision: of `considered` candidate units,
    /// `filtered` were eliminated without reading their pages.
    pub fn record_filter(&mut self, filtered: u64, considered: u64) {
        self.filtered += filtered;
        self.considered += considered;
    }

    /// Notifies the model that a transformation executed. Under the
    /// `CostModel` policy the thresholds are re-derived from the
    /// measurements collected so far (the paper: "initially uses the
    /// default threshold values that are updated after the first
    /// transformation").
    pub fn on_transformation(&mut self) {
        self.transformations_seen += 1;
        if !matches!(self.policy, ThresholdPolicy::CostModel) {
            return;
        }
        // T_ae and T_io are device-bound (Eq. 4: "parameters that heavily
        // depend on the hardware of the system"); T_comp is measured online
        // when comparisons have been timed, and c_flt from the observed
        // filter rate.
        let t_ae = self.device.reposition.as_secs_f64();
        let t_io = self.device.transfer.as_secs_f64();
        let t_comp = self.measured_t_comp().unwrap_or(20e-9);
        if self.considered > 0 {
            self.c_flt = (self.filtered as f64 / self.considered as f64).clamp(0.01, 1.0);
        }
        let denom = self.c_flt * (t_io + self.n_so * t_comp);
        if denom <= 0.0 {
            return;
        }
        self.t_su = (t_ae / denom).clamp(T_SU_RANGE.0, T_SU_RANGE.1);
        self.t_so = (self.n_so * t_ae / (self.n_su * denom)).clamp(T_SO_RANGE.0, T_SO_RANGE.1);
    }

    /// Mean measured wall time of one exploration step, if any were timed.
    pub fn measured_t_ae(&self) -> Option<f64> {
        (self.walk_ops > 0).then(|| self.walk_time.as_secs_f64() / self.walk_ops as f64)
    }

    /// Mean recorded cost of one page read, if any were recorded.
    pub fn measured_t_io(&self) -> Option<f64> {
        (self.io_ops > 0).then(|| self.io_time.as_secs_f64() / self.io_ops as f64)
    }

    /// Mean measured wall time of one element comparison, if any were timed.
    pub fn measured_t_comp(&self) -> Option<f64> {
        (self.comp_ops > 0).then(|| self.comp_time.as_secs_f64() / self.comp_ops as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(policy: ThresholdPolicy) -> CostModel {
        CostModel::new(policy, 146, 73)
    }

    #[test]
    fn defaults_match_paper() {
        let m = model(ThresholdPolicy::CostModel);
        assert_eq!(m.t_su(), 8.0);
        assert_eq!(m.t_so(), 27.0);
        assert!(m.should_split_node(8.0));
        assert!(!m.should_split_node(7.9));
        assert!(m.should_switch_roles(1.0 / 8.0));
        assert!(!m.should_switch_roles(0.2));
    }

    #[test]
    fn disabled_policy_never_transforms() {
        let m = model(ThresholdPolicy::Disabled);
        assert!(!m.enabled());
        assert!(!m.should_split_node(1e12));
        assert!(!m.should_switch_roles(0.0));
        assert!(!m.should_split_unit(1e12));
    }

    #[test]
    fn fixed_policy_ignores_measurements() {
        let mut m = model(ThresholdPolicy::over_fit());
        m.record_exploration(1000, Duration::from_millis(10));
        m.record_io(100, Duration::from_millis(600));
        m.record_comparisons(10_000, Duration::from_millis(1));
        m.on_transformation();
        assert_eq!(m.t_su(), 1.5);
        assert_eq!(m.t_so(), 1.5);
    }

    #[test]
    fn cost_model_updates_after_first_transformation() {
        let mut m = model(ThresholdPolicy::CostModel);
        m.record_comparisons(1_000_000, Duration::from_millis(10)); // T_comp = 10ns
        m.record_filter(50, 100); // c_flt = 0.5
        m.on_transformation();
        // Default device: t_su = 3.45ms / (0.5 · (50µs + 146·10ns)) ≈ 134.
        assert!(m.t_su() > DEFAULT_T_SU, "t_su {}", m.t_su());
        assert!(m.t_su() < 1000.0, "t_su {}", m.t_su());
        // Eq. 8: t_so / t_su = nSO / nSU.
        assert!((m.t_so() / m.t_su() - 146.0 / 73.0).abs() < 1e-9);
        assert!((m.c_flt() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cost_model_clamps_low_thresholds() {
        // Nearly free repositioning: the raw formula collapses towards 0
        // and must be clamped.
        let device = DeviceParams {
            reposition: Duration::from_nanos(10),
            transfer: Duration::from_micros(50),
        };
        let mut m = CostModel::with_device(ThresholdPolicy::CostModel, 146, 73, device);
        m.record_filter(90, 100);
        m.on_transformation();
        assert_eq!(m.t_su(), T_SU_RANGE.0);
    }

    #[test]
    fn high_filter_rate_lowers_thresholds() {
        let mut a = model(ThresholdPolicy::CostModel);
        a.record_filter(99, 100);
        a.on_transformation();
        let mut b = model(ThresholdPolicy::CostModel);
        b.record_filter(1, 100);
        b.on_transformation();
        // Better filtering (higher c_flt) ⇒ splitting pays off sooner.
        assert!(a.t_su() < b.t_su());
    }
}
