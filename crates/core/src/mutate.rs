//! Online mutation of a built TRANSFORMERS index: the write path.
//!
//! The paper builds its structures offline; neuroscience workloads grow,
//! though — new segmentations add elements, curation removes them. This
//! module adds **online insert and delete** on top of a built
//! [`TransformersIndex`] without invalidating the serving read path:
//!
//! * **In-place element append.** An insert targets the space unit whose
//!   partition box covers the element's center (ties broken by scan
//!   order, so placement is deterministic). If the unit's base element
//!   page has room, the element is appended there; otherwise it goes to
//!   an **overflow page chain** hanging off the unit
//!   (`[next: u64][count: u16][56-byte element records]`). Chains are
//!   extended tail-first — the fresh page is written *before* the link to
//!   it — so a concurrent chain walker never follows a pointer into
//!   unwritten bytes.
//! * **Grow-only MBBs.** Inserts union the element's MBB into the unit's
//!   and node's page MBBs; deletes never shrink them. The prefilter
//!   therefore stays *conservative*: it may admit a unit that no longer
//!   has matching elements, but it never skips one that does, and the
//!   exact per-element [`SpatialQuery::matches`] test makes query results
//!   equal to an index rebuilt from scratch over the mutated dataset.
//! * **Element directory.** A [`MutableBPlusTree`] maps element id →
//!   unit, so a delete finds its page without scanning. Deletes rewrite
//!   the one page holding the element; an overflow page that empties
//!   stays linked (lazy reclamation — the chain remains walkable for
//!   in-flight readers, mirroring the B+-tree's no-recycle rule).
//! * **Batch commit with WAL-before-data.** [`MutableTransformers::apply_batch`]
//!   routes every page write through [`LoggedPages`]: full-page
//!   after-image to the [`RedoLog`], same bytes to the shared cache's
//!   dirty tier. The batch — including the persisted overlay, see below —
//!   is one transaction; after the commit fsync the dirty frames are
//!   flushed through the cache's durable-LSN gate. A crash anywhere
//!   leaves either the whole batch or none of it (redo-only, no-steal).
//! * **Persisted overlay.** The mutable state (per-unit counts, overflow
//!   heads, grown MBBs, directory root, allocation watermark) is
//!   serialized into a chain of **overlay pages** written under the same
//!   transaction as the data it describes. After crash recovery replays
//!   the log, [`MutableTransformers::reopen`] rebuilds the full handle
//!   from the overlay head page alone.
//! * **Snapshot publication.** Readers never lock against writers: each
//!   committed batch publishes an immutable [`MutSnapshot`]
//!   (`Mutex<Arc<_>>` swap), and serve sessions query through the
//!   snapshot they grabbed. A reader overlapping a batch may observe that
//!   batch's effects at page granularity (read-committed style — pages
//!   themselves are never torn, the cache swaps whole frames); batch
//!   boundaries are the published consistency points.
//!
//! The descriptor tables are copied whole per publish — O(units) per
//! batch. That is the honest cost of a design whose readers are wait-free
//! and whose tests hammer small indexes; incremental (copy-on-write
//! chunked) publication is an optimization left open in `ROADMAP.md`.

use crate::descriptor::NodeId;
use crate::metadata::bytes_ext::{BufExt, BufMutExt};
use crate::metadata::{get_aabb, put_aabb};
use crate::TransformersIndex;
use std::sync::{Arc, Mutex};
use tfm_bptree::{BPlusTree, MutableBPlusTree};
use tfm_geom::{Aabb, Point3, SpatialElement, SpatialQuery};
use tfm_storage::{
    Disk, ElementPageCodec, LoggedPages, PageId, PageReads, PageWrites, RedoLog, SharedPageCache,
};

/// Sentinel for "no page" in overflow chains and the overlay page chain.
pub const NO_PAGE: u64 = u64::MAX;

/// Bytes of overflow-page header: `next` pointer (u64) + element count
/// (u16).
pub const OVERFLOW_HEADER: usize = 10;

/// Bytes per element record, identical to the base-page layout of
/// [`ElementPageCodec`]: id (u64 LE) + six f64 LE MBB coordinates.
const ELEM_RECORD: usize = 56;

/// Magic stamped on the first overlay page ("TFMMUT01").
const MUT_MAGIC: u64 = u64::from_le_bytes(*b"TFMMUT01");

/// Fixed overlay header bytes (see [`write_overlay`]).
const OVERLAY_FIXED: usize = 64;
/// Serialized bytes per unit entry in the overlay.
const OVERLAY_UNIT: usize = 8 + 8 + 4 + 4 + 48 + 48;
/// Serialized bytes per node entry in the overlay.
const OVERLAY_NODE: usize = 4 + 4 + 48 + 48;

fn put_elem(buf: &mut Vec<u8>, e: &SpatialElement) {
    buf.put_u64_le_ext(e.id);
    put_aabb(buf, &e.mbb);
}

fn get_elem(buf: &mut &[u8]) -> SpatialElement {
    let id = buf.get_u64_le_ext();
    let mbb = get_aabb(buf);
    SpatialElement::new(id, mbb)
}

/// Encoder/decoder for overflow pages:
/// `[next: u64 LE][count: u16 LE][count × 56-byte element records]`.
#[derive(Debug, Clone, Copy)]
pub struct OverflowCodec {
    page_size: usize,
}

impl OverflowCodec {
    /// Creates a codec for pages of `page_size` bytes.
    ///
    /// # Panics
    /// Panics if the page cannot hold at least one record.
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size >= OVERFLOW_HEADER + ELEM_RECORD,
            "page size {page_size} too small for one overflow record"
        );
        Self { page_size }
    }

    /// Maximum number of elements per overflow page.
    #[inline]
    pub fn capacity(&self) -> usize {
        (self.page_size - OVERFLOW_HEADER) / ELEM_RECORD
    }

    /// Serializes an overflow page into `buf` (cleared first), zero-padded
    /// to the page size.
    ///
    /// # Panics
    /// Panics if more elements are given than fit.
    pub fn encode_into(&self, next: u64, elements: &[SpatialElement], buf: &mut Vec<u8>) {
        assert!(
            elements.len() <= self.capacity(),
            "{} elements exceed overflow capacity {}",
            elements.len(),
            self.capacity()
        );
        buf.clear();
        buf.reserve(self.page_size);
        buf.put_u64_le_ext(next);
        buf.put_u16_le_ext(elements.len() as u16);
        for e in elements {
            put_elem(buf, e);
        }
        buf.resize(self.page_size, 0);
    }

    /// Appends the page's elements to `out` and returns the `next`
    /// pointer ([`NO_PAGE`] at the chain tail).
    ///
    /// # Panics
    /// Panics if the page is shorter than its declared payload.
    pub fn decode_append(&self, page: &[u8], out: &mut Vec<SpatialElement>) -> u64 {
        let mut b = page;
        let next = b.get_u64_le_ext();
        let count = b.get_u16_le_ext() as usize;
        assert!(
            page.len() >= OVERFLOW_HEADER + count * ELEM_RECORD,
            "corrupt overflow page: count {count} does not fit {} bytes",
            page.len()
        );
        out.reserve(count);
        for _ in 0..count {
            out.push(get_elem(&mut b));
        }
        next
    }
}

/// Mutable per-unit descriptor: the adopted [`SpaceUnitDesc`] state plus
/// the overflow chain head and a live (base + overflow) element count.
///
/// [`SpaceUnitDesc`]: crate::SpaceUnitDesc
#[derive(Debug, Clone, PartialEq)]
pub struct MutUnit {
    /// The unit's base element page.
    pub page: PageId,
    /// Conservative (grow-only) bounding box of the unit's elements.
    pub page_mbb: Aabb,
    /// The unit's tiling box — the insert-placement key.
    pub partition_mbb: Aabb,
    /// Head of the overflow page chain, [`NO_PAGE`] if none.
    pub overflow: u64,
    /// Live elements in the unit (base page plus overflow chain).
    pub count: u32,
    /// The node this unit belongs to.
    pub node: NodeId,
}

/// Mutable per-node descriptor: tile, grow-only page MBB and the unit
/// range (units stay contiguous per node — inserts only extend existing
/// units).
#[derive(Debug, Clone, PartialEq)]
pub struct MutNode {
    /// The node's tiling box.
    pub tile: Aabb,
    /// Conservative (grow-only) bounding box of the node's elements.
    pub page_mbb: Aabb,
    /// First unit of this node's contiguous unit range.
    pub first_unit: u32,
    /// Number of units in the range.
    pub unit_count: u32,
}

/// An immutable, consistent view of the mutable index, published at batch
/// boundaries. Sessions grab one ([`MutableTransformers::snapshot`]) and
/// query it through any [`PageReads`] handle — typically a view onto the
/// process-wide shared cache, so dirty (not yet flushed) pages are
/// visible.
#[derive(Debug)]
pub struct MutSnapshot {
    units: Vec<MutUnit>,
    nodes: Vec<MutNode>,
    len: u64,
    page_size: usize,
}

impl MutSnapshot {
    /// Live element count at publication time.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the snapshot holds no live elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-unit descriptors.
    pub fn units(&self) -> &[MutUnit] {
        &self.units
    }

    /// Per-node descriptors.
    pub fn nodes(&self) -> &[MutNode] {
        &self.nodes
    }

    /// Page size of the underlying disk.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Reads one unit's live elements — base page, then the overflow
    /// chain — into `out` (cleared first).
    pub fn read_unit<C: PageReads>(&self, cache: &mut C, unit: u32, out: &mut Vec<SpatialElement>) {
        let u = &self.units[unit as usize];
        let codec = ElementPageCodec::new(self.page_size);
        out.clear();
        {
            let p = cache.page(u.page);
            codec.decode_into(&p, out);
        }
        let ov = OverflowCodec::new(self.page_size);
        let mut next = u.overflow;
        while next != NO_PAGE {
            let p = cache.page(PageId(next));
            next = ov.decode_append(&p, out);
        }
    }

    /// Answers a spatial query: node page-MBB prefilter → unit page-MBB
    /// prefilter → exact per-element test, exactly mirroring the
    /// immutable serve path. Returns matching element ids, sorted
    /// ascending.
    pub fn query<C: PageReads>(&self, cache: &mut C, q: &SpatialQuery) -> Vec<u64> {
        let probe = q.probe();
        let mut out = Vec::new();
        let mut elems = Vec::new();
        for n in &self.nodes {
            if !n.page_mbb.intersects(&probe) {
                continue;
            }
            for ui in n.first_unit..(n.first_unit + n.unit_count) {
                let u = &self.units[ui as usize];
                if u.count == 0 || !u.page_mbb.intersects(&probe) {
                    continue;
                }
                self.read_unit(cache, ui, &mut elems);
                for e in &elems {
                    if q.matches(&e.mbb) {
                        out.push(e.id);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// One mutation in a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MutationOp {
    /// Insert an element. Rejected (counted, not applied) if an element
    /// with the same id is already present or the index has no units.
    Insert(SpatialElement),
    /// Delete the element with this id. Counted as missing if absent.
    Delete(u64),
}

/// What a committed batch did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BatchOutcome {
    /// Elements inserted.
    pub inserted: u64,
    /// Elements deleted.
    pub deleted: u64,
    /// Inserts rejected (duplicate id, or an index with no units).
    pub rejected_inserts: u64,
    /// Deletes whose id was not present.
    pub missing_deletes: u64,
    /// The WAL transaction the batch committed under.
    pub txn: u64,
    /// Durable LSN returned by the commit.
    pub durable_lsn: u64,
    /// Dirty pages flushed after the commit.
    pub flushed_pages: usize,
    /// Dirty pages the flush gate kept in memory.
    pub retained_pages: usize,
}

/// Writer-side state, guarded by the batch mutex.
#[derive(Debug)]
struct MutState {
    units: Vec<MutUnit>,
    nodes: Vec<MutNode>,
    len: u64,
    /// Overlay page chain; `meta_pages[0]` is the fixed head.
    meta_pages: Vec<PageId>,
}

/// The mutable overlay over one TRANSFORMERS dataset: batched online
/// insert/delete with WAL-before-data durability and wait-free readers.
///
/// Batches serialize on an internal mutex (single-writer); readers run
/// concurrently against published [`MutSnapshot`]s and never block. See
/// the module docs at the top of `mutate.rs` for the full protocol.
#[derive(Debug)]
pub struct MutableTransformers {
    state: Mutex<MutState>,
    directory: MutableBPlusTree,
    published: Mutex<Arc<MutSnapshot>>,
    page_size: usize,
}

impl MutableTransformers {
    /// Takes over a built index for online mutation.
    ///
    /// Reads every element page once to bulk-load the element directory
    /// (id → unit) and writes the initial overlay chain — all direct,
    /// unlogged writes: adoption is part of initial image construction,
    /// before any WAL tracks the dataset. Element ids must be unique.
    pub fn adopt(idx: &TransformersIndex, disk: &Disk) -> Self {
        let page_size = disk.page_size();
        let codec = ElementPageCodec::new(page_size);
        let mut pairs: Vec<(u64, u64)> = Vec::with_capacity(idx.len());
        for u in idx.units() {
            for e in codec.decode(&disk.read_page_vec(u.page)) {
                pairs.push((e.id, u.id.0 as u64));
            }
        }
        pairs.sort_unstable();
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate element ids in adopted index"
        );
        let directory = MutableBPlusTree::adopt(&BPlusTree::bulk_load(disk, &pairs));

        let units = idx
            .units()
            .iter()
            .map(|u| MutUnit {
                page: u.page,
                page_mbb: u.page_mbb,
                partition_mbb: u.partition_mbb,
                overflow: NO_PAGE,
                count: u.count as u32,
                node: u.node,
            })
            .collect();
        let nodes = idx
            .nodes()
            .iter()
            .map(|n| MutNode {
                tile: n.tile,
                page_mbb: n.page_mbb,
                first_unit: n.first_unit,
                unit_count: n.unit_count,
            })
            .collect();
        let mut st = MutState {
            units,
            nodes,
            len: idx.len() as u64,
            meta_pages: Vec::new(),
        };
        let mut direct: &Disk = disk;
        write_overlay(&directory, &mut st, &mut direct, disk);
        let snapshot = Arc::new(snapshot_of(&st, page_size));
        Self {
            state: Mutex::new(st),
            directory,
            published: Mutex::new(snapshot),
            page_size,
        }
    }

    /// Rebuilds the handle from a recovered disk image: walks the overlay
    /// page chain starting at `meta_head` (see
    /// [`meta_head`](Self::meta_head)), restores descriptors, directory
    /// and the allocation watermark. This is the post-crash path: run
    /// WAL replay first, then reopen.
    ///
    /// # Panics
    /// Panics if `meta_head` does not point at an overlay chain.
    pub fn reopen(disk: &Disk, meta_head: PageId) -> Self {
        let page_size = disk.page_size();
        let mut meta_pages = vec![meta_head];
        let mut body = Vec::new();
        let mut cur = meta_head;
        loop {
            let page = disk.read_page_vec(cur);
            let mut b: &[u8] = &page;
            let next = b.get_u64_le_ext();
            body.extend_from_slice(b);
            if next == NO_PAGE {
                break;
            }
            cur = PageId(next);
            meta_pages.push(cur);
        }

        let mut b: &[u8] = &body;
        let magic = b.get_u64_le_ext();
        assert_eq!(
            magic, MUT_MAGIC,
            "page {meta_head:?} is not an overlay head"
        );
        let len = b.get_u64_le_ext();
        let fanout = b.get_u32_le_ext() as usize;
        let dir_root = PageId(b.get_u64_le_ext());
        let dir_height = b.get_u32_le_ext();
        let dir_len = b.get_u64_le_ext();
        let watermark = b.get_u64_le_ext();
        let n_units = b.get_u64_le_ext() as usize;
        let mut units = Vec::with_capacity(n_units);
        for _ in 0..n_units {
            let page = PageId(b.get_u64_le_ext());
            let overflow = b.get_u64_le_ext();
            let count = b.get_u32_le_ext();
            let node = NodeId(b.get_u32_le_ext());
            let page_mbb = get_aabb(&mut b);
            let partition_mbb = get_aabb(&mut b);
            units.push(MutUnit {
                page,
                page_mbb,
                partition_mbb,
                overflow,
                count,
                node,
            });
        }
        let n_nodes = b.get_u64_le_ext() as usize;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let first_unit = b.get_u32_le_ext();
            let unit_count = b.get_u32_le_ext();
            let tile = get_aabb(&mut b);
            let page_mbb = get_aabb(&mut b);
            nodes.push(MutNode {
                tile,
                page_mbb,
                first_unit,
                unit_count,
            });
        }

        // Committed batches may have allocated pages (overflow, directory
        // splits) past what replay touched; restore the watermark so new
        // allocations never clobber them.
        disk.ensure_allocated(watermark);
        let directory = MutableBPlusTree::from_parts(dir_root, dir_height, dir_len, fanout);
        let st = MutState {
            units,
            nodes,
            len,
            meta_pages,
        };
        let snapshot = Arc::new(snapshot_of(&st, page_size));
        Self {
            state: Mutex::new(st),
            directory,
            published: Mutex::new(snapshot),
            page_size,
        }
    }

    /// The fixed head page of the persisted overlay chain — the one page
    /// id a manifest must remember to [`reopen`](Self::reopen) after a
    /// crash.
    pub fn meta_head(&self) -> PageId {
        self.state.lock().unwrap().meta_pages[0]
    }

    /// Live element count.
    pub fn len(&self) -> u64 {
        self.state.lock().unwrap().len
    }

    /// True if no live elements remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recently published consistent view.
    pub fn snapshot(&self) -> Arc<MutSnapshot> {
        self.published.lock().unwrap().clone()
    }

    /// Looks up which unit holds element `id` via the element directory.
    pub fn unit_of<C: PageReads>(&self, cache: &mut C, id: u64) -> Option<u32> {
        self.directory.get_with(cache, id).map(|u| u as u32)
    }

    /// Applies one mutation batch as a single WAL transaction and
    /// publishes the result.
    ///
    /// Every page write (element pages, overflow pages, directory nodes,
    /// the overlay chain) is logged and lands in `cache`'s dirty tier;
    /// the commit fsyncs the log, the new [`MutSnapshot`] is published,
    /// and only then are dirty frames flushed through the durable-LSN
    /// gate — WAL-before-data end to end. A crash before the commit
    /// record is durable undoes the whole batch at replay; after, the
    /// whole batch survives.
    pub fn apply_batch(
        &self,
        log: &dyn RedoLog,
        cache: &SharedPageCache<'_>,
        ops: &[MutationOp],
    ) -> BatchOutcome {
        let mut st = self.state.lock().unwrap();
        let txn = log.begin();
        let mut h = LoggedPages::new(log, cache, txn);
        let mut out = BatchOutcome {
            txn,
            ..BatchOutcome::default()
        };
        for op in ops {
            match *op {
                MutationOp::Insert(e) => {
                    if self.insert_one(&mut st, &mut h, e) {
                        out.inserted += 1;
                    } else {
                        out.rejected_inserts += 1;
                    }
                }
                MutationOp::Delete(id) => {
                    if self.delete_one(&mut st, &mut h, id) {
                        out.deleted += 1;
                    } else {
                        out.missing_deletes += 1;
                    }
                }
            }
        }
        write_overlay(&self.directory, &mut st, &mut h, cache.disk());
        out.durable_lsn = log.commit(txn);
        drop(h);
        *self.published.lock().unwrap() = Arc::new(snapshot_of(&st, self.page_size));
        let (flushed, retained) = cache.flush_dirty(out.durable_lsn);
        out.flushed_pages = flushed;
        out.retained_pages = retained;
        out
    }

    fn insert_one<P: PageReads + PageWrites>(
        &self,
        st: &mut MutState,
        h: &mut P,
        e: SpatialElement,
    ) -> bool {
        if self.directory.get_with(h, e.id).is_some() {
            return false;
        }
        let Some(unit) = choose_unit(st, &e) else {
            return false;
        };
        let codec = ElementPageCodec::new(self.page_size);
        let base_page = st.units[unit].page;
        let mut elems: Vec<SpatialElement> = Vec::new();
        {
            let p = h.page(base_page);
            codec.decode_into(&p, &mut elems);
        }
        let mut buf = Vec::new();
        if elems.len() < codec.capacity() {
            elems.push(e);
            codec.encode_into(&elems, &mut buf);
            h.write(base_page, &buf);
        } else {
            let ov = OverflowCodec::new(self.page_size);
            if st.units[unit].overflow == NO_PAGE {
                let p = h.allocate();
                ov.encode_into(NO_PAGE, std::slice::from_ref(&e), &mut buf);
                h.write(p, &buf);
                st.units[unit].overflow = p.0;
            } else {
                let mut cur = PageId(st.units[unit].overflow);
                loop {
                    let mut chunk: Vec<SpatialElement> = Vec::new();
                    let next = {
                        let p = h.page(cur);
                        ov.decode_append(&p, &mut chunk)
                    };
                    if next != NO_PAGE {
                        cur = PageId(next);
                        continue;
                    }
                    if chunk.len() < ov.capacity() {
                        chunk.push(e);
                        ov.encode_into(NO_PAGE, &chunk, &mut buf);
                        h.write(cur, &buf);
                    } else {
                        // Fresh tail first, link second: a concurrent
                        // chain walker never follows a pointer into
                        // unwritten bytes.
                        let np = h.allocate();
                        ov.encode_into(NO_PAGE, std::slice::from_ref(&e), &mut buf);
                        h.write(np, &buf);
                        ov.encode_into(np.0, &chunk, &mut buf);
                        h.write(cur, &buf);
                    }
                    break;
                }
            }
        }
        let u = &mut st.units[unit];
        u.count += 1;
        u.page_mbb = u.page_mbb.union(&e.mbb);
        let n = &mut st.nodes[u.node.0 as usize];
        n.page_mbb = n.page_mbb.union(&e.mbb);
        st.len += 1;
        self.directory.insert(h, e.id, unit as u64);
        true
    }

    fn delete_one<P: PageReads + PageWrites>(&self, st: &mut MutState, h: &mut P, id: u64) -> bool {
        let Some(unit) = self.directory.get_with(h, id) else {
            return false;
        };
        let unit = unit as usize;
        let codec = ElementPageCodec::new(self.page_size);
        let base_page = st.units[unit].page;
        let mut elems: Vec<SpatialElement> = Vec::new();
        {
            let p = h.page(base_page);
            codec.decode_into(&p, &mut elems);
        }
        let mut buf = Vec::new();
        let mut removed = false;
        if let Some(pos) = elems.iter().position(|x| x.id == id) {
            elems.remove(pos);
            codec.encode_into(&elems, &mut buf);
            h.write(base_page, &buf);
            removed = true;
        } else {
            let ov = OverflowCodec::new(self.page_size);
            let mut cur = st.units[unit].overflow;
            while cur != NO_PAGE {
                let mut chunk: Vec<SpatialElement> = Vec::new();
                let next = {
                    let p = h.page(PageId(cur));
                    ov.decode_append(&p, &mut chunk)
                };
                if let Some(pos) = chunk.iter().position(|x| x.id == id) {
                    chunk.remove(pos);
                    // An emptied page stays linked (lazy reclamation) so
                    // the chain remains walkable for in-flight readers.
                    ov.encode_into(next, &chunk, &mut buf);
                    h.write(PageId(cur), &buf);
                    removed = true;
                    break;
                }
                cur = next;
            }
        }
        if !removed {
            // Directory pointed at a unit that no longer holds the id —
            // impossible while directory updates share the batch mutex.
            return false;
        }
        self.directory.delete(h, id);
        st.units[unit].count -= 1;
        st.len -= 1;
        true
    }
}

/// Deterministic insert placement: the node whose tile covers the
/// element's center (tiles tile the extent; nearest tile for outliers),
/// then the unit in that node whose partition box covers/is nearest to
/// the center. Scan order breaks ties, so placement is reproducible.
fn choose_unit(st: &MutState, e: &SpatialElement) -> Option<usize> {
    let probe = Aabb::from_point(center_of(&e.mbb));
    let mut best_node = None;
    let mut best_d = f64::INFINITY;
    for (i, n) in st.nodes.iter().enumerate() {
        if n.unit_count == 0 {
            continue;
        }
        let d = n.tile.min_distance_sq(&probe);
        if d < best_d {
            best_d = d;
            best_node = Some(i);
            if d == 0.0 {
                break;
            }
        }
    }
    let n = &st.nodes[best_node?];
    let mut best = None;
    let mut bd = f64::INFINITY;
    for ui in n.first_unit..(n.first_unit + n.unit_count) {
        let d = st.units[ui as usize].partition_mbb.min_distance_sq(&probe);
        if d < bd {
            bd = d;
            best = Some(ui as usize);
            if d == 0.0 {
                break;
            }
        }
    }
    best
}

fn center_of(a: &Aabb) -> Point3 {
    a.center()
}

fn snapshot_of(st: &MutState, page_size: usize) -> MutSnapshot {
    MutSnapshot {
        units: st.units.clone(),
        nodes: st.nodes.clone(),
        len: st.len,
        page_size,
    }
}

/// Serializes the overlay and writes it over the page chain, extending
/// the chain first if the body outgrew it. Layout:
///
/// ```text
/// chain page := next u64 | payload chunk (page_size - 8 bytes)
/// body       := magic u64 | len u64 | dir_fanout u32 | dir_root u64
///             | dir_height u32 | dir_len u64 | watermark u64
///             | n_units u64 | unit*
///             | n_nodes u64 | node*
/// unit       := page u64 | overflow u64 | count u32 | node u32
///             | page_mbb 48 | partition_mbb 48
/// node       := first_unit u32 | unit_count u32 | tile 48 | page_mbb 48
/// ```
fn write_overlay<P: PageReads + PageWrites>(
    directory: &MutableBPlusTree,
    st: &mut MutState,
    h: &mut P,
    disk: &Disk,
) {
    let ps = h.page_size();
    let payload_per_page = ps - 8;
    let body_len = OVERLAY_FIXED + st.units.len() * OVERLAY_UNIT + st.nodes.len() * OVERLAY_NODE;
    let pages_needed = body_len.div_ceil(payload_per_page).max(1);
    while st.meta_pages.len() < pages_needed {
        st.meta_pages.push(h.allocate());
    }

    let (dir_root, dir_height, dir_len) = directory.parts();
    let watermark = disk.allocated_pages();
    let mut body = Vec::with_capacity(body_len);
    body.put_u64_le_ext(MUT_MAGIC);
    body.put_u64_le_ext(st.len);
    body.put_u32_le_ext(directory.fanout() as u32);
    body.put_u64_le_ext(dir_root.0);
    body.put_u32_le_ext(dir_height);
    body.put_u64_le_ext(dir_len);
    body.put_u64_le_ext(watermark);
    body.put_u64_le_ext(st.units.len() as u64);
    for u in &st.units {
        body.put_u64_le_ext(u.page.0);
        body.put_u64_le_ext(u.overflow);
        body.put_u32_le_ext(u.count);
        body.put_u32_le_ext(u.node.0);
        put_aabb(&mut body, &u.page_mbb);
        put_aabb(&mut body, &u.partition_mbb);
    }
    body.put_u64_le_ext(st.nodes.len() as u64);
    for n in &st.nodes {
        body.put_u32_le_ext(n.first_unit);
        body.put_u32_le_ext(n.unit_count);
        put_aabb(&mut body, &n.tile);
        put_aabb(&mut body, &n.page_mbb);
    }
    debug_assert_eq!(body.len(), body_len);

    let mut buf = Vec::with_capacity(ps);
    for (i, chunk) in body.chunks(payload_per_page).enumerate() {
        buf.clear();
        let next = if i + 1 < pages_needed {
            st.meta_pages[i + 1].0
        } else {
            NO_PAGE
        };
        buf.extend_from_slice(&next.to_le_bytes());
        buf.extend_from_slice(chunk);
        h.write(st.meta_pages[i], &buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexConfig;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use tfm_storage::{CacheHandle, DiskModel, NoopLog};

    /// Tiny pages so overflow and multi-page overlays happen fast:
    /// base-page capacity (256-2)/56 = 4, overflow capacity 4,
    /// B+-tree fanout (256-11)/16 = 15.
    const PS: usize = 256;

    fn elem(id: u64, x: f64, y: f64, z: f64) -> SpatialElement {
        SpatialElement::new(
            id,
            Aabb::new(Point3::new(x, y, z), Point3::new(x + 1.0, y + 1.0, z + 1.0)),
        )
    }

    /// Deterministic pseudo-uniform points in [0, 100)^3.
    fn scatter(n: u64, id_base: u64) -> Vec<SpatialElement> {
        (0..n)
            .map(|i| {
                let h = (id_base + i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let x = (h % 97) as f64;
                let y = ((h >> 16) % 89) as f64;
                let z = ((h >> 32) % 83) as f64;
                elem(id_base + i, x, y, z)
            })
            .collect()
    }

    fn build(elems: Vec<SpatialElement>) -> (Disk, TransformersIndex) {
        let disk = Disk::in_memory(PS).with_model(DiskModel::free());
        let cfg = IndexConfig {
            unit_capacity: Some(4),
            node_capacity: Some(4),
            ..IndexConfig::default()
        };
        let idx = TransformersIndex::build(&disk, elems, &cfg);
        (disk, idx)
    }

    fn window(lo: f64, hi: f64) -> SpatialQuery {
        SpatialQuery::Window(Aabb::new(Point3::new(lo, lo, lo), Point3::new(hi, hi, hi)))
    }

    /// Ground truth: exact filter over the live element set.
    fn reference(live: &BTreeMap<u64, SpatialElement>, q: &SpatialQuery) -> Vec<u64> {
        let mut ids: Vec<u64> = live
            .values()
            .filter(|e| q.matches(&e.mbb))
            .map(|e| e.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    const QUERIES: [(f64, f64); 4] = [(0.0, 100.0), (10.0, 40.0), (50.0, 90.0), (33.0, 34.0)];

    fn assert_matches_reference(
        snap: &MutSnapshot,
        cache: &SharedPageCache<'_>,
        live: &BTreeMap<u64, SpatialElement>,
        tag: &str,
    ) {
        let mut ch = CacheHandle::shared(cache);
        for (lo, hi) in QUERIES {
            let q = window(lo, hi);
            assert_eq!(
                snap.query(&mut ch, &q),
                reference(live, &q),
                "{tag}: window [{lo}, {hi}]"
            );
        }
        assert_eq!(snap.len(), live.len() as u64, "{tag}: live count");
    }

    #[test]
    fn inserts_land_in_base_pages_and_grow_mbbs() {
        let initial = scatter(24, 0);
        let mut live: BTreeMap<u64, SpatialElement> = initial.iter().map(|e| (e.id, *e)).collect();
        let (disk, idx) = build(initial);
        let mt = MutableTransformers::adopt(&idx, &disk);
        let cache = SharedPageCache::with_shards(&disk, 256, 4);
        let log = NoopLog::new();

        // An element far outside every page MBB still becomes queryable:
        // the grow-only MBBs keep the prefilter conservative.
        let far = elem(1000, 99.5, 99.5, 99.5);
        let ops = [MutationOp::Insert(far)];
        let out = mt.apply_batch(&log, &cache, &ops);
        assert_eq!((out.inserted, out.rejected_inserts), (1, 0));
        live.insert(far.id, far);

        let snap = mt.snapshot();
        assert_matches_reference(&snap, &cache, &live, "after far insert");
        let unit = mt
            .unit_of(&mut CacheHandle::shared(&cache), 1000)
            .expect("directory knows the new element");
        assert!(snap.units()[unit as usize].page_mbb.contains(&far.mbb));
    }

    #[test]
    fn overflow_chains_absorb_inserts_past_page_capacity() {
        // One unit's worth of elements clustered at a point: every insert
        // targets the same unit, so chains must grow.
        let initial: Vec<SpatialElement> = (0..4).map(|i| elem(i, 5.0, 5.0, 5.0)).collect();
        let mut live: BTreeMap<u64, SpatialElement> = initial.iter().map(|e| (e.id, *e)).collect();
        let (disk, idx) = build(initial);
        let mt = MutableTransformers::adopt(&idx, &disk);
        let cache = SharedPageCache::with_shards(&disk, 256, 4);
        let log = NoopLog::new();

        // 4 fill the base page already; 10 more need 3 overflow pages.
        let extra: Vec<MutationOp> = (0..10)
            .map(|i| MutationOp::Insert(elem(100 + i, 5.0, 5.0, 5.0)))
            .collect();
        let out = mt.apply_batch(&log, &cache, &extra);
        assert_eq!(out.inserted, 10);
        for op in &extra {
            if let MutationOp::Insert(e) = op {
                live.insert(e.id, *e);
            }
        }
        let snap = mt.snapshot();
        let chained = snap.units().iter().find(|u| u.overflow != NO_PAGE);
        assert!(chained.is_some(), "no overflow chain was created");
        assert_matches_reference(&snap, &cache, &live, "after overflow");

        // Read the chained unit directly: all 14 elements come back.
        let ui = snap
            .units()
            .iter()
            .position(|u| u.overflow != NO_PAGE)
            .unwrap() as u32;
        let mut elems = Vec::new();
        snap.read_unit(&mut CacheHandle::shared(&cache), ui, &mut elems);
        assert_eq!(elems.len() as u32, snap.units()[ui as usize].count);
    }

    #[test]
    fn deletes_remove_from_base_pages_and_chains() {
        let mut all = scatter(20, 0);
        all.extend((0..8).map(|i| elem(200 + i, 7.0, 7.0, 7.0)));
        let (disk, idx) = build(all.clone());
        let mut live: BTreeMap<u64, SpatialElement> = all.iter().map(|e| (e.id, *e)).collect();
        let mt = MutableTransformers::adopt(&idx, &disk);
        let cache = SharedPageCache::with_shards(&disk, 256, 4);
        let log = NoopLog::new();

        // Push the cluster unit into overflow, then delete across both
        // tiers plus a miss.
        let more: Vec<MutationOp> = (0..6)
            .map(|i| MutationOp::Insert(elem(300 + i, 7.0, 7.0, 7.0)))
            .collect();
        mt.apply_batch(&log, &cache, &more);
        for op in &more {
            if let MutationOp::Insert(e) = op {
                live.insert(e.id, *e);
            }
        }

        let ops = [
            MutationOp::Delete(0),
            MutationOp::Delete(203),
            MutationOp::Delete(305),
            MutationOp::Delete(9999), // never existed
        ];
        let out = mt.apply_batch(&log, &cache, &ops);
        assert_eq!((out.deleted, out.missing_deletes), (3, 1));
        for id in [0, 203, 305] {
            live.remove(&id);
        }
        assert_matches_reference(&mt.snapshot(), &cache, &live, "after deletes");

        // Deleted ids are gone from the directory; re-inserting works.
        let mut ch = CacheHandle::shared(&cache);
        assert_eq!(mt.unit_of(&mut ch, 203), None);
        let back = elem(203, 7.0, 7.0, 7.0);
        let out = mt.apply_batch(&log, &cache, &[MutationOp::Insert(back)]);
        assert_eq!(out.inserted, 1);
        live.insert(203, back);
        assert_matches_reference(&mt.snapshot(), &cache, &live, "after re-insert");
    }

    #[test]
    fn duplicate_inserts_are_rejected_not_applied() {
        let initial = scatter(12, 0);
        let (disk, idx) = build(initial.clone());
        let mt = MutableTransformers::adopt(&idx, &disk);
        let cache = SharedPageCache::with_shards(&disk, 256, 4);
        let log = NoopLog::new();
        let dup = MutationOp::Insert(elem(3, 1.0, 1.0, 1.0)); // id 3 exists
        let out = mt.apply_batch(&log, &cache, &[dup, dup]);
        assert_eq!((out.inserted, out.rejected_inserts), (0, 2));
        assert_eq!(mt.len(), initial.len() as u64);
    }

    #[test]
    fn mixed_batches_match_a_rebuilt_reference() {
        let initial = scatter(40, 0);
        let mut live: BTreeMap<u64, SpatialElement> = initial.iter().map(|e| (e.id, *e)).collect();
        let (disk, idx) = build(initial);
        let mt = MutableTransformers::adopt(&idx, &disk);
        let cache = SharedPageCache::with_shards(&disk, 512, 4);
        let log = NoopLog::new();

        // Deterministic mixed stream: 5 batches of inserts + deletes.
        for round in 0u64..5 {
            let mut ops = Vec::new();
            for i in 0..12 {
                let e = scatter(1, 1000 + round * 100 + i).remove(0);
                ops.push(MutationOp::Insert(e));
            }
            for i in 0..6 {
                // Delete a mix of initial and previously inserted ids.
                let id = (round * 13 + i * 7) % 40;
                ops.push(MutationOp::Delete(id));
            }
            let out = mt.apply_batch(&log, &cache, &ops);
            for op in &ops {
                match *op {
                    MutationOp::Insert(e) => {
                        if live.insert(e.id, e).is_some() {
                            panic!("test generated duplicate id {}", e.id);
                        }
                    }
                    MutationOp::Delete(id) => {
                        live.remove(&id);
                    }
                }
            }
            // Outcome arithmetic must agree with the reference walk.
            assert_eq!(out.inserted, 12, "round {round}");
            assert_eq!(out.deleted + out.missing_deletes, 6, "round {round}");
            assert_matches_reference(&mt.snapshot(), &cache, &live, &format!("round {round}"));
        }

        // Against a *rebuilt-from-scratch* index over the live set: query
        // results must be identical (the acceptance property).
        let (disk2, idx2) = build(live.values().copied().collect());
        let cache2 = SharedPageCache::with_shards(&disk2, 512, 4);
        let mt2 = MutableTransformers::adopt(&idx2, &disk2);
        let snap = mt.snapshot();
        let snap2 = mt2.snapshot();
        for (lo, hi) in QUERIES {
            let q = window(lo, hi);
            assert_eq!(
                snap.query(&mut CacheHandle::shared(&cache), &q),
                snap2.query(&mut CacheHandle::shared(&cache2), &q),
                "mutated vs rebuilt: window [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn overlay_reopen_restores_everything() {
        let initial = scatter(30, 0);
        let mut live: BTreeMap<u64, SpatialElement> = initial.iter().map(|e| (e.id, *e)).collect();
        let (disk, idx) = build(initial);
        let mt = MutableTransformers::adopt(&idx, &disk);
        let cache = SharedPageCache::with_shards(&disk, 512, 4);
        let log = NoopLog::new();

        let mut ops: Vec<MutationOp> = (0..9)
            .map(|i| MutationOp::Insert(elem(500 + i, 12.0, 12.0, 12.0)))
            .collect();
        ops.push(MutationOp::Delete(5));
        mt.apply_batch(&log, &cache, &ops);
        for op in &ops {
            match *op {
                MutationOp::Insert(e) => {
                    live.insert(e.id, e);
                }
                MutationOp::Delete(id) => {
                    live.remove(&id);
                }
            }
        }
        let head = mt.meta_head();
        let old = mt.snapshot();
        drop(mt);
        // NoopLog is always durable, so apply_batch flushed every dirty
        // frame — the raw disk image is complete. Reopen from it alone.
        let mt2 = MutableTransformers::reopen(&disk, head);
        let snap = mt2.snapshot();
        assert_eq!(snap.units(), old.units());
        assert_eq!(snap.nodes(), old.nodes());
        assert_eq!(snap.len(), old.len());
        let fresh_cache = SharedPageCache::with_shards(&disk, 512, 4);
        assert_matches_reference(&snap, &fresh_cache, &live, "reopened");

        // The reopened handle keeps mutating correctly.
        let e = elem(900, 3.0, 3.0, 3.0);
        let out = mt2.apply_batch(&log, &fresh_cache, &[MutationOp::Insert(e)]);
        assert_eq!(out.inserted, 1);
        live.insert(e.id, e);
        assert_matches_reference(&mt2.snapshot(), &fresh_cache, &live, "mutated after reopen");
    }

    #[test]
    fn snapshots_stay_wait_free_under_concurrent_batches() {
        let initial = scatter(32, 0);
        let universe: std::collections::BTreeSet<u64> = (0..32u64).chain(2000..2120).collect();
        let (disk, idx) = build(initial);
        let mt = MutableTransformers::adopt(&idx, &disk);
        let cache = SharedPageCache::with_shards(&disk, 1024, 4);
        let log = NoopLog::new();
        let stop = AtomicBool::new(false);

        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    while !stop.load(Ordering::Relaxed) {
                        let snap = mt.snapshot();
                        let mut ch = CacheHandle::shared(&cache);
                        let ids = snap.query(&mut ch, &window(0.0, 100.0));
                        // Never garbage, never duplicates — under any
                        // interleaving with the writer.
                        assert!(ids.windows(2).all(|w| w[0] < w[1]), "unsorted/dup ids");
                        for id in &ids {
                            assert!(universe.contains(id), "phantom element id {id}");
                        }
                    }
                });
            }
            s.spawn(|| {
                for round in 0u64..10 {
                    let ops: Vec<MutationOp> = (0..12)
                        .map(|i| {
                            let id = 2000 + round * 12 + i;
                            MutationOp::Insert(elem(
                                id,
                                (id % 90) as f64,
                                (id % 80) as f64,
                                (id % 70) as f64,
                            ))
                        })
                        .chain((0..4).map(|i| MutationOp::Delete((round * 4 + i) % 32)))
                        .collect();
                    mt.apply_batch(&log, &cache, &ops);
                }
                stop.store(true, Ordering::Relaxed);
            });
        });
        assert!(mt.len() > 32, "writer made progress");
    }
}
