//! **TRANSFORMERS** — robust spatial joins on non-uniform data
//! distributions (Pavlovic et al., ICDE 2016).
//!
//! TRANSFORMERS is a disk-based spatial join that adapts *at runtime* to
//! local density variations between the two joined datasets:
//!
//! * **Adaptive strategy (role transformation, §VI-A)** — the locally
//!   sparser dataset *guides* the join; the denser dataset *follows*. When
//!   the follower turns out to be locally sparser at the current pivot,
//!   guide and follower switch roles, so only the data actually needed is
//!   retrieved from the locally denser side.
//! * **Adaptive data layout (layout transformation, §VI-B)** — pivots move
//!   between three page-aligned granularities built at indexing time:
//!   *space nodes* (level 0, groups of space units), *space units*
//!   (level 1, one disk page of elements) and *spatial elements*
//!   (level 2). Strong local contrast splits the pivot into finer units so
//!   each one joins against a small, precisely-filtered subset of the
//!   follower.
//! * **Adaptive exploration (§V)** — pivots of the guide are visited one
//!   after the other; the follower is navigated via *connectivity
//!   information* (neighbour links between partitions) with a directed
//!   walk (Alg. 1) and a crawl that collects the candidate pages, followed
//!   by an in-memory grid hash join.
//!
//! # Quick start
//!
//! ```
//! use tfm_storage::Disk;
//! use tfm_datagen::{generate, DatasetSpec};
//! use transformers::{IndexConfig, JoinConfig, TransformersIndex, transformers_join};
//!
//! let disk_a = Disk::default_in_memory();
//! let disk_b = Disk::default_in_memory();
//! let a = generate(&DatasetSpec::uniform(2_000, 1));
//! let b = generate(&DatasetSpec::uniform(2_000, 2));
//!
//! let idx_a = TransformersIndex::build(&disk_a, a, &IndexConfig::default());
//! let idx_b = TransformersIndex::build(&disk_b, b, &IndexConfig::default());
//!
//! let outcome = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &JoinConfig::default());
//! println!("{} intersecting pairs", outcome.pairs.len());
//! ```
//!
//! Indexes are built **per dataset** and can be reused across joins with
//! any other indexed dataset — the property that lets TRANSFORMERS
//! amortize its indexing cost, unlike PBSM whose partitioning depends on
//! the dataset *combination* (paper §VII-C2).

#![warn(missing_docs)]

mod config;
mod costmodel;
mod descriptor;
mod distance;
mod index;
mod join;
mod metadata;
mod mutate;
mod stats;
mod todo;
mod walk;

pub use config::{GuidePick, IndexConfig, JoinConfig, ThresholdPolicy};
pub use costmodel::{CostModel, DeviceParams};
pub use descriptor::{NodeId, SpaceNode, SpaceUnitDesc, UnitId};
pub use distance::distance_join;
pub use index::{TransformersIndex, UnitReader};
pub use join::{transformers_join, EngineSide, JoinOutcome, PivotEngine};
pub use mutate::{
    BatchOutcome, MutNode, MutSnapshot, MutUnit, MutableTransformers, MutationOp, OverflowCodec,
    NO_PAGE, OVERFLOW_HEADER,
};
pub use stats::TransformersStats;
// `IndexBuildPipeline` lives in `tfm-partition` (below the baselines,
// keeping them decoupled from this crate); re-exported so index users
// configure builds from one import.
pub use tfm_partition::IndexBuildPipeline;
pub use todo::SharedTodo;

/// Low-level exploration primitives (adaptive walk, crawl, fallback scan).
///
/// Public so that the GIPSY baseline — which the paper describes as using
/// the same crawling strategy, fixed at element granularity — can share
/// exactly the same machinery instead of a diverging re-implementation.
pub mod explore {
    pub use crate::walk::{
        adaptive_crawl, adaptive_walk, scan_for_intersection, CrawlResult, ExploreScratch,
        WalkResult,
    };
}
