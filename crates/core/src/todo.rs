//! Shared to-do state for the parallel join: a lock-free, per-node
//! coverage board that recovers the sequential path's to-do-list pruning
//! (§V) across independent workers.
//!
//! The sequential join tracks per-side `checked` bitmaps: once a node has
//! acted as a pivot, every result pair involving its elements has been
//! produced, so later pivots drop ("prune") candidate units that belong to
//! checked nodes. Parallel workers each own a private copy of that state,
//! so PR 1 had to disable the pruning — and with it the role
//! transformations that feed it. [`SharedTodo`] restores both with two
//! atomic bitmaps per dataset:
//!
//! * **covered** — set with `Release` ordering *after* a node's pivot
//!   processing has emitted all of its pairs into the owning worker's
//!   buffer, and read with `Acquire` by the candidate filters. Pruning a
//!   candidate therefore implies the pruned node's processing completed
//!   first. Two nodes can never mutually prune each other: each prune
//!   orders the other node's *completion* before this node's *filter
//!   point*, and both at once would form a happens-before cycle.
//! * **claimed** — a test-and-set latch a worker must win before it may
//!   role-switch onto a follower node, guaranteeing each node is processed
//!   as a pivot at most once globally (the parallel analogue of the
//!   sequential `!follower.checked[nf]` switch guard). Claims never prune
//!   anything, so claiming eagerly at switch time is safe.
//!
//! A per-side `remaining` counter (decremented on the first `mark_covered`
//! of each node) lets workers and the scheduler detect that one dataset is
//! fully covered — the sequential termination condition — and skip or
//! discard the pivots that are left.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One dataset's share of the board.
struct TodoSide {
    covered: Box<[AtomicU64]>,
    claimed: Box<[AtomicU64]>,
    remaining: AtomicUsize,
    nodes: usize,
}

const BITS: usize = u64::BITS as usize;

fn bitmap(nodes: usize) -> Box<[AtomicU64]> {
    (0..nodes.div_ceil(BITS))
        .map(|_| AtomicU64::new(0))
        .collect()
}

impl TodoSide {
    fn new(nodes: usize) -> Self {
        Self {
            covered: bitmap(nodes),
            claimed: bitmap(nodes),
            remaining: AtomicUsize::new(nodes),
            nodes,
        }
    }
}

/// Lock-free cross-worker coverage board for one parallel join.
///
/// Indexed by dataset — `side_a = true` addresses dataset A's space nodes,
/// `false` dataset B's — so the same board stays valid when a role
/// transformation swaps which side currently guides.
pub struct SharedTodo {
    sides: [TodoSide; 2],
}

impl SharedTodo {
    /// Creates a board for `nodes_a` A-side and `nodes_b` B-side space
    /// nodes, all unclaimed and uncovered.
    pub fn new(nodes_a: usize, nodes_b: usize) -> Self {
        Self {
            sides: [TodoSide::new(nodes_a), TodoSide::new(nodes_b)],
        }
    }

    fn side(&self, side_a: bool) -> &TodoSide {
        &self.sides[usize::from(!side_a)]
    }

    /// Number of space nodes tracked on a side.
    pub fn nodes(&self, side_a: bool) -> usize {
        self.side(side_a).nodes
    }

    /// Has `node`'s pivot processing completed (all pairs emitted)?
    pub fn is_covered(&self, side_a: bool, node: usize) -> bool {
        let s = self.side(side_a);
        debug_assert!(node < s.nodes);
        s.covered[node / BITS].load(Ordering::Acquire) & (1 << (node % BITS)) != 0
    }

    /// Marks `node` covered. Must only be called once every result pair of
    /// `node` sits in some worker's buffer — the `Release` store is what
    /// makes pruning on the bit safe.
    pub fn mark_covered(&self, side_a: bool, node: usize) {
        let s = self.side(side_a);
        debug_assert!(node < s.nodes);
        let prev = s.covered[node / BITS].fetch_or(1 << (node % BITS), Ordering::Release);
        if prev & (1 << (node % BITS)) == 0 {
            s.remaining.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Attempts to claim `node` for exclusive pivot processing (a role
    /// switch). Returns `true` exactly once per node across all workers.
    pub fn try_claim(&self, side_a: bool, node: usize) -> bool {
        let s = self.side(side_a);
        debug_assert!(node < s.nodes);
        let prev = s.claimed[node / BITS].fetch_or(1 << (node % BITS), Ordering::AcqRel);
        prev & (1 << (node % BITS)) == 0
    }

    /// Nodes on a side not yet covered. Zero means the side is exhausted:
    /// every remaining pivot of the *other* side would have its entire
    /// candidate list pruned, so it can be skipped outright.
    pub fn remaining(&self, side_a: bool) -> usize {
        self.side(side_a).remaining.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for SharedTodo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedTodo")
            .field("nodes_a", &self.nodes(true))
            .field("nodes_b", &self.nodes(false))
            .field("remaining_a", &self.remaining(true))
            .field("remaining_b", &self.remaining(false))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_board_is_uncovered_and_unclaimed() {
        let t = SharedTodo::new(70, 3);
        assert_eq!(t.nodes(true), 70);
        assert_eq!(t.nodes(false), 3);
        assert_eq!(t.remaining(true), 70);
        for n in 0..70 {
            assert!(!t.is_covered(true, n));
        }
    }

    #[test]
    fn covering_is_idempotent_and_counts_down() {
        let t = SharedTodo::new(5, 130);
        t.mark_covered(false, 129);
        t.mark_covered(false, 129);
        t.mark_covered(false, 0);
        assert!(t.is_covered(false, 129));
        assert!(t.is_covered(false, 0));
        assert!(!t.is_covered(false, 64));
        assert_eq!(t.remaining(false), 128);
        assert_eq!(t.remaining(true), 5);
    }

    #[test]
    fn sides_are_independent() {
        let t = SharedTodo::new(10, 10);
        t.mark_covered(true, 7);
        assert!(t.is_covered(true, 7));
        assert!(!t.is_covered(false, 7));
        assert!(t.try_claim(true, 7));
        assert!(t.try_claim(false, 7));
    }

    #[test]
    fn claim_succeeds_exactly_once() {
        let t = SharedTodo::new(0, 64);
        assert!(t.try_claim(false, 63));
        assert!(!t.try_claim(false, 63));
        assert!(t.try_claim(false, 62));
    }

    #[test]
    fn concurrent_claims_have_one_winner_per_node() {
        let t = Arc::new(SharedTodo::new(0, 1000));
        let wins: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let t = Arc::clone(&t);
                    s.spawn(move || (0..1000).filter(|&n| t.try_claim(false, n)).count())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(wins.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn exhaustion_reaches_zero() {
        let t = SharedTodo::new(2, 1);
        t.mark_covered(true, 0);
        t.mark_covered(true, 1);
        assert_eq!(t.remaining(true), 0);
        assert_eq!(t.remaining(false), 1);
    }
}
