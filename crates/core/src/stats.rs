//! Join-execution statistics and time breakdown.

use std::time::Duration;
use tfm_memjoin::JoinStats;

/// Counters and the execution-time breakdown of one TRANSFORMERS join.
///
/// The split between `join_cpu` + `sim_io` ("join cost") and
/// `exploration_overhead` reproduces the paper's Fig. 14 accounting: "The
/// join cost is the time spent on disk access and the time needed to join
/// the data (the final candidate set) in memory. Everything else is
/// considered as the overhead of adaptive exploration."
#[derive(Debug, Clone, Default)]
pub struct TransformersStats {
    /// Metadata comparisons: descriptor-MBB distance/overlap tests during
    /// walk, crawl, prefilter and transformation decisions. The paper's
    /// intersection-test counts for TRANSFORMERS "also include metadata
    /// comparisons" (Fig. 11), so harnesses report
    /// `mem.element_tests + metadata_tests`.
    pub metadata_tests: u64,
    /// Element-level counters of the in-memory joins (raw, before final
    /// deduplication).
    pub mem: JoinStats,
    /// Result pairs after deduplication.
    pub unique_results: u64,
    /// Element pages fetched from disk (page-cache misses), both datasets.
    pub pages_read: u64,
    /// Page-cache hits (reads answered without touching the disk), both
    /// datasets — with the shared cache this includes hits on pages another
    /// worker faulted in.
    pub pool_hits: u64,
    /// Metadata pages read when loading descriptor tables at join start.
    pub metadata_pages_read: u64,
    /// Role transformations performed (guide ↔ follower switches, §VI-A).
    pub role_transformations: u64,
    /// Node → unit layout transformations (§VI-B).
    pub layout_transformations: u64,
    /// Unit → element layout transformations ("extreme skew", §VI-C).
    pub element_layout_transformations: u64,
    /// Candidate units dropped by the to-do-list filter (§V): their node
    /// had already been fully processed as a pivot, so every pair they
    /// could contribute was already produced.
    pub pruned_units: u64,
    /// Subset of [`pruned_units`](Self::pruned_units) pruned because
    /// *another worker's* completed pivot covered the node (via the shared
    /// board of the parallel path). Always 0 in the sequential join.
    pub cross_worker_pruned_units: u64,
    /// Guide pivots skipped whole because the opposite dataset was already
    /// fully covered (the parallel analogue of the sequential join's
    /// early-termination condition). Always 0 in the sequential join.
    pub pruned_pivots: u64,
    /// Adaptive-walk expansion steps.
    pub walk_steps: u64,
    /// Crawl expansion steps.
    pub crawl_steps: u64,
    /// Walks that exhausted their patience and fell back to the metadata
    /// scan (correctness guarantee; see `DESIGN.md`).
    pub walk_fallbacks: u64,
    /// Wall-clock time spent in the in-memory joins.
    pub join_cpu: Duration,
    /// Wall-clock time spent in walk/crawl/filter/transformation logic.
    pub exploration_overhead: Duration,
    /// Simulated device time for all page traffic during the join.
    pub sim_io: Duration,
}

impl TransformersStats {
    /// Total intersection tests as the paper counts them for TRANSFORMERS
    /// (element tests + metadata comparisons, Fig. 11 right).
    pub fn total_tests(&self) -> u64 {
        self.mem.element_tests + self.metadata_tests
    }

    /// "Join cost" in the Fig. 14 sense: simulated I/O + in-memory join CPU.
    pub fn join_cost(&self) -> Duration {
        self.sim_io + self.join_cpu
    }

    /// Page-cache hit fraction of the join phase, in `0.0..=1.0`.
    pub fn pool_hit_fraction(&self) -> f64 {
        let total = self.pool_hits + self.pages_read;
        if total == 0 {
            return 0.0;
        }
        self.pool_hits as f64 / total as f64
    }

    /// Total transformations of any kind.
    pub fn transformations(&self) -> u64 {
        self.role_transformations
            + self.layout_transformations
            + self.element_layout_transformations
    }

    /// Publishes this record's join counters into `reg` under the unified
    /// naming scheme (see `tfm_obs::names`): the cache signals previously
    /// reported only as `pool_hits`/`pages_read` route to `cache.hits` /
    /// `cache.misses`, and the TRANSFORMERS-specific exploration counters
    /// to the `join.*` family. Call once per run with the final (merged)
    /// record — the parallel path publishes the post-merge aggregate, the
    /// sequential path its own stats — so nothing double-counts.
    pub fn publish(&self, reg: &tfm_obs::MetricsRegistry) {
        use tfm_obs::names;
        reg.counter(names::CACHE_HITS).add(self.pool_hits);
        reg.counter(names::CACHE_MISSES).add(self.pages_read);
        reg.counter(names::JOIN_TESTS).add(self.total_tests());
        reg.counter(names::JOIN_ROLE_TRANSFORMATIONS)
            .add(self.role_transformations);
        reg.counter(names::JOIN_PRUNED_UNITS).add(self.pruned_units);
        reg.counter(names::JOIN_WALK_STEPS).add(self.walk_steps);
        reg.counter(names::JOIN_CRAWL_STEPS).add(self.crawl_steps);
    }

    /// Accumulates another stats record into this one.
    ///
    /// Used by the parallel execution subsystem (`tfm-exec`) to combine
    /// per-worker statistics: all counters are exact sums, so merging the
    /// workers in a fixed order yields a deterministic aggregate. Fields
    /// that are only meaningful globally (`unique_results`, `sim_io`) are
    /// summed too and are expected to be overwritten by the caller after
    /// the final deduplication / I/O accounting.
    pub fn merge(&mut self, other: &TransformersStats) {
        self.metadata_tests += other.metadata_tests;
        self.mem.element_tests += other.mem.element_tests;
        self.mem.results += other.mem.results;
        self.unique_results += other.unique_results;
        self.pages_read += other.pages_read;
        self.pool_hits += other.pool_hits;
        self.metadata_pages_read += other.metadata_pages_read;
        self.role_transformations += other.role_transformations;
        self.layout_transformations += other.layout_transformations;
        self.element_layout_transformations += other.element_layout_transformations;
        self.pruned_units += other.pruned_units;
        self.cross_worker_pruned_units += other.cross_worker_pruned_units;
        self.pruned_pivots += other.pruned_pivots;
        self.walk_steps += other.walk_steps;
        self.crawl_steps += other.crawl_steps;
        self.walk_fallbacks += other.walk_fallbacks;
        self.join_cpu += other.join_cpu;
        self.exploration_overhead += other.exploration_overhead;
        self.sim_io += other.sim_io;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_combine_counters() {
        let s = TransformersStats {
            metadata_tests: 10,
            mem: JoinStats {
                element_tests: 90,
                results: 5,
            },
            sim_io: Duration::from_millis(3),
            join_cpu: Duration::from_millis(2),
            exploration_overhead: Duration::from_millis(1),
            role_transformations: 1,
            layout_transformations: 2,
            element_layout_transformations: 3,
            ..Default::default()
        };
        assert_eq!(s.total_tests(), 100);
        assert_eq!(s.join_cost(), Duration::from_millis(5));
        assert_eq!(s.transformations(), 6);
    }

    #[test]
    fn merge_sums_all_counters() {
        let mut a = TransformersStats {
            metadata_tests: 5,
            mem: JoinStats {
                element_tests: 10,
                results: 2,
            },
            unique_results: 2,
            pages_read: 3,
            walk_steps: 7,
            join_cpu: Duration::from_millis(1),
            ..Default::default()
        };
        let b = TransformersStats {
            metadata_tests: 20,
            mem: JoinStats {
                element_tests: 30,
                results: 4,
            },
            unique_results: 4,
            pages_read: 6,
            walk_steps: 1,
            pruned_units: 11,
            cross_worker_pruned_units: 4,
            pruned_pivots: 2,
            join_cpu: Duration::from_millis(2),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.metadata_tests, 25);
        assert_eq!(a.mem.element_tests, 40);
        assert_eq!(a.mem.results, 6);
        assert_eq!(a.unique_results, 6);
        assert_eq!(a.pages_read, 9);
        assert_eq!(a.walk_steps, 8);
        assert_eq!(a.pruned_units, 11);
        assert_eq!(a.cross_worker_pruned_units, 4);
        assert_eq!(a.pruned_pivots, 2);
        assert_eq!(a.join_cpu, Duration::from_millis(3));
    }
}
