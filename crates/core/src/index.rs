//! The TRANSFORMERS indexing phase (paper §IV).
//!
//! Given one dataset, indexing produces the three-level hierarchy:
//!
//! 1. **Space units** — the elements are STR-partitioned into page-sized
//!    groups; each unit's elements are written to one disk page, and the
//!    unit is summarized by a descriptor holding the page pointer, the
//!    tight *page MBB* and the tiling *partition MBB*.
//! 2. **Space nodes** — the unit descriptors are STR-partitioned again into
//!    page-sized groups. Node tiles (the node-level partition MBBs) tile
//!    the dataset extent with no gaps.
//! 3. **Connectivity** — a spatial self-join over the node tiles yields,
//!    per node, the list of overlapping/adjacent nodes ("any spatial join
//!    approach can be used; we use PBSM primarily because of its efficiency
//!    in the building phase" — here a uniform-grid self-join, which *is*
//!    PBSM's partitioning applied to the node tiles). Units inherit their
//!    node's neighbour list.
//!
//! Additionally a B+-tree over the Hilbert values of node centers is built
//! to locate walk start points (§V), and the descriptor tables are written
//! to a contiguous metadata region.
//!
//! # Staged, data-parallel construction
//!
//! [`TransformersIndex::build`] runs as an explicit five-stage pipeline on
//! an [`IndexBuildPipeline`] sized by [`IndexConfig::build_threads`]:
//!
//! 1. **Unit STR** — elements → space-unit partitions (parallel sorts +
//!    per-slab fan-out);
//! 2. **Element-page packing** — page images encoded in parallel, written
//!    sequentially in page order;
//! 3. **Node STR** — unit descriptors → space nodes;
//! 4. **Connectivity** — the uniform-grid self-join, fanned out per node;
//! 5. **Finalize** — reach, Hilbert B+-tree bulk load, metadata region.
//!
//! Every stage is order-preserving, so the disk image (pages, metadata,
//! B+-tree) is **byte-identical at any thread count** — the
//! `build_determinism` integration test checksums whole disks to verify.
//!
//! Indexes are built per dataset and can be **reused** for joins against
//! any other indexed dataset (§VII-C2) — see `examples/index_reuse.rs`.

use crate::config::IndexConfig;
use crate::descriptor::{NodeId, SpaceNode, SpaceUnitDesc, UnitId};
use crate::metadata;
use tfm_bptree::BPlusTree;
use tfm_geom::{hilbert, Aabb, HasMbb, SpatialElement};
use tfm_partition::{IndexBuildPipeline, UniformGrid};
use tfm_pool::StagePool;
use tfm_storage::{
    BufferPool, CacheHandle, Disk, ElemSlice, ElementPageCodec, PageId, PageReads, PoolCounters,
    SharedPageCache,
};

/// Serialized size of one unit descriptor (see `metadata.rs`).
const UNIT_DESC_BYTES: usize = 8 + 48 + 48 + 4 + 2;

/// A fully built TRANSFORMERS index over one dataset.
///
/// The descriptor tables are kept in memory for convenience (tests, the
/// GIPSY baseline); the join phase nevertheless re-reads them from the
/// metadata pages so that the I/O accounting is honest.
#[derive(Debug)]
pub struct TransformersIndex {
    nodes: Vec<SpaceNode>,
    units: Vec<SpaceUnitDesc>,
    extent: Aabb,
    reach_eps: f64,
    btree: BPlusTree,
    meta_first_page: PageId,
    meta_page_count: u64,
    meta_bytes: usize,
    len: usize,
    unit_capacity: usize,
    node_capacity: usize,
}

/// Seed item for the node-level STR pass: one unit with its tiling box.
struct UnitSeed {
    /// Position in the unit-partition vector of pass 1.
    part_idx: usize,
    partition_mbb: Aabb,
    page_mbb: Aabb,
    count: u16,
}

impl HasMbb for UnitSeed {
    fn mbb(&self) -> Aabb {
        self.partition_mbb
    }
}

impl TransformersIndex {
    /// Builds the index, writing element pages, metadata pages and the
    /// Hilbert B+-tree to `disk`.
    ///
    /// Runs the staged pipeline on [`IndexConfig::build_threads`] workers;
    /// the disk image is byte-identical at any thread count.
    ///
    /// # Panics
    /// Panics on an invalid configuration (see
    /// [`TransformersIndex::try_build`] for the non-panicking variant).
    pub fn build(disk: &Disk, elements: Vec<SpatialElement>, cfg: &IndexConfig) -> Self {
        Self::try_build(disk, elements, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`TransformersIndex::build`] with configuration problems (zero
    /// capacities, a unit capacity exceeding the page) reported as a clear
    /// `Err` up front instead of a panic deep inside an STR pass.
    pub fn try_build(
        disk: &Disk,
        elements: Vec<SpatialElement>,
        cfg: &IndexConfig,
    ) -> Result<Self, String> {
        let pipeline = IndexBuildPipeline::new(cfg.build_threads);
        Self::build_with_pipeline(disk, elements, cfg, &pipeline)
    }

    /// [`TransformersIndex::try_build`] on a caller-supplied
    /// [`IndexBuildPipeline`] (e.g. one shared across several dataset
    /// builds by a benchmark harness).
    pub fn build_with_pipeline(
        disk: &Disk,
        elements: Vec<SpatialElement>,
        cfg: &IndexConfig,
        pipeline: &IndexBuildPipeline,
    ) -> Result<Self, String> {
        cfg.validate()?;
        let codec = ElementPageCodec::new(disk.page_size());
        let unit_capacity = cfg.unit_capacity.unwrap_or_else(|| codec.capacity());
        if unit_capacity > codec.capacity() {
            return Err(format!(
                "index config: unit capacity {unit_capacity} exceeds page capacity {}",
                codec.capacity()
            ));
        }
        let node_capacity = cfg
            .node_capacity
            .unwrap_or((disk.page_size() - 16) / UNIT_DESC_BYTES)
            .max(1);

        let len = elements.len();
        let extent = Aabb::union_all(elements.iter().map(|e| e.mbb));

        if elements.is_empty() {
            let meta = metadata::encode(&[], &[]);
            let (first, count) = write_meta(disk, &meta);
            let btree = BPlusTree::bulk_load(disk, &[]);
            return Ok(Self {
                nodes: Vec::new(),
                units: Vec::new(),
                extent,
                reach_eps: 0.0,
                btree,
                meta_first_page: first,
                meta_page_count: count,
                meta_bytes: meta.len(),
                len: 0,
                unit_capacity,
                node_capacity,
            });
        }

        let obs = tfm_obs::global();

        // Stage 1 — unit STR: elements -> space-unit partitions (parallel
        // coordinate sorts + per-slab fan-out).
        let stage = obs.stage_span(tfm_obs::names::BUILD_UNIT_STR);
        let unit_parts = pipeline.partition(elements, unit_capacity);
        drop(stage);

        // Stage 2 — node STR: unit descriptors -> space nodes.
        let stage = obs.stage_span(tfm_obs::names::BUILD_NODE_STR);
        let seeds: Vec<UnitSeed> = unit_parts
            .iter()
            .enumerate()
            .map(|(i, p)| UnitSeed {
                part_idx: i,
                partition_mbb: p.partition_mbb,
                page_mbb: p.page_mbb,
                count: p.items.len() as u16,
            })
            .collect();
        let node_parts = pipeline.partition(seeds, node_capacity);
        drop(stage);

        // Stage 3 — element-page packing: assign unit ids node by node so
        // each node's units are contiguous, and lay element pages out in
        // exactly that order (contiguous run => crawling a node reads
        // sequentially). Page images are encoded in parallel; the writes
        // stay in page order, so bytes and I/O classification match a
        // sequential build exactly.
        let stage = obs.stage_span(tfm_obs::names::BUILD_PAGE_PACK);
        let total_units = unit_parts.len();
        let mut page_order: Vec<usize> = Vec::with_capacity(total_units);
        let mut units: Vec<SpaceUnitDesc> = Vec::with_capacity(total_units);
        let mut nodes: Vec<SpaceNode> = Vec::with_capacity(node_parts.len());
        for np in &node_parts {
            for seed in &np.items {
                page_order.push(seed.part_idx);
            }
        }
        let first_elem_page = pipeline.encode_and_write(disk, total_units, |i, buf| {
            codec.encode_into(&unit_parts[page_order[i]].items, buf)
        });
        for (node_idx, np) in node_parts.iter().enumerate() {
            let first_unit = units.len() as u32;
            for seed in &np.items {
                let unit_id = UnitId(units.len() as u32);
                let page = PageId(first_elem_page.0 + units.len() as u64);
                units.push(SpaceUnitDesc {
                    id: unit_id,
                    page,
                    page_mbb: seed.page_mbb,
                    partition_mbb: seed.partition_mbb,
                    node: NodeId(node_idx as u32),
                    count: seed.count,
                });
            }
            let page_mbb = Aabb::union_all(np.items.iter().map(|s| s.page_mbb));
            let hilbert_key = hilbert::index_of_point(&np.partition_mbb.center(), &extent);
            nodes.push(SpaceNode {
                id: NodeId(node_idx as u32),
                tile: np.partition_mbb,
                page_mbb,
                neighbors: Vec::new(),
                first_unit,
                unit_count: np.items.len() as u32,
                hilbert: hilbert_key,
            });
        }

        drop(stage);

        // Stage 4 — connectivity via a uniform-grid self-join on node
        // tiles, fanned out per node.
        let stage = obs.stage_span(tfm_obs::names::BUILD_CONNECTIVITY);
        compute_connectivity(&mut nodes, &extent, pipeline.pool());
        drop(stage);

        // Stage 5 — finalize: reach, Hilbert B+-tree, metadata region.
        let stage = obs.stage_span(tfm_obs::names::BUILD_FINALIZE);
        // How far element geometry can stick out of a node tile: the crawl
        // inflates tiles by this much so no intersecting page is missed.
        let reach_eps = compute_reach(&nodes, &units);

        // Hilbert B+-tree for walk starts, bulk-loaded through the same
        // pipeline (page encodes fan out; writes stay in page order).
        let mut keyed: Vec<(u64, u64)> = nodes.iter().map(|n| (n.hilbert, n.id.0 as u64)).collect();
        keyed.sort_unstable();
        let btree = BPlusTree::bulk_load_with(disk, &keyed, pipeline);

        // Metadata region.
        let meta = metadata::encode(&nodes, &units);
        let (meta_first_page, meta_page_count) = write_meta(disk, &meta);
        drop(stage);

        Ok(Self {
            nodes,
            units,
            extent,
            reach_eps,
            btree,
            meta_first_page,
            meta_page_count,
            meta_bytes: meta.len(),
            len,
            unit_capacity,
            node_capacity,
        })
    }

    /// Space nodes (level 0).
    pub fn nodes(&self) -> &[SpaceNode] {
        &self.nodes
    }

    /// Space unit descriptors (level 1).
    pub fn units(&self) -> &[SpaceUnitDesc] {
        &self.units
    }

    /// Number of indexed elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounding box of the dataset; node tiles tile exactly this box.
    pub fn extent(&self) -> Aabb {
        self.extent
    }

    /// Maximum distance element geometry protrudes beyond its node tile.
    /// Exploration inflates tiles by this amount (see `DESIGN.md`).
    pub fn reach_eps(&self) -> f64 {
        self.reach_eps
    }

    /// Elements per space unit.
    pub fn unit_capacity(&self) -> usize {
        self.unit_capacity
    }

    /// Units per space node.
    pub fn node_capacity(&self) -> usize {
        self.node_capacity
    }

    /// Number of metadata pages (read at join start).
    pub fn metadata_pages(&self) -> u64 {
        self.meta_page_count
    }

    /// Uses the Hilbert B+-tree to find the node whose center is closest
    /// (in Hilbert order) to `point` — the start descriptor of an adaptive
    /// walk (§V). Charges B+-tree page reads to `disk` (uncached; prefer
    /// [`walk_start_with`](Self::walk_start_with) on hot paths so tree
    /// pages share the caller's page cache).
    pub fn walk_start(&self, disk: &Disk, point: &tfm_geom::Point3) -> Option<NodeId> {
        let mut direct: &Disk = disk;
        self.walk_start_with(&mut direct, point)
    }

    /// [`walk_start`](Self::walk_start) reading the B+-tree's node pages
    /// through `cache` — the same cache the caller reads element pages
    /// with, so walk-start lookups hit instead of re-reading the tree.
    pub fn walk_start_with<C: PageReads>(
        &self,
        cache: &mut C,
        point: &tfm_geom::Point3,
    ) -> Option<NodeId> {
        let key = hilbert::index_of_point(point, &self.extent);
        self.btree
            .nearest_with(cache, key)
            .map(|(_, node)| NodeId(node as u32))
    }

    /// Reads and decodes one space unit's elements through `pool`.
    ///
    /// For concurrent readers prefer [`TransformersIndex::unit_reader`]:
    /// one shared pool behind a `&mut` would serialize every reader, while
    /// a [`UnitReader`] per worker reads the (thread-safe) disk through a
    /// private cache with no contention.
    pub fn read_unit(&self, pool: &mut BufferPool<'_>, unit: UnitId) -> Vec<SpatialElement> {
        let desc = &self.units[unit.0 as usize];
        let codec = ElementPageCodec::new(pool.disk().page_size());
        codec.decode(pool.read(desc.page))
    }

    /// Creates a cheap per-worker read handle over this index's element
    /// pages: a **private** [`BufferPool`] of `pool_pages` pages plus the
    /// decoding codec. `Disk` reads take `&self`, so any number of
    /// [`UnitReader`]s can serve queries against one shared index
    /// concurrently without contending on a single pool. This is the
    /// private-pool ablation mode; the default read path is
    /// [`unit_reader_shared`](Self::unit_reader_shared).
    pub fn unit_reader<'d>(&self, disk: &'d Disk, pool_pages: usize) -> UnitReader<'_, 'd, 'd> {
        self.unit_reader_with(CacheHandle::private(disk, pool_pages))
    }

    /// Creates a per-worker read handle that is a thin view over the
    /// process-wide [`SharedPageCache`]: reads pin cached frames zero-copy
    /// and decoded element pages are shared across every reader of the
    /// cache, while hit/miss counters stay per-handle.
    pub fn unit_reader_shared<'c, 'd>(
        &self,
        cache: &'c SharedPageCache<'d>,
    ) -> UnitReader<'_, 'c, 'd> {
        self.unit_reader_with(CacheHandle::shared(cache))
    }

    /// Creates a read handle over a caller-supplied [`CacheHandle`].
    pub fn unit_reader_with<'c, 'd>(&self, cache: CacheHandle<'c, 'd>) -> UnitReader<'_, 'c, 'd> {
        UnitReader {
            units: &self.units,
            codec: ElementPageCodec::new(cache.disk().page_size()),
            cache,
            scratch: Vec::new(),
        }
    }

    /// Re-reads the metadata region from disk (sequentially) and decodes
    /// the descriptor tables — what a join does on startup. Returns the
    /// number of pages read.
    pub fn load_metadata(&self, disk: &Disk) -> (Vec<SpaceNode>, Vec<SpaceUnitDesc>, u64) {
        let mut bytes = Vec::with_capacity((self.meta_page_count as usize) * disk.page_size());
        for i in 0..self.meta_page_count {
            bytes.extend_from_slice(&disk.read_page_vec(PageId(self.meta_first_page.0 + i)));
        }
        bytes.truncate(self.meta_bytes);
        let (nodes, units) = metadata::decode(&bytes);
        (nodes, units, self.meta_page_count)
    }
}

/// A per-worker read handle over one index's element pages: a
/// [`CacheHandle`] (private pool *or* a view onto the process-wide shared
/// cache) plus the page codec and a decode scratch buffer.
///
/// This is the "split handle" that lets many readers share one immutable
/// [`TransformersIndex`]: the descriptor tables are borrowed read-only,
/// the disk is read through `&self`, and all handle state (counters,
/// scratch, the private pool if any) is per-handle — so `N` workers hold
/// `N` independent readers whose only shared state is the lock-striped
/// cache itself.
pub struct UnitReader<'i, 'c, 'd> {
    units: &'i [SpaceUnitDesc],
    codec: ElementPageCodec,
    cache: CacheHandle<'c, 'd>,
    scratch: Vec<SpatialElement>,
}

impl<'c, 'd> UnitReader<'_, 'c, 'd> {
    /// The handle's cache view, for sharing it with adjacent lookups
    /// (e.g. [`TransformersIndex::walk_start_with`], so B+-tree pages ride
    /// the same cache as element pages).
    pub fn cache_mut(&mut self) -> &mut CacheHandle<'c, 'd> {
        &mut self.cache
    }

    /// Reads and decodes one space unit's elements into a fresh vector.
    /// Prefer [`elements`](Self::elements) on hot paths — it borrows the
    /// decoded records instead of copying them.
    pub fn read(&mut self, unit: UnitId) -> Vec<SpatialElement> {
        self.elements(unit).to_vec()
    }

    /// Decodes one unit's elements into `out`, reusing its capacity.
    pub fn read_into(&mut self, unit: UnitId, out: &mut Vec<SpatialElement>) {
        let page = self.units[unit.0 as usize].page;
        match &mut self.cache {
            // Private mode decodes straight into `out` — no extra copy.
            CacheHandle::Private(pool) => self.codec.decode_into(pool.read(page), out),
            shared => {
                let elems = shared.elements(&self.codec, page, &mut self.scratch);
                out.clear();
                out.extend_from_slice(&elems);
            }
        }
    }

    /// Reads one unit's elements without copying: the shared cache's
    /// decoded tier is borrowed directly (`Arc` clone, no decode on a
    /// hit); private pools decode into the handle's scratch buffer. The
    /// returned guard derefs to `[SpatialElement]`.
    pub fn elements(&mut self, unit: UnitId) -> ElemSlice<'_> {
        let Self {
            units,
            codec,
            cache,
            scratch,
        } = self;
        cache.elements(codec, units[unit.0 as usize].page, scratch)
    }

    /// The disk page a unit's elements live on (the elevator-order key).
    pub fn page_of(&self, unit: UnitId) -> PageId {
        self.units[unit.0 as usize].page
    }

    /// This handle's cache counters (hits/misses and decoded-tier splits).
    pub fn counters(&self) -> PoolCounters {
        self.cache.counters()
    }

    /// Cache hits observed through this handle.
    pub fn hits(&self) -> u64 {
        self.counters().hits
    }

    /// Cache misses (disk page reads) triggered through this handle.
    pub fn misses(&self) -> u64 {
        self.counters().misses
    }
}

/// Writes `meta` to a fresh contiguous page run; returns (first, count).
fn write_meta(disk: &Disk, meta: &[u8]) -> (PageId, u64) {
    let ps = disk.page_size();
    let pages = meta.len().div_ceil(ps).max(1) as u64;
    let first = disk.allocate_contiguous(pages);
    for (i, chunk) in meta.chunks(ps).enumerate() {
        disk.write_page(PageId(first.0 + i as u64), chunk);
    }
    if meta.is_empty() {
        disk.write_page(first, &[]);
    }
    (first, pages)
}

/// Computes node neighbour lists: all pairs of nodes whose tiles intersect
/// (tiles tile space, so touching neighbours share boundary coordinates and
/// closed-box intersection finds them exactly).
///
/// The cell registry is built sequentially (cheap). The quadratic part
/// runs one of two kernels with identical output: a sequential pool uses
/// the classic per-cell **pairwise** loop (each co-located pair tested
/// once per shared cell — no redundant work); a parallel pool evaluates
/// neighbours independently **per node** and fans the nodes out over the
/// workers. `b` is a neighbour of `a` iff the two co-occupy a grid cell
/// and their tiles intersect — a symmetric condition, so both kernels
/// produce exactly the same sets (the parallel one tests each pair from
/// both endpoints, the price of having no shared mutable state). The
/// build-determinism tests compare builds across thread counts and thus
/// hold the two kernels equal.
fn compute_connectivity(nodes: &mut [SpaceNode], extent: &Aabb, pool: &StagePool) {
    if nodes.len() <= 1 {
        return;
    }
    let cells = (nodes.len() as f64).cbrt().ceil() as usize;
    let grid = UniformGrid::cubic(*extent, cells.max(1));
    let mut cell_nodes: Vec<Vec<u32>> = vec![Vec::new(); grid.cell_count()];
    let mut node_cells: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for n in nodes.iter() {
        for cell in grid.cells_overlapping(&n.tile) {
            cell_nodes[cell].push(n.id.0);
            node_cells[n.id.0 as usize].push(cell);
        }
    }

    let neighbor_lists: Vec<Vec<NodeId>> = if pool.is_sequential() {
        let mut sets: Vec<std::collections::BTreeSet<u32>> =
            vec![std::collections::BTreeSet::new(); nodes.len()];
        for members in &cell_nodes {
            for (i, &a) in members.iter().enumerate() {
                for &b in members.iter().skip(i + 1) {
                    if nodes[a as usize].tile.intersects(&nodes[b as usize].tile) {
                        sets[a as usize].insert(b);
                        sets[b as usize].insert(a);
                    }
                }
            }
        }
        sets.into_iter()
            .map(|s| s.into_iter().map(NodeId).collect())
            .collect()
    } else {
        let tiles: Vec<Aabb> = nodes.iter().map(|n| n.tile).collect();
        pool.map_range(nodes.len(), |a| {
            let mut set = std::collections::BTreeSet::new();
            for &cell in &node_cells[a] {
                for &b in &cell_nodes[cell] {
                    if b as usize != a && tiles[a].intersects(&tiles[b as usize]) {
                        set.insert(b);
                    }
                }
            }
            set.into_iter().map(NodeId).collect()
        })
    };
    for (n, list) in nodes.iter_mut().zip(neighbor_lists) {
        n.neighbors = list;
    }
}

/// Largest per-dimension protrusion of any unit's page MBB beyond its
/// node's tile.
fn compute_reach(nodes: &[SpaceNode], units: &[SpaceUnitDesc]) -> f64 {
    let mut reach = 0.0f64;
    for n in nodes {
        for u in n.unit_range() {
            let pm = &units[u].page_mbb;
            if pm.is_empty() {
                continue;
            }
            for d in 0..3 {
                reach = reach
                    .max(n.tile.min.coord(d) - pm.min.coord(d))
                    .max(pm.max.coord(d) - n.tile.max.coord(d));
            }
        }
    }
    reach.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_datagen::{generate, DatasetSpec, Distribution};

    fn build(count: usize, seed: u64) -> (Disk, TransformersIndex, Vec<SpatialElement>) {
        let disk = Disk::default_in_memory();
        let elems = generate(&DatasetSpec {
            max_side: 5.0,
            ..DatasetSpec::uniform(count, seed)
        });
        let idx = TransformersIndex::build(&disk, elems.clone(), &IndexConfig::default());
        (disk, idx, elems)
    }

    #[test]
    fn empty_index() {
        let disk = Disk::default_in_memory();
        let idx = TransformersIndex::build(&disk, vec![], &IndexConfig::default());
        assert!(idx.is_empty());
        assert!(idx.nodes().is_empty());
        assert_eq!(idx.walk_start(&disk, &tfm_geom::Point3::ORIGIN), None);
    }

    #[test]
    fn hierarchy_structure_is_consistent() {
        let (_, idx, elems) = build(5000, 50);
        assert_eq!(idx.len(), elems.len());
        // Units are partitioned into nodes contiguously, each node non-empty.
        let mut seen_units = 0u32;
        for n in idx.nodes() {
            assert_eq!(n.first_unit, seen_units);
            assert!(n.unit_count > 0);
            seen_units += n.unit_count;
            for u in n.unit_range() {
                assert_eq!(idx.units()[u].node, n.id);
            }
        }
        assert_eq!(seen_units as usize, idx.units().len());
        // Total elements match.
        let total: usize = idx.units().iter().map(|u| u.count as usize).sum();
        assert_eq!(total, elems.len());
    }

    #[test]
    fn node_tiles_tile_the_extent() {
        let (_, idx, _) = build(8000, 51);
        let ext = idx.extent();
        let total: f64 = idx.nodes().iter().map(|n| n.tile.volume()).sum();
        assert!((total - ext.volume()).abs() < 1e-6 * ext.volume());
        let union = Aabb::union_all(idx.nodes().iter().map(|n| n.tile));
        assert_eq!(union, ext);
    }

    #[test]
    fn connectivity_links_are_symmetric_and_touching() {
        let (_, idx, _) = build(8000, 52);
        for n in idx.nodes() {
            for &nb in &n.neighbors {
                let other = &idx.nodes()[nb.0 as usize];
                assert!(n.tile.intersects(&other.tile));
                assert!(
                    other.neighbors.contains(&n.id),
                    "asymmetric link {:?} -> {:?}",
                    n.id,
                    nb
                );
                assert_ne!(nb, n.id, "self link");
            }
        }
    }

    #[test]
    fn connectivity_graph_is_connected() {
        let (_, idx, _) = build(6000, 53);
        let n = idx.nodes().len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 0;
        while let Some(i) = stack.pop() {
            count += 1;
            for &nb in &idx.nodes()[i].neighbors {
                if !seen[nb.0 as usize] {
                    seen[nb.0 as usize] = true;
                    stack.push(nb.0 as usize);
                }
            }
        }
        assert_eq!(count, n, "connectivity graph disconnected");
    }

    #[test]
    fn pages_roundtrip_all_elements() {
        let (disk, idx, elems) = build(3000, 54);
        let mut pool = BufferPool::with_default_capacity(&disk);
        let mut ids: Vec<u64> = Vec::new();
        for u in idx.units() {
            let read = idx.read_unit(&mut pool, u.id);
            assert_eq!(read.len(), u.count as usize);
            for e in &read {
                assert!(u.page_mbb.contains(&e.mbb));
            }
            ids.extend(read.iter().map(|e| e.id));
        }
        ids.sort_unstable();
        let mut expected: Vec<u64> = elems.iter().map(|e| e.id).collect();
        expected.sort_unstable();
        assert_eq!(ids, expected);
    }

    #[test]
    fn unit_readers_share_an_index_concurrently() {
        let (disk, idx, elems) = build(3000, 62);
        let mut expected: Vec<u64> = elems.iter().map(|e| e.id).collect();
        expected.sort_unstable();
        // Four threads, each with a private reader over the same index and
        // disk — no `&mut` sharing, no locks, identical decoded contents.
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut reader = idx.unit_reader(&disk, 64);
                    let mut ids: Vec<u64> = Vec::new();
                    let mut buf = Vec::new();
                    for u in idx.units() {
                        reader.read_into(u.id, &mut buf);
                        assert_eq!(reader.page_of(u.id), u.page);
                        ids.extend(buf.iter().map(|e| e.id));
                    }
                    ids.sort_unstable();
                    assert_eq!(ids, expected);
                    assert!(reader.misses() > 0);
                });
            }
        });
    }

    #[test]
    fn metadata_roundtrips_from_disk() {
        let (disk, idx, _) = build(4000, 55);
        let (nodes, units, pages) = idx.load_metadata(&disk);
        assert_eq!(nodes, idx.nodes());
        assert_eq!(units, idx.units());
        assert!(pages > 0);
    }

    #[test]
    fn walk_start_returns_nearby_node() {
        let (disk, idx, _) = build(9000, 56);
        let probe = tfm_geom::Point3::new(500.0, 500.0, 500.0);
        let start = idx.walk_start(&disk, &probe).expect("non-empty index");
        let tile = &idx.nodes()[start.0 as usize].tile;
        // Hilbert locality: the chosen node should be reasonably close to
        // the probe (within a quarter of the universe diagonal).
        let dist = tile.min_distance(&Aabb::from_point(probe));
        assert!(dist < 450.0, "walk start {dist} away");
    }

    #[test]
    fn clustered_data_produces_small_and_large_tiles() {
        let disk = Disk::default_in_memory();
        let elems = generate(&DatasetSpec::with_distribution(
            10_000,
            Distribution::MassiveCluster {
                clusters: 2,
                elements_per_cluster: 5000,
            },
            57,
        ));
        let cfg = IndexConfig {
            unit_capacity: Some(16),
            node_capacity: Some(8),
            ..IndexConfig::default()
        };
        let idx = TransformersIndex::build(&disk, elems, &cfg);
        let vols: Vec<f64> = idx.nodes().iter().map(|n| n.tile.volume()).collect();
        let max = vols.iter().cloned().fold(0.0, f64::max);
        let min = vols.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max / min.max(1e-12) > 8.0,
            "expected contrasting tile volumes, got min {min} max {max}"
        );
    }

    #[test]
    fn try_build_rejects_bad_configs_up_front() {
        let disk = Disk::default_in_memory();
        let elems = generate(&DatasetSpec::uniform(100, 60));
        let err = TransformersIndex::try_build(
            &disk,
            elems.clone(),
            &IndexConfig {
                unit_capacity: Some(0),
                ..IndexConfig::default()
            },
        )
        .expect_err("unit_capacity 0 must be rejected");
        assert!(err.contains("unit_capacity"), "unhelpful error: {err}");
        let err = TransformersIndex::try_build(
            &disk,
            elems.clone(),
            &IndexConfig {
                node_capacity: Some(0),
                ..IndexConfig::default()
            },
        )
        .expect_err("node_capacity 0 must be rejected");
        assert!(err.contains("node_capacity"), "unhelpful error: {err}");
        let err = TransformersIndex::try_build(
            &disk,
            elems,
            &IndexConfig {
                unit_capacity: Some(usize::MAX),
                ..IndexConfig::default()
            },
        )
        .expect_err("oversized unit_capacity must be rejected");
        assert!(err.contains("page capacity"), "unhelpful error: {err}");
        // Nothing was written by any of the failed attempts.
        assert_eq!(disk.allocated_pages(), 0);
    }

    #[test]
    fn parallel_build_produces_identical_index_and_disk() {
        let elems = generate(&DatasetSpec {
            max_side: 5.0,
            ..DatasetSpec::uniform(4000, 61)
        });
        let seq_disk = Disk::default_in_memory();
        let seq = TransformersIndex::build(&seq_disk, elems.clone(), &IndexConfig::default());
        let dump = |d: &Disk| -> Vec<Vec<u8>> {
            (0..d.allocated_pages())
                .map(|p| d.read_page_vec(PageId(p)))
                .collect()
        };
        let seq_pages = dump(&seq_disk);
        for threads in [2, 4] {
            let disk = Disk::default_in_memory();
            let cfg = IndexConfig::default().with_build_threads(threads);
            let idx = TransformersIndex::build(&disk, elems.clone(), &cfg);
            assert_eq!(idx.nodes(), seq.nodes(), "threads = {threads}");
            assert_eq!(idx.units(), seq.units(), "threads = {threads}");
            assert_eq!(idx.reach_eps(), seq.reach_eps());
            assert_eq!(dump(&disk), seq_pages, "threads = {threads}");
        }
    }

    #[test]
    fn custom_capacities_respected() {
        let disk = Disk::default_in_memory();
        let elems = generate(&DatasetSpec::uniform(1000, 58));
        let cfg = IndexConfig {
            unit_capacity: Some(20),
            node_capacity: Some(4),
            ..IndexConfig::default()
        };
        let idx = TransformersIndex::build(&disk, elems, &cfg);
        for u in idx.units() {
            assert!(u.count <= 20);
        }
        for n in idx.nodes() {
            assert!(n.unit_count <= 4);
        }
    }
}
