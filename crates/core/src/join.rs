//! The TRANSFORMERS join: adaptive exploration (paper Alg. 2) with role and
//! data-layout transformations (§VI).
//!
//! The guide dataset's space nodes are visited as pivots in index order
//! (nodes were laid out by STR, so consecutive pivots are spatially
//! adjacent). For each pivot the follower is navigated with the adaptive
//! walk; before any data is read, the pivot-local volume ratio
//! `V_g / V_f` of the two node tiles decides the transformation (§VI):
//!
//! * `V_g/V_f ≤ 1/t_su` → the *follower* is locally sparser: **switch
//!   roles** and re-pivot on the follower node closest to the old pivot;
//! * `V_g/V_f ≥ t_su` → the guide is locally sparser: **split the pivot**
//!   into space units (and possibly further into single elements when the
//!   unit-level ratio exceeds `t_so`);
//! * otherwise join at the coarse node level: crawl the candidate units,
//!   prefilter guide and follower page MBBs against each other, read only
//!   the surviving pages, and run the grid hash join.
//!
//! The join terminates once either dataset's nodes are all checked — every
//! element of one dataset has then been tested against everything it could
//! intersect, which guarantees completeness (§V). Pairs discovered twice
//! (possible after role switches) are deduplicated before returning.

use crate::config::{GuidePick, JoinConfig};
use crate::costmodel::CostModel;
use crate::descriptor::{NodeId, SpaceNode, SpaceUnitDesc, UnitId};
use crate::index::TransformersIndex;
use crate::stats::TransformersStats;
use crate::todo::SharedTodo;
use crate::walk::{adaptive_crawl, adaptive_walk, scan_for_intersection, ExploreScratch};
use std::sync::Arc;
use std::time::Instant;
use tfm_geom::{Aabb, SpatialElement};
use tfm_memjoin::{grid_hash_join, ResultPair};
use tfm_storage::{CacheHandle, Disk, ElementPageCodec, PageReads, SharedPageCache};

/// Result of a TRANSFORMERS join.
#[derive(Debug)]
pub struct JoinOutcome {
    /// Deduplicated, sorted result pairs `(id in A, id in B)`.
    pub pairs: Vec<ResultPair>,
    /// Execution counters and time breakdown.
    pub stats: TransformersStats,
}

/// Guard against degenerate (zero-volume) tiles in ratio computations.
const VOLUME_FLOOR: f64 = 1e-12;

#[inline]
fn vol(b: &Aabb) -> f64 {
    b.volume().max(VOLUME_FLOOR)
}

/// Per-dataset join state.
struct Side<'a> {
    idx: &'a TransformersIndex,
    disk: &'a Disk,
    /// The read path: a view onto the dataset's shared page cache
    /// (default) or a private pool (`JoinConfig::shared_cache = false`).
    cache: CacheHandle<'a, 'a>,
    codec: ElementPageCodec,
    /// Decode scratch for the private path (the shared path borrows the
    /// cache's decoded tier instead).
    elem_scratch: Vec<SpatialElement>,
    // Shared read-only descriptor tables (parallel workers hold clones of
    // the same `Arc`s; only `checked`/`scratch`/`pool` are per-owner).
    nodes: Arc<Vec<SpaceNode>>,
    units: Arc<Vec<SpaceUnitDesc>>,
    checked: Vec<bool>,
    unchecked: usize,
    cursor: usize,
    /// Last walk position when this side acted as follower.
    walk_pos: Option<NodeId>,
    scratch: ExploreScratch,
}

impl<'a> Side<'a> {
    fn new(
        idx: &'a TransformersIndex,
        disk: &'a Disk,
        cfg: &JoinConfig,
        stats: &mut TransformersStats,
        shared: Option<&'a SharedPageCache<'a>>,
    ) -> Self {
        // Join startup: (re)load the descriptor tables from the metadata
        // region — sequential reads charged to the disk.
        let (nodes, units, meta_pages) = idx.load_metadata(disk);
        stats.metadata_pages_read += meta_pages;
        Self::with_tables(idx, disk, cfg, Arc::new(nodes), Arc::new(units), shared)
    }

    /// Builds a side from pre-loaded descriptor tables. The parallel
    /// execution path loads the tables once and shares them across all
    /// workers, so the metadata region is only read (and charged) once
    /// per join and the tables exist once in memory.
    fn with_tables(
        idx: &'a TransformersIndex,
        disk: &'a Disk,
        cfg: &JoinConfig,
        nodes: Arc<Vec<SpaceNode>>,
        units: Arc<Vec<SpaceUnitDesc>>,
        shared: Option<&'a SharedPageCache<'a>>,
    ) -> Self {
        let n = nodes.len();
        let cache = match shared {
            Some(cache) => CacheHandle::shared(cache),
            None => CacheHandle::private(disk, cfg.pool_pages),
        };
        Self {
            idx,
            disk,
            cache,
            codec: ElementPageCodec::new(disk.page_size()),
            elem_scratch: Vec::new(),
            nodes,
            units,
            checked: vec![false; n],
            unchecked: n,
            cursor: 0,
            walk_pos: None,
            scratch: ExploreScratch::default(),
        }
    }

    fn next_unchecked(&mut self) -> Option<usize> {
        while self.cursor < self.nodes.len() {
            if !self.checked[self.cursor] {
                return Some(self.cursor);
            }
            self.cursor += 1;
        }
        None
    }

    fn mark_checked(&mut self, node: usize) {
        if !self.checked[node] {
            self.checked[node] = true;
            self.unchecked -= 1;
        }
    }

    fn read_unit_elements(&mut self, unit: UnitId, out: &mut Vec<SpatialElement>) {
        let page = self.units[unit.0 as usize].page;
        let elems = self
            .cache
            .elements(&self.codec, page, &mut self.elem_scratch);
        out.extend_from_slice(&elems);
    }
}

/// Shared mutable join context.
struct Ctx {
    cfg: JoinConfig,
    cost: CostModel,
    stats: TransformersStats,
    /// Raw result pairs, always oriented (id in A, id in B).
    raw: Vec<ResultPair>,
    /// Cross-worker coverage board (parallel path only). `None` in the
    /// sequential join and in independent-worker mode, where only the
    /// per-owner `Side::checked` state is consulted.
    todo: Option<Arc<SharedTodo>>,
}

impl Ctx {
    /// Builds the join context: capacity-derived cost-model terms plus the
    /// device-bound Eq. 4/8 terms taken from `model_disk`'s disk model.
    fn new(
        cfg: &JoinConfig,
        idx_a: &TransformersIndex,
        idx_b: &TransformersIndex,
        model_disk: &Disk,
        stats: TransformersStats,
    ) -> Self {
        let unit_cap = idx_a.unit_capacity().max(idx_b.unit_capacity());
        let node_cap = idx_a.node_capacity().max(idx_b.node_capacity());
        // Device-bound Eq. 4/8 terms from the disk model (see CostModel docs).
        let model = model_disk.model();
        let device = crate::costmodel::DeviceParams {
            // One extra fine-grained batch costs roughly one random
            // repositioning; one extra page within a batch costs one
            // sequential transfer. The resulting thresholds put the split
            // point where skipping data actually beats reading through it
            // on the modelled device.
            reposition: model.typical_random_cost(),
            transfer: model.sequential_cost(),
        };
        Self {
            cfg: *cfg,
            cost: CostModel::with_device(cfg.thresholds, unit_cap, node_cap, device),
            stats,
            raw: Vec::new(),
            todo: None,
        }
    }

    /// Publishes completion of `node`'s pivot processing. Must run only
    /// after all of the node's pairs have been pushed into `self.raw`.
    fn mark_covered(&self, side_is_a: bool, node: usize) {
        if let Some(t) = self.todo.as_deref() {
            t.mark_covered(side_is_a, node);
        }
    }

    /// Tries to win the exclusive right to role-switch onto `node`. With
    /// no shared board (sequential join, independent workers) there is no
    /// contention and the claim always succeeds.
    fn claim_for_switch(&self, side_is_a: bool, node: usize) -> bool {
        self.todo
            .as_deref()
            .is_none_or(|t| t.try_claim(side_is_a, node))
    }
}

/// Marks `ng` done on all exit paths of a pivot: locally checked for the
/// owner plus, in the parallel path, covered on the shared board — in that
/// order, and only after every pair of `ng` sits in `ctx.raw` (the
/// `Release`/`Acquire` pairing in [`SharedTodo`] makes cross-worker
/// pruning on the bit safe).
fn finish_pivot(ctx: &mut Ctx, guide: &mut Side<'_>, guide_is_a: bool, ng: usize) {
    guide.mark_checked(ng);
    ctx.mark_covered(guide_is_a, ng);
}

/// The to-do-list filter (§V): drops candidate units whose node has been
/// fully processed as a pivot — by this worker (`checked`) or, through the
/// shared board, by any worker. Counts the drops so adaptivity is
/// observable in [`TransformersStats`].
fn prune_covered_candidates(
    ctx: &mut Ctx,
    follower: &Side<'_>,
    follower_is_a: bool,
    candidates: &mut Vec<UnitId>,
) {
    let before = candidates.len() as u64;
    let mut cross = 0u64;
    let todo = ctx.todo.as_deref();
    candidates.retain(|u| {
        let node = follower.units[u.0 as usize].node.0 as usize;
        if follower.checked[node] {
            return false;
        }
        if todo.is_some_and(|t| t.is_covered(follower_is_a, node)) {
            cross += 1;
            return false;
        }
        true
    });
    ctx.stats.pruned_units += before - candidates.len() as u64;
    ctx.stats.cross_worker_pruned_units += cross;
}

/// Runs the TRANSFORMERS join between two indexed datasets.
///
/// Both indexes must have been built (with [`TransformersIndex::build`]) on
/// their respective disks; the indexes are reusable across joins.
pub fn transformers_join(
    idx_a: &TransformersIndex,
    disk_a: &Disk,
    idx_b: &TransformersIndex,
    disk_b: &Disk,
    cfg: &JoinConfig,
) -> JoinOutcome {
    let io_before = disk_a.stats().merged(&disk_b.stats());
    let mut stats = TransformersStats::default();

    // The per-dataset page caches: one shared (sequential join = one
    // reader, but identical machinery and accounting to the parallel
    // path) or private pools under the `--private-pool` ablation.
    let cache_a = cfg
        .shared_cache
        .then(|| SharedPageCache::with_policy(disk_a, cfg.pool_pages, 1, cfg.cache_policy));
    let cache_b = cfg
        .shared_cache
        .then(|| SharedPageCache::with_policy(disk_b, cfg.pool_pages, 1, cfg.cache_policy));
    let mut side_a = Side::new(idx_a, disk_a, cfg, &mut stats, cache_a.as_ref());
    let mut side_b = Side::new(idx_b, disk_b, cfg, &mut stats, cache_b.as_ref());

    let mut ctx = Ctx::new(cfg, idx_a, idx_b, disk_b, stats);

    let guide_is_a = matches!(cfg.first_guide, GuidePick::A);

    loop {
        if side_a.unchecked == 0 || side_b.unchecked == 0 {
            break;
        }
        let (guide, follower) = if guide_is_a {
            (&mut side_a, &mut side_b)
        } else {
            (&mut side_b, &mut side_a)
        };
        let Some(pivot) = guide.next_unchecked() else {
            break;
        };
        process_node_pivot(&mut ctx, guide, follower, guide_is_a, pivot, true);
    }

    // Deduplicate: pairs can be discovered from both sides after role
    // switches.
    ctx.raw.sort_unstable();
    ctx.raw.dedup();
    ctx.stats.unique_results = ctx.raw.len() as u64;
    let (ca, cb) = (side_a.cache.counters(), side_b.cache.counters());
    ctx.stats.pages_read = ca.misses + cb.misses;
    ctx.stats.pool_hits = ca.hits + cb.hits;

    let io_after = side_a.disk.stats().merged(&side_b.disk.stats());
    let delta = io_after.delta_since(&io_before);
    ctx.stats.sim_io = delta.sim_io_time();

    // Run-end telemetry: the sequential join publishes its own record (the
    // parallel path publishes once after merging workers in tfm-exec, so
    // this never double-counts).
    let obs = tfm_obs::global();
    if obs.is_enabled() {
        ctx.stats.publish(obs);
        delta.publish(obs);
        if let Some(c) = &cache_a {
            c.stats().publish_shared_extras(obs);
        }
        if let Some(c) = &cache_b {
            c.stats().publish_shared_extras(obs);
        }
    }

    JoinOutcome {
        pairs: ctx.raw,
        stats: ctx.stats,
    }
}

/// Locates a follower node reaching `pivot_box`, updating the follower's
/// walk position. Falls back to a linear metadata scan when the walk's
/// patience runs out (correctness guarantee).
fn locate(ctx: &mut Ctx, follower: &mut Side<'_>, pivot_box: &Aabb) -> Option<NodeId> {
    if follower.nodes.is_empty() {
        return None;
    }
    let reach = follower.idx.reach_eps();
    // Cheap extent reject.
    ctx.stats.metadata_tests += 1;
    if !follower.idx.extent().inflate(reach).intersects(pivot_box) {
        return None;
    }
    let start = match follower.walk_pos {
        Some(n) => n,
        None => {
            if ctx.cfg.hilbert_walk_start {
                // The B+-tree descent reads through the follower's page
                // cache, so tree pages share frames with element pages.
                follower
                    .idx
                    .walk_start_with(&mut follower.cache, &pivot_box.center())
                    .unwrap_or(NodeId(0))
            } else {
                NodeId(0)
            }
        }
    };
    let r = adaptive_walk(
        &follower.nodes,
        reach,
        pivot_box,
        start,
        ctx.cfg.walk_patience,
        &mut follower.scratch,
    );
    ctx.stats.walk_steps += r.steps;
    ctx.stats.metadata_tests += r.metadata_tests;
    follower.walk_pos = Some(r.found.unwrap_or(r.closest));
    match r.found {
        Some(n) => Some(n),
        None => {
            // The greedy walk gave up; verify with the exhaustive scan so
            // no result can ever be missed.
            ctx.stats.walk_fallbacks += 1;
            scan_for_intersection(
                &follower.nodes,
                reach,
                pivot_box,
                &mut ctx.stats.metadata_tests,
            )
        }
    }
}

/// Processes one node-level pivot of the guide dataset.
fn process_node_pivot(
    ctx: &mut Ctx,
    guide: &mut Side<'_>,
    follower: &mut Side<'_>,
    guide_is_a: bool,
    ng: usize,
    allow_switch: bool,
) {
    let t0 = Instant::now();
    let pivot_box = guide.nodes[ng].page_mbb;
    if pivot_box.is_empty() {
        finish_pivot(ctx, guide, guide_is_a, ng);
        ctx.stats.exploration_overhead += t0.elapsed();
        return;
    }

    // Walk steps of *this pivot* only: the cost model calibrates per-step
    // exploration time, so it must see the delta, not the running total.
    let walk_before = ctx.stats.walk_steps;
    let Some(nf) = locate(ctx, follower, &pivot_box) else {
        finish_pivot(ctx, guide, guide_is_a, ng);
        let dt = t0.elapsed();
        ctx.stats.exploration_overhead += dt;
        ctx.cost
            .record_exploration((ctx.stats.walk_steps - walk_before).max(1), dt);
        return;
    };

    // Transformation decision (§VI): compare pivot-local tile volumes.
    // Both indexes pack the same number of elements per node, so the tile
    // volume ratio reflects the inverse local density ratio.
    let ratio = vol(&guide.nodes[ng].tile) / vol(&follower.nodes[nf.0 as usize].tile);

    if allow_switch
        && ctx.cost.should_switch_roles(ratio)
        && !follower.checked[nf.0 as usize]
        && ctx.claim_for_switch(!guide_is_a, nf.0 as usize)
    {
        // Transform 1 (role): the follower is locally sparser — let it
        // guide. The new pivot is the follower node found at the old
        // pivot's location; the old pivot stays unchecked and will be
        // revisited later. In the parallel path the claim guarantees no
        // other worker processes the same switched pivot.
        ctx.stats.role_transformations += 1;
        ctx.cost.on_transformation();
        ctx.stats.exploration_overhead += t0.elapsed();
        process_node_pivot(ctx, follower, guide, !guide_is_a, nf.0 as usize, false);
        return;
    }

    if ctx.cost.should_split_node(ratio) {
        // Transform 2 (layout): the guide is locally sparser — descend the
        // pivot to space-unit granularity.
        ctx.stats.layout_transformations += 1;
        ctx.cost.on_transformation();
        ctx.stats.exploration_overhead += t0.elapsed();
        process_node_units(ctx, guide, follower, guide_is_a, ng, nf);
        finish_pivot(ctx, guide, guide_is_a, ng);
        return;
    }

    // No transformation: coarse-grained join of the whole node.
    let mut crawl = adaptive_crawl(
        &follower.nodes,
        &follower.units,
        follower.idx.reach_eps(),
        &pivot_box,
        nf,
        &mut follower.scratch,
    );
    ctx.stats.crawl_steps += crawl.steps;
    ctx.stats.metadata_tests += crawl.metadata_tests;

    // To-do-list filter (§V): pairs against already-covered follower nodes
    // were produced when those nodes were pivots — drop their units.
    prune_covered_candidates(ctx, follower, !guide_is_a, &mut crawl.candidates);
    if crawl.candidates.is_empty() {
        finish_pivot(ctx, guide, guide_is_a, ng);
        ctx.stats.exploration_overhead += t0.elapsed();
        return;
    }

    // Node-level prefilter (§V "In-memory Join"): join the page MBBs of the
    // guide's units with the follower candidates; only surviving pages are
    // read.
    let guide_unit_ids: Vec<UnitId> = guide.nodes[ng]
        .unit_range()
        .map(|u| guide.units[u].id)
        .collect();
    let (guide_keep, follower_keep) = if ctx.cfg.node_prefilter {
        prefilter(ctx, guide, follower, &guide_unit_ids, &crawl.candidates)
    } else {
        (guide_unit_ids.clone(), crawl.candidates.clone())
    };
    let dt_explore = t0.elapsed();
    ctx.stats.exploration_overhead += dt_explore;
    ctx.cost.record_exploration(
        crawl.steps + (ctx.stats.walk_steps - walk_before).max(1),
        dt_explore,
    );

    // Read the surviving pages in ascending page order (elevator order):
    // a node's units occupy contiguous pages, so candidate batches read
    // mostly sequentially — the locality benefit of the data-oriented
    // layout the paper relies on.
    let pages = (guide_keep.len() + follower_keep.len()) as u64;
    let mut guide_elems = Vec::new();
    for &u in &guide_keep {
        guide.read_unit_elements(u, &mut guide_elems);
    }
    let mut follower_keep = follower_keep;
    follower_keep.sort_unstable_by_key(|u| follower.units[u.0 as usize].page);
    let mut follower_elems = Vec::new();
    for &u in &follower_keep {
        follower.read_unit_elements(u, &mut follower_elems);
    }
    ctx.cost
        .record_io(pages, guide.disk.model().access_cost(false) * pages as u32);

    // In-memory join (grid hash join, §VII-A).
    let tj = Instant::now();
    let before = ctx.stats.mem.element_tests;
    let pairs = grid_hash_join(
        &guide_elems,
        &follower_elems,
        &ctx.cfg.mem_grid,
        &mut ctx.stats.mem,
    );
    let dt = tj.elapsed();
    ctx.stats.join_cpu += dt;
    ctx.cost
        .record_comparisons(ctx.stats.mem.element_tests - before, dt);
    push_oriented(&mut ctx.raw, pairs, guide_is_a);

    finish_pivot(ctx, guide, guide_is_a, ng);
}

/// Bipartite page-MBB prefilter: keeps guide units intersecting at least
/// one follower candidate and vice versa.
fn prefilter(
    ctx: &mut Ctx,
    guide: &Side<'_>,
    follower: &Side<'_>,
    guide_units: &[UnitId],
    candidates: &[UnitId],
) -> (Vec<UnitId>, Vec<UnitId>) {
    let mut keep_follower = vec![false; candidates.len()];
    let mut keep_guide = Vec::with_capacity(guide_units.len());
    for &gu in guide_units {
        let gbox = guide.units[gu.0 as usize].page_mbb;
        let mut any = false;
        for (i, &fu) in candidates.iter().enumerate() {
            ctx.stats.metadata_tests += 1;
            if gbox.intersects(&follower.units[fu.0 as usize].page_mbb) {
                any = true;
                keep_follower[i] = true;
            }
        }
        if any {
            keep_guide.push(gu);
        }
    }
    let kept: Vec<UnitId> = candidates
        .iter()
        .zip(&keep_follower)
        .filter_map(|(&u, &k)| k.then_some(u))
        .collect();
    let considered = (guide_units.len() + candidates.len()) as u64;
    let filtered = considered - (keep_guide.len() + kept.len()) as u64;
    ctx.cost.record_filter(filtered, considered);
    (keep_guide, kept)
}

/// Transform 2/3: processes a guide node at space-unit granularity, with a
/// possible further descent to element granularity (§VI-B).
fn process_node_units(
    ctx: &mut Ctx,
    guide: &mut Side<'_>,
    follower: &mut Side<'_>,
    guide_is_a: bool,
    ng: usize,
    nf_hint: NodeId,
) {
    let unit_range = guide.nodes[ng].unit_range();
    let mut local_pos = nf_hint;

    for u in unit_range {
        let t0 = Instant::now();
        let unit_id = guide.units[u].id;
        let pivot_box = guide.units[u].page_mbb;
        if pivot_box.is_empty() {
            continue;
        }

        // Walk from the previous unit's position: consecutive units are
        // spatially adjacent, so the walk is short.
        let reach = follower.idx.reach_eps();
        let r = adaptive_walk(
            &follower.nodes,
            reach,
            &pivot_box,
            local_pos,
            ctx.cfg.walk_patience,
            &mut follower.scratch,
        );
        ctx.stats.walk_steps += r.steps;
        ctx.stats.metadata_tests += r.metadata_tests;
        local_pos = r.found.unwrap_or(r.closest);
        let found = match r.found {
            Some(n) => Some(n),
            None => {
                ctx.stats.walk_fallbacks += 1;
                scan_for_intersection(
                    &follower.nodes,
                    reach,
                    &pivot_box,
                    &mut ctx.stats.metadata_tests,
                )
            }
        };
        let Some(nf) = found else {
            ctx.stats.exploration_overhead += t0.elapsed();
            continue;
        };
        follower.walk_pos = Some(nf);

        let mut crawl = adaptive_crawl(
            &follower.nodes,
            &follower.units,
            reach,
            &pivot_box,
            nf,
            &mut follower.scratch,
        );
        // To-do-list filter (§V), as at node level.
        prune_covered_candidates(ctx, follower, !guide_is_a, &mut crawl.candidates);
        crawl
            .candidates
            .sort_unstable_by_key(|u| follower.units[u.0 as usize].page);
        ctx.stats.crawl_steps += crawl.steps;
        ctx.stats.metadata_tests += crawl.metadata_tests;
        if crawl.candidates.is_empty() {
            let dt = t0.elapsed();
            ctx.stats.exploration_overhead += dt;
            ctx.cost.record_exploration(r.steps + crawl.steps, dt);
            continue;
        }

        // Unit-level ratio against the candidate closest to the pivot
        // (the "corresponding" unit of the follower, §VI-A).
        let closest = crawl
            .candidates
            .iter()
            .min_by(|&&x, &&y| {
                let dx = follower.units[x.0 as usize]
                    .page_mbb
                    .min_distance_sq(&pivot_box);
                let dy = follower.units[y.0 as usize]
                    .page_mbb
                    .min_distance_sq(&pivot_box);
                dx.total_cmp(&dy)
            })
            .copied()
            .expect("non-empty candidates");
        ctx.stats.metadata_tests += crawl.candidates.len() as u64 * 2;
        let ratio = vol(&guide.units[u].partition_mbb)
            / vol(&follower.units[closest.0 as usize].partition_mbb);
        let split_elements = ctx.cost.should_split_unit(ratio);
        let dt_explore = t0.elapsed();
        ctx.stats.exploration_overhead += dt_explore;
        ctx.cost
            .record_exploration(r.steps + crawl.steps, dt_explore);

        // Read the guide unit's page.
        let mut guide_elems = Vec::new();
        guide.read_unit_elements(unit_id, &mut guide_elems);
        ctx.cost.record_io(1, guide.disk.model().access_cost(false));

        if split_elements {
            // Transform 3: element-granularity pivots. Each follower page
            // is read only if an actual guide element touches it.
            ctx.stats.element_layout_transformations += 1;
            ctx.cost.on_transformation();
            join_element_level(ctx, guide_is_a, &guide_elems, follower, &crawl.candidates);
        } else {
            let mut follower_elems = Vec::new();
            for &fu in &crawl.candidates {
                follower.read_unit_elements(fu, &mut follower_elems);
            }
            ctx.cost.record_io(
                crawl.candidates.len() as u64,
                follower.disk.model().access_cost(false) * crawl.candidates.len() as u32,
            );
            let tj = Instant::now();
            let before = ctx.stats.mem.element_tests;
            let pairs = grid_hash_join(
                &guide_elems,
                &follower_elems,
                &ctx.cfg.mem_grid,
                &mut ctx.stats.mem,
            );
            let dt = tj.elapsed();
            ctx.stats.join_cpu += dt;
            ctx.cost
                .record_comparisons(ctx.stats.mem.element_tests - before, dt);
            push_oriented(&mut ctx.raw, pairs, guide_is_a);
        }
    }
}

/// Element-level join of one guide unit against the candidate follower
/// units: candidate pages whose page MBB no guide element touches are
/// filtered out without being read.
fn join_element_level(
    ctx: &mut Ctx,
    guide_is_a: bool,
    guide_elems: &[SpatialElement],
    follower: &mut Side<'_>,
    candidates: &[UnitId],
) {
    let mut read_pages = 0u64;
    for &fu in candidates {
        let t0 = Instant::now();
        let fbox = follower.units[fu.0 as usize].page_mbb;
        // Element-granularity filter: does any actual guide element reach
        // this follower page?
        let mut touched = false;
        for e in guide_elems {
            ctx.stats.metadata_tests += 1;
            if e.mbb.intersects(&fbox) {
                touched = true;
                break;
            }
        }
        ctx.stats.exploration_overhead += t0.elapsed();
        if !touched {
            continue;
        }
        read_pages += 1;
        let mut follower_elems = Vec::new();
        follower.read_unit_elements(fu, &mut follower_elems);

        let tj = Instant::now();
        let before = ctx.stats.mem.element_tests;
        let mut pairs = Vec::new();
        for e in guide_elems {
            ctx.stats.metadata_tests += 1;
            if !e.mbb.intersects(&fbox) {
                continue;
            }
            for f in &follower_elems {
                ctx.stats.mem.element_tests += 1;
                if e.mbb.intersects(&f.mbb) {
                    pairs.push((e.id, f.id));
                }
            }
        }
        ctx.stats.mem.results += pairs.len() as u64;
        let dt = tj.elapsed();
        ctx.stats.join_cpu += dt;
        ctx.cost
            .record_comparisons(ctx.stats.mem.element_tests - before, dt);
        push_oriented(&mut ctx.raw, pairs, guide_is_a);
    }
    ctx.cost.record_filter(
        candidates.len() as u64 - read_pages,
        candidates.len() as u64,
    );
    ctx.cost.record_io(
        read_pages,
        follower.disk.model().access_cost(false) * read_pages as u32,
    );
}

/// Appends pairs oriented as (id in A, id in B).
fn push_oriented(raw: &mut Vec<ResultPair>, pairs: Vec<ResultPair>, guide_is_a: bool) {
    if guide_is_a {
        raw.extend(pairs);
    } else {
        raw.extend(pairs.into_iter().map(|(g, f)| (f, g)));
    }
}

/// One dataset handed to a [`PivotEngine`]: its index, its disk, and the
/// shared pre-loaded descriptor tables.
///
/// The tables are loaded (and their metadata I/O charged) **once** per
/// join by the caller — see [`TransformersIndex::load_metadata`] — and
/// shared read-only across all engines via `Arc`, so they exist once in
/// memory regardless of worker count.
pub struct EngineSide<'a> {
    /// The dataset's index.
    pub idx: &'a TransformersIndex,
    /// The disk holding the dataset's pages.
    pub disk: &'a Disk,
    /// Space-node descriptor table (shared, read-only).
    pub nodes: Arc<Vec<SpaceNode>>,
    /// Space-unit descriptor table (shared, read-only).
    pub units: Arc<Vec<SpaceUnitDesc>>,
    /// The dataset's process-wide page cache, shared by every worker's
    /// engine (`None` = the private-pool ablation: each engine owns a
    /// `BufferPool` of `JoinConfig::pool_pages` pages).
    pub cache: Option<&'a SharedPageCache<'a>>,
}

/// A single-pivot join executor: the building block of the parallel
/// execution subsystem (`tfm-exec`).
///
/// Each worker owns one engine — its own buffer pools, exploration
/// scratch, cost model and statistics accumulator — and processes a
/// disjoint subset of the guide's node pivots via
/// [`PivotEngine::process_pivot`]. A bare engine (as built by
/// [`PivotEngine::new`]) reproduces PR 1's fully independent workers:
/// no role transformations, purely local to-do-list pruning. The two
/// builders restore the paper's full adaptivity:
///
/// * [`with_role_transforms`](Self::with_role_transforms) re-enables
///   guide ↔ follower switches (§VI-A) *within the worker's chunk*: the
///   engine re-pivots on the locally sparser follower node, keeping its
///   own walk position, cost-model calibration and transformation stats —
///   no global state is touched. A switched-over pivot leaves the original
///   guide node unchecked; [`process_pivot`](Self::process_pivot)
///   re-selects it until it is actually joined (exactly the sequential
///   revisit behaviour).
/// * [`with_shared_todo`](Self::with_shared_todo) attaches the lock-free
///   [`SharedTodo`] board, which (a) makes role switches *exclusive*
///   across workers via claim bits, and (b) recovers the sequential
///   path's to-do-list pruning: candidate units whose node any worker has
///   *completely* processed are dropped before their pages are read. The
///   completion-ordered `Release`/`Acquire` protocol in [`SharedTodo`]
///   guarantees two nodes can never mutually prune each other, so no pair
///   is lost.
///
/// Duplicate pairs (possible after switches, exactly as in the sequential
/// join) are removed by the caller's merge (sort + dedup). The result-pair
/// *set* is byte-identical to the sequential join's after normalization,
/// at any worker count and with any combination of the two features.
pub struct PivotEngine<'a> {
    guide: Side<'a>,
    follower: Side<'a>,
    ctx: Ctx,
    guide_is_a: bool,
    pivots_processed: u64,
    allow_switch: bool,
}

impl<'a> PivotEngine<'a> {
    /// Builds an engine joining `guide` pivots against `follower`.
    ///
    /// `guide_is_a` states whether the guide dataset is "A", so emitted
    /// pairs can be oriented `(id in A, id in B)`.
    pub fn new(
        guide: EngineSide<'a>,
        follower: EngineSide<'a>,
        guide_is_a: bool,
        cfg: &JoinConfig,
    ) -> Self {
        // Catch mismatched (index, tables) pairings at the API boundary
        // instead of deep inside a walk as wrong results or a panic.
        for (side, what) in [(&guide, "guide"), (&follower, "follower")] {
            debug_assert_eq!(
                side.nodes.len(),
                side.idx.nodes().len(),
                "{what} node table does not belong to {what}.idx"
            );
            debug_assert_eq!(
                side.units.len(),
                side.idx.units().len(),
                "{what} unit table does not belong to {what}.idx"
            );
        }
        let (idx_a, idx_b, model_disk) = if guide_is_a {
            (guide.idx, follower.idx, follower.disk)
        } else {
            (follower.idx, guide.idx, guide.disk)
        };
        let ctx = Ctx::new(cfg, idx_a, idx_b, model_disk, TransformersStats::default());
        Self {
            guide: Side::with_tables(
                guide.idx,
                guide.disk,
                cfg,
                guide.nodes,
                guide.units,
                guide.cache,
            ),
            follower: Side::with_tables(
                follower.idx,
                follower.disk,
                cfg,
                follower.nodes,
                follower.units,
                follower.cache,
            ),
            ctx,
            guide_is_a,
            pivots_processed: 0,
            allow_switch: false,
        }
    }

    /// Builder: enables (or disables) role transformations within this
    /// engine's pivots. Without a shared board two engines may redundantly
    /// process the same switched pivot; attach one with
    /// [`with_shared_todo`](Self::with_shared_todo) for cross-worker
    /// claim exclusivity.
    pub fn with_role_transforms(mut self, enabled: bool) -> Self {
        self.allow_switch = enabled;
        self
    }

    /// Builder: attaches the shared coverage board for cross-worker
    /// to-do-list pruning and exclusive role-switch claims. All engines of
    /// one join must share the same board, sized to the two node tables.
    ///
    /// # Panics
    /// Panics (debug) if the board's dimensions do not match the node
    /// tables the engine was built with.
    pub fn with_shared_todo(mut self, todo: Arc<SharedTodo>) -> Self {
        let (nodes_a, nodes_b) = if self.guide_is_a {
            (self.guide.nodes.len(), self.follower.nodes.len())
        } else {
            (self.follower.nodes.len(), self.guide.nodes.len())
        };
        debug_assert_eq!(todo.nodes(true), nodes_a, "board sized for wrong A table");
        debug_assert_eq!(todo.nodes(false), nodes_b, "board sized for wrong B table");
        self.ctx.todo = Some(todo);
        self
    }

    /// Number of guide node pivots (`process_pivot` accepts `0..count`).
    pub fn pivot_count(&self) -> usize {
        self.guide.nodes.len()
    }

    /// Processes one guide node pivot to completion: walk, transformation
    /// decisions, crawl, prefilter, page reads and in-memory join. Appends
    /// the found pairs to the engine's private result buffer.
    ///
    /// A taken role switch processes the *follower* node instead and
    /// leaves `ng` pending; the engine then re-selects `ng` (the
    /// sequential join's revisit loop) until it is joined. When the
    /// follower dataset is already fully covered on the shared board, the
    /// pivot is skipped outright — every candidate would be pruned — and
    /// counted in [`TransformersStats::pruned_pivots`].
    ///
    /// # Panics
    /// Panics if `ng >= self.pivot_count()`.
    pub fn process_pivot(&mut self, ng: usize) {
        assert!(ng < self.guide.nodes.len(), "pivot {ng} out of range");
        self.pivots_processed += 1;
        while !self.guide.checked[ng] {
            if self
                .ctx
                .todo
                .as_deref()
                .is_some_and(|t| t.remaining(!self.guide_is_a) == 0)
            {
                // Safe to skip: a follower node is only marked covered once
                // its processing emitted all its pairs, and that processing
                // cannot have pruned `ng` (never covered — `ng` is ours and
                // still pending), so it joined against `ng`'s units.
                self.ctx.stats.pruned_pivots += 1;
                finish_pivot(&mut self.ctx, &mut self.guide, self.guide_is_a, ng);
                break;
            }
            process_node_pivot(
                &mut self.ctx,
                &mut self.guide,
                &mut self.follower,
                self.guide_is_a,
                ng,
                self.allow_switch,
            );
        }
    }

    /// Pivots processed so far.
    pub fn pivots_processed(&self) -> u64 {
        self.pivots_processed
    }

    /// Tears the engine down, returning the raw (unsorted, possibly
    /// duplicated) result pairs oriented `(id in A, id in B)` plus this
    /// worker's statistics. `pages_read` is filled from the engine's own
    /// buffer-pool misses; `unique_results` and `sim_io` are left for the
    /// caller, which owns deduplication and global I/O accounting.
    pub fn finish(self) -> (Vec<ResultPair>, TransformersStats) {
        let mut stats = self.ctx.stats;
        let (cg, cf) = (self.guide.cache.counters(), self.follower.cache.counters());
        // Handle-local counters: summing per-worker misses equals the
        // total disk reads even when the cache is shared.
        stats.pages_read = cg.misses + cf.misses;
        stats.pool_hits = cg.hits + cf.hits;
        (self.ctx.raw, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{IndexConfig, ThresholdPolicy};
    use tfm_datagen::{generate, neuro, DatasetSpec, Distribution};
    use tfm_memjoin::{canonicalize, nested_loop_join, JoinStats};

    fn run_join(
        a: &[SpatialElement],
        b: &[SpatialElement],
        cfg: &JoinConfig,
    ) -> (Vec<ResultPair>, TransformersStats) {
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let idx_a = TransformersIndex::build(&disk_a, a.to_vec(), &IndexConfig::default());
        let idx_b = TransformersIndex::build(&disk_b, b.to_vec(), &IndexConfig::default());
        let out = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, cfg);
        (out.pairs, out.stats)
    }

    fn oracle(a: &[SpatialElement], b: &[SpatialElement]) -> Vec<ResultPair> {
        let mut s = JoinStats::default();
        canonicalize(nested_loop_join(a, b, &mut s))
    }

    #[test]
    fn matches_oracle_uniform_similar_density() {
        // Box sides large enough that the expected number of intersecting
        // pairs is well above zero for any reasonable RNG stream.
        let a = generate(&DatasetSpec {
            max_side: 18.0,
            ..DatasetSpec::uniform(1500, 70)
        });
        let b = generate(&DatasetSpec {
            max_side: 18.0,
            ..DatasetSpec::uniform(1500, 71)
        });
        let (pairs, stats) = run_join(&a, &b, &JoinConfig::default());
        assert_eq!(pairs, oracle(&a, &b));
        assert!(stats.unique_results > 0);
    }

    #[test]
    fn matches_oracle_contrasting_density() {
        // 100x density contrast: the robustness scenario of Fig. 1/10.
        let a = generate(&DatasetSpec {
            max_side: 20.0,
            ..DatasetSpec::uniform(100, 72)
        });
        let b = generate(&DatasetSpec {
            max_side: 3.0,
            ..DatasetSpec::uniform(10_000, 73)
        });
        let (pairs, _) = run_join(&a, &b, &JoinConfig::default());
        assert_eq!(pairs, oracle(&a, &b));
        // Mirror.
        let (pairs, _) = run_join(&b, &a, &JoinConfig::default());
        assert_eq!(pairs, oracle(&b, &a));
    }

    #[test]
    fn matches_oracle_clustered_skew() {
        let a = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::with_distribution(
                3000,
                Distribution::MassiveCluster {
                    clusters: 3,
                    elements_per_cluster: 1000,
                },
                74,
            )
        });
        let b = generate(&DatasetSpec {
            max_side: 6.0,
            ..DatasetSpec::with_distribution(
                3000,
                Distribution::UniformCluster { clusters: 10 },
                75,
            )
        });
        let (pairs, _) = run_join(&a, &b, &JoinConfig::default());
        assert_eq!(pairs, oracle(&a, &b));
    }

    #[test]
    fn matches_oracle_neuro_surrogate() {
        let (a, b) = neuro::axon_dendrite_pair(4000, 76);
        let (pairs, _) = run_join(&a, &b, &JoinConfig::default());
        assert_eq!(pairs, oracle(&a, &b));
    }

    #[test]
    fn all_threshold_policies_agree_on_results() {
        let a = generate(&DatasetSpec {
            max_side: 10.0,
            ..DatasetSpec::with_distribution(2000, Distribution::DenseCluster { clusters: 8 }, 77)
        });
        let b = generate(&DatasetSpec {
            max_side: 10.0,
            ..DatasetSpec::uniform(2000, 78)
        });
        let expected = oracle(&a, &b);
        for policy in [
            ThresholdPolicy::CostModel,
            ThresholdPolicy::over_fit(),
            ThresholdPolicy::under_fit(),
            ThresholdPolicy::Disabled,
        ] {
            let cfg = JoinConfig::default().with_thresholds(policy);
            let (pairs, _) = run_join(&a, &b, &cfg);
            assert_eq!(pairs, expected, "policy {policy:?} wrong");
        }
    }

    #[test]
    fn guide_choice_does_not_change_results() {
        let a = generate(&DatasetSpec {
            max_side: 10.0,
            ..DatasetSpec::uniform(1000, 79)
        });
        let b = generate(&DatasetSpec {
            max_side: 10.0,
            ..DatasetSpec::uniform(5000, 80)
        });
        let expected = oracle(&a, &b);
        for first_guide in [GuidePick::A, GuidePick::B] {
            let cfg = JoinConfig {
                first_guide,
                ..JoinConfig::default()
            };
            let (pairs, _) = run_join(&a, &b, &cfg);
            assert_eq!(pairs, expected);
        }
    }

    #[test]
    fn empty_inputs() {
        let a = generate(&DatasetSpec::uniform(500, 81));
        let (pairs, _) = run_join(&a, &[], &JoinConfig::default());
        assert!(pairs.is_empty());
        let (pairs, _) = run_join(&[], &a, &JoinConfig::default());
        assert!(pairs.is_empty());
        let (pairs, _) = run_join(&[], &[], &JoinConfig::default());
        assert!(pairs.is_empty());
    }

    #[test]
    fn disjoint_regions_produce_nothing_but_terminate() {
        let a = generate(&DatasetSpec {
            universe: Aabb::new(
                tfm_geom::Point3::new(0.0, 0.0, 0.0),
                tfm_geom::Point3::new(100.0, 100.0, 100.0),
            ),
            ..DatasetSpec::uniform(800, 82)
        });
        let b = generate(&DatasetSpec {
            universe: Aabb::new(
                tfm_geom::Point3::new(500.0, 500.0, 500.0),
                tfm_geom::Point3::new(600.0, 600.0, 600.0),
            ),
            ..DatasetSpec::uniform(800, 83)
        });
        let (pairs, _) = run_join(&a, &b, &JoinConfig::default());
        assert!(pairs.is_empty());
    }

    #[test]
    fn skew_triggers_transformations() {
        // Massive clusters vs uniform: strong local contrast.
        let a = generate(&DatasetSpec {
            max_side: 4.0,
            ..DatasetSpec::with_distribution(20_000, Distribution::massive_cluster_for(20_000), 84)
        });
        let b = generate(&DatasetSpec {
            max_side: 4.0,
            ..DatasetSpec::uniform(20_000, 85)
        });
        // Small capacities give the index enough nodes that the massive
        // clusters create genuinely *local* density contrast.
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let idx_cfg = IndexConfig {
            unit_capacity: Some(32),
            node_capacity: Some(8),
            ..IndexConfig::default()
        };
        let idx_a = TransformersIndex::build(&disk_a, a.to_vec(), &idx_cfg);
        let idx_b = TransformersIndex::build(&disk_b, b.to_vec(), &idx_cfg);
        let out = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &JoinConfig::default());
        let (pairs, stats) = (out.pairs, out.stats);
        assert_eq!(pairs, oracle(&a, &b));
        assert!(
            stats.transformations() > 0,
            "contrasting local densities should trigger transformations: {stats:?}"
        );
    }

    #[test]
    fn no_tr_disables_transformations() {
        let a = generate(&DatasetSpec {
            max_side: 4.0,
            ..DatasetSpec::with_distribution(5000, Distribution::massive_cluster_for(5000), 86)
        });
        let b = generate(&DatasetSpec {
            max_side: 4.0,
            ..DatasetSpec::uniform(5000, 87)
        });
        let cfg = JoinConfig::without_transformations();
        let (pairs, stats) = run_join(&a, &b, &cfg);
        assert_eq!(pairs, oracle(&a, &b));
        assert_eq!(stats.transformations(), 0);
    }

    #[test]
    fn prefilter_ablation_preserves_results() {
        let a = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(2000, 88)
        });
        let b = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(2000, 89)
        });
        let expected = oracle(&a, &b);
        for node_prefilter in [true, false] {
            let cfg = JoinConfig {
                node_prefilter,
                ..JoinConfig::default()
            };
            let (pairs, _) = run_join(&a, &b, &cfg);
            assert_eq!(pairs, expected);
        }
    }

    #[test]
    fn walk_start_ablation_preserves_results() {
        let a = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(1500, 90)
        });
        let b = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(1500, 91)
        });
        let expected = oracle(&a, &b);
        for hilbert_walk_start in [true, false] {
            let cfg = JoinConfig {
                hilbert_walk_start,
                ..JoinConfig::default()
            };
            let (pairs, _) = run_join(&a, &b, &cfg);
            assert_eq!(pairs, expected);
        }
    }

    /// Builds the two [`EngineSide`]s of a join, loading each side's
    /// descriptor tables once (as `tfm-exec` does).
    fn engine_sides<'a>(
        idx_a: &'a TransformersIndex,
        disk_a: &'a Disk,
        idx_b: &'a TransformersIndex,
        disk_b: &'a Disk,
    ) -> (EngineSide<'a>, EngineSide<'a>) {
        let (na, ua, _) = idx_a.load_metadata(disk_a);
        let (nb, ub, _) = idx_b.load_metadata(disk_b);
        let (na, ua) = (Arc::new(na), Arc::new(ua));
        let (nb, ub) = (Arc::new(nb), Arc::new(ub));
        (
            EngineSide {
                idx: idx_a,
                disk: disk_a,
                nodes: na,
                units: ua,
                cache: None,
            },
            EngineSide {
                idx: idx_b,
                disk: disk_b,
                nodes: nb,
                units: ub,
                cache: None,
            },
        )
    }

    #[test]
    fn shared_engines_match_sequential_and_prune() {
        // Clustered vs uniform at small node capacities: strong local
        // density contrast, so role switches fire and the switched pivots
        // feed the coverage board.
        let a = generate(&DatasetSpec {
            max_side: 4.0,
            ..DatasetSpec::with_distribution(12_000, Distribution::massive_cluster_for(12_000), 94)
        });
        let b = generate(&DatasetSpec {
            max_side: 4.0,
            ..DatasetSpec::uniform(12_000, 95)
        });
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        let idx_cfg = IndexConfig {
            unit_capacity: Some(32),
            node_capacity: Some(8),
            ..IndexConfig::default()
        };
        let idx_a = TransformersIndex::build(&disk_a, a.clone(), &idx_cfg);
        let idx_b = TransformersIndex::build(&disk_b, b.clone(), &idx_cfg);
        let cfg = JoinConfig::default();
        let seq = transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, &cfg);

        // Two adaptive engines sharing one board, pivots interleaved
        // even/odd — a deterministic, single-threaded stand-in for two
        // workers racing through their chunks.
        let todo = Arc::new(crate::SharedTodo::new(
            idx_a.nodes().len(),
            idx_b.nodes().len(),
        ));
        let mut engines: Vec<PivotEngine> = (0..2)
            .map(|_| {
                let (ga, gb) = engine_sides(&idx_a, &disk_a, &idx_b, &disk_b);
                PivotEngine::new(ga, gb, true, &cfg)
                    .with_role_transforms(true)
                    .with_shared_todo(Arc::clone(&todo))
            })
            .collect();
        let pivots = engines[0].pivot_count();
        for ng in 0..pivots {
            engines[ng % 2].process_pivot(ng);
        }
        let mut raw = Vec::new();
        let mut stats = TransformersStats::default();
        for e in engines {
            let (pairs, s) = e.finish();
            raw.extend(pairs);
            stats.merge(&s);
        }
        raw.sort_unstable();
        raw.dedup();
        assert_eq!(raw, seq.pairs, "shared adaptive engines diverge");
        assert!(
            stats.role_transformations > 0,
            "clustered contrast should switch roles: {stats:?}"
        );
        assert!(
            stats.cross_worker_pruned_units > 0,
            "interleaved engines should prune across the board: {stats:?}"
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let a = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(3000, 92)
        });
        let b = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(3000, 93)
        });
        let (pairs, stats) = run_join(&a, &b, &JoinConfig::default());
        assert_eq!(stats.unique_results, pairs.len() as u64);
        assert!(stats.mem.results >= stats.unique_results);
        assert!(stats.pages_read > 0);
        assert!(stats.metadata_pages_read > 0);
        assert!(stats.sim_io > std::time::Duration::ZERO);
        assert!(stats.total_tests() >= stats.mem.element_tests);
    }
}
