//! Adaptive walk (Alg. 1) and adaptive crawl over the connectivity graph.
//!
//! The walk navigates the follower's space-node graph towards the pivot:
//! starting from a descriptor located via the Hilbert B+-tree, it
//! repeatedly moves to the unvisited neighbour whose tile is closest to
//! the pivot (implemented as best-first search, which is Alg. 1's
//! queue-based exploration with an optimal pop order). The paper's
//! `isMovingAway` condition becomes a *patience* bound: if the best
//! distance has not improved for `walk_patience` expansions the walk gives
//! up. Because a greedy walk can in principle give up wrongly on
//! pathological tilings, callers fall back to a linear metadata scan —
//! counted as metadata comparisons — so the join never misses results
//! (`DESIGN.md`, "Adaptive walk").
//!
//! The crawl (§V "Adaptive Crawling") floods outward from the intersection
//! record over all nodes whose (inflated) tiles still intersect the pivot,
//! collecting every space unit whose *page MBB* intersects the pivot as a
//! candidate. Tiles intersecting a box form a connected subgraph of the
//! tiling adjacency graph, so the flood is exhaustive.

use crate::descriptor::{NodeId, SpaceNode, SpaceUnitDesc, UnitId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tfm_geom::Aabb;

/// Outcome of an adaptive walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkResult {
    /// A node whose inflated tile intersects the pivot, if one was found.
    pub found: Option<NodeId>,
    /// The closest node seen (walk restart position for the next pivot).
    pub closest: NodeId,
    /// Expansion steps performed.
    pub steps: u64,
    /// Tile-distance computations performed (metadata comparisons).
    pub metadata_tests: u64,
}

/// Scratch space reused across walks/crawls to avoid re-allocating
/// visited-markers for every pivot.
#[derive(Debug, Default)]
pub struct ExploreScratch {
    stamp: u64,
    visited: Vec<u64>,
}

impl ExploreScratch {
    /// Prepares the scratch for a graph of `n` nodes and returns a fresh
    /// visitation stamp.
    fn begin(&mut self, n: usize) -> u64 {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
        }
        self.stamp += 1;
        self.stamp
    }
}

/// `true` if `tile` inflated by `eps` intersects `pivot` — the reach test
/// used by both walk and crawl.
#[inline]
fn reaches(tile: &Aabb, pivot: &Aabb, eps: f64) -> bool {
    tile.inflate(eps).intersects(pivot)
}

/// Floating-point key for the best-first heap.
#[derive(PartialEq)]
struct Dist(f64);

impl Eq for Dist {}
impl PartialOrd for Dist {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Dist {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Adaptive walk: best-first search over `nodes` from `start` towards
/// `pivot`. Succeeds when a node's tile inflated by `reach_eps` intersects
/// the pivot; gives up after `patience` expansions without improvement.
pub fn adaptive_walk(
    nodes: &[SpaceNode],
    reach_eps: f64,
    pivot: &Aabb,
    start: NodeId,
    patience: usize,
    scratch: &mut ExploreScratch,
) -> WalkResult {
    let stamp = scratch.begin(nodes.len());
    let mut steps = 0u64;
    let mut metadata_tests = 0u64;

    let start_dist = nodes[start.0 as usize].tile.min_distance_sq(pivot);
    metadata_tests += 1;

    let mut heap: BinaryHeap<Reverse<(Dist, u32)>> = BinaryHeap::new();
    heap.push(Reverse((Dist(start_dist), start.0)));
    scratch.visited[start.0 as usize] = stamp;

    let mut closest = start;
    let mut best = start_dist;
    let mut since_improvement = 0usize;

    while let Some(Reverse((Dist(dist), id))) = heap.pop() {
        steps += 1;
        let node = &nodes[id as usize];
        metadata_tests += 1;
        if reaches(&node.tile, pivot, reach_eps) {
            return WalkResult {
                found: Some(NodeId(id)),
                closest: NodeId(id),
                steps,
                metadata_tests,
            };
        }
        if dist < best {
            best = dist;
            closest = NodeId(id);
            since_improvement = 0;
        } else {
            since_improvement += 1;
            if since_improvement > patience {
                break; // isMovingAway: the walk is not getting closer.
            }
        }
        for &nb in &node.neighbors {
            let v = &mut scratch.visited[nb.0 as usize];
            if *v != stamp {
                *v = stamp;
                metadata_tests += 1;
                let d = nodes[nb.0 as usize].tile.min_distance_sq(pivot);
                heap.push(Reverse((Dist(d), nb.0)));
            }
        }
    }

    WalkResult {
        found: None,
        closest,
        steps,
        metadata_tests,
    }
}

/// Exhaustive fallback for walks that gave up: scans all node tiles.
/// Returns the first reaching node. The caller counts one metadata test
/// per scanned node.
pub fn scan_for_intersection(
    nodes: &[SpaceNode],
    reach_eps: f64,
    pivot: &Aabb,
    metadata_tests: &mut u64,
) -> Option<NodeId> {
    for n in nodes {
        *metadata_tests += 1;
        if reaches(&n.tile, pivot, reach_eps) {
            return Some(n.id);
        }
    }
    None
}

/// Outcome of a crawl: the candidate units plus counters.
#[derive(Debug, Default)]
pub struct CrawlResult {
    /// Units whose page MBB intersects the pivot.
    pub candidates: Vec<UnitId>,
    /// Nodes visited.
    pub steps: u64,
    /// Metadata comparisons performed.
    pub metadata_tests: u64,
}

/// Adaptive crawl: flood from `from` over all nodes whose inflated tiles
/// intersect `pivot`, collecting units whose page MBBs intersect it.
///
/// # Panics
/// Debug-asserts that `from` itself reaches the pivot (guaranteed when
/// `from` came from a successful [`adaptive_walk`]).
pub fn adaptive_crawl(
    nodes: &[SpaceNode],
    units: &[SpaceUnitDesc],
    reach_eps: f64,
    pivot: &Aabb,
    from: NodeId,
    scratch: &mut ExploreScratch,
) -> CrawlResult {
    debug_assert!(reaches(&nodes[from.0 as usize].tile, pivot, reach_eps));
    let stamp = scratch.begin(nodes.len());
    let mut result = CrawlResult::default();

    let mut queue = vec![from];
    scratch.visited[from.0 as usize] = stamp;
    while let Some(id) = queue.pop() {
        result.steps += 1;
        let node = &nodes[id.0 as usize];
        // Fast reject: if even the node's tight page MBB misses the pivot,
        // none of its units can contribute candidates.
        result.metadata_tests += 1;
        if node.page_mbb.intersects(pivot) {
            for u in node.unit_range() {
                result.metadata_tests += 1;
                if units[u].page_mbb.intersects(pivot) {
                    result.candidates.push(units[u].id);
                }
            }
        }
        for &nb in &node.neighbors {
            let v = &mut scratch.visited[nb.0 as usize];
            if *v != stamp {
                *v = stamp;
                result.metadata_tests += 1;
                if reaches(&nodes[nb.0 as usize].tile, pivot, reach_eps) {
                    queue.push(nb);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndexConfig, TransformersIndex};
    use tfm_datagen::{generate, DatasetSpec};
    use tfm_geom::Point3;
    use tfm_storage::Disk;

    fn index(count: usize, seed: u64) -> TransformersIndex {
        let disk = Disk::default_in_memory();
        let elems = generate(&DatasetSpec {
            max_side: 5.0,
            ..DatasetSpec::uniform(count, seed)
        });
        // Small capacities so even modest datasets produce a rich node graph.
        let cfg = IndexConfig {
            unit_capacity: Some(16),
            node_capacity: Some(8),
            ..IndexConfig::default()
        };
        TransformersIndex::build(&disk, elems, &cfg)
    }

    fn pivot_at(x: f64, y: f64, z: f64, half: f64) -> Aabb {
        Aabb::new(
            Point3::new(x - half, y - half, z - half),
            Point3::new(x + half, y + half, z + half),
        )
    }

    #[test]
    fn walk_finds_intersecting_node_from_any_start() {
        let idx = index(20_000, 60);
        let pivot = pivot_at(700.0, 300.0, 500.0, 10.0);
        let mut scratch = ExploreScratch::default();
        for start in [
            0u32,
            (idx.nodes().len() / 2) as u32,
            (idx.nodes().len() - 1) as u32,
        ] {
            let r = adaptive_walk(
                idx.nodes(),
                idx.reach_eps(),
                &pivot,
                NodeId(start),
                64,
                &mut scratch,
            );
            let found = r.found.expect("pivot inside extent must be found");
            assert!(idx.nodes()[found.0 as usize]
                .tile
                .inflate(idx.reach_eps())
                .intersects(&pivot));
        }
    }

    #[test]
    fn walk_reports_no_intersection_outside_extent() {
        let idx = index(5_000, 61);
        let pivot = pivot_at(5000.0, 5000.0, 5000.0, 1.0);
        let mut scratch = ExploreScratch::default();
        let r = adaptive_walk(
            idx.nodes(),
            idx.reach_eps(),
            &pivot,
            NodeId(0),
            16,
            &mut scratch,
        );
        assert_eq!(r.found, None);
        // Fallback scan agrees.
        let mut tests = 0;
        assert_eq!(
            scan_for_intersection(idx.nodes(), idx.reach_eps(), &pivot, &mut tests),
            None
        );
        assert_eq!(tests as usize, idx.nodes().len());
    }

    #[test]
    fn crawl_collects_exactly_the_intersecting_units() {
        let idx = index(20_000, 62);
        let pivot = pivot_at(400.0, 600.0, 200.0, 25.0);
        let mut scratch = ExploreScratch::default();
        let walk = adaptive_walk(
            idx.nodes(),
            idx.reach_eps(),
            &pivot,
            NodeId(0),
            64,
            &mut scratch,
        );
        let from = walk.found.expect("found");
        let crawl = adaptive_crawl(
            idx.nodes(),
            idx.units(),
            idx.reach_eps(),
            &pivot,
            from,
            &mut scratch,
        );
        let mut got: Vec<u32> = crawl.candidates.iter().map(|u| u.0).collect();
        got.sort_unstable();
        let mut expected: Vec<u32> = idx
            .units()
            .iter()
            .filter(|u| u.page_mbb.intersects(&pivot))
            .map(|u| u.id.0)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected, "crawl must be exhaustive and exact");
    }

    #[test]
    fn crawl_visits_fewer_nodes_than_scan_for_small_pivots() {
        let idx = index(50_000, 63);
        let pivot = pivot_at(500.0, 500.0, 500.0, 3.0);
        let mut scratch = ExploreScratch::default();
        let walk = adaptive_walk(
            idx.nodes(),
            idx.reach_eps(),
            &pivot,
            NodeId(0),
            64,
            &mut scratch,
        );
        let from = walk.found.expect("found");
        let crawl = adaptive_crawl(
            idx.nodes(),
            idx.units(),
            idx.reach_eps(),
            &pivot,
            from,
            &mut scratch,
        );
        assert!(
            (crawl.steps as usize) < idx.nodes().len() / 4,
            "crawl visited {} of {} nodes",
            crawl.steps,
            idx.nodes().len()
        );
    }

    #[test]
    fn scratch_stamps_isolate_consecutive_explorations() {
        let idx = index(3_000, 64);
        let mut scratch = ExploreScratch::default();
        let p1 = pivot_at(100.0, 100.0, 100.0, 5.0);
        let p2 = pivot_at(900.0, 900.0, 900.0, 5.0);
        let r1 = adaptive_walk(
            idx.nodes(),
            idx.reach_eps(),
            &p1,
            NodeId(0),
            64,
            &mut scratch,
        );
        let r2 = adaptive_walk(
            idx.nodes(),
            idx.reach_eps(),
            &p2,
            NodeId(0),
            64,
            &mut scratch,
        );
        assert!(r1.found.is_some());
        assert!(r2.found.is_some());
        assert_ne!(r1.found, r2.found);
    }
}
