//! Distance joins as a spatial-join variation.
//!
//! The paper's related-work section (§VIII) notes that "distance join
//! approaches can be trivially implemented as a variation of a spatial
//! join (by enlarging the objects by the distance predicate)". This module
//! implements exactly that on top of TRANSFORMERS: dataset A's MBBs are
//! inflated by `epsilon` before indexing, the normal adaptive join runs,
//! and the candidate pairs are refined against the exact Euclidean
//! MBB-to-MBB distance.

use crate::config::{IndexConfig, JoinConfig};
use crate::index::TransformersIndex;
use crate::join::{transformers_join, JoinOutcome};
use std::collections::HashMap;
use tfm_geom::{Aabb, SpatialElement};
use tfm_storage::Disk;

/// Joins two datasets on the predicate
/// `min_distance(a.mbb, b.mbb) <= epsilon` (Euclidean box distance; an
/// intersection counts as distance 0).
///
/// Builds a temporary TRANSFORMERS index over A with MBBs inflated by
/// `epsilon` (which makes the filter a Chebyshev-distance superset of the
/// Euclidean predicate) and a normal index over B, runs the adaptive join,
/// then refines the candidates exactly.
///
/// # Panics
/// Panics if `epsilon` is negative or not finite.
pub fn distance_join(
    disk_a: &Disk,
    a: &[SpatialElement],
    disk_b: &Disk,
    b: &[SpatialElement],
    epsilon: f64,
    index_cfg: &IndexConfig,
    join_cfg: &JoinConfig,
) -> JoinOutcome {
    assert!(
        epsilon.is_finite() && epsilon >= 0.0,
        "distance predicate must be a finite non-negative value"
    );
    let inflated: Vec<SpatialElement> = a
        .iter()
        .map(|e| SpatialElement::new(e.id, e.mbb.inflate(epsilon)))
        .collect();
    let idx_a = TransformersIndex::build(disk_a, inflated, index_cfg);
    let idx_b = TransformersIndex::build(disk_b, b.to_vec(), index_cfg);
    let mut out = transformers_join(&idx_a, disk_a, &idx_b, disk_b, join_cfg);

    // Refinement: the inflated filter admits pairs whose per-dimension gaps
    // are all <= epsilon (Chebyshev); keep only true Euclidean matches.
    let mbb_a: HashMap<u64, Aabb> = a.iter().map(|e| (e.id, e.mbb)).collect();
    let mbb_b: HashMap<u64, Aabb> = b.iter().map(|e| (e.id, e.mbb)).collect();
    let eps_sq = epsilon * epsilon;
    out.pairs
        .retain(|(ia, ib)| mbb_a[ia].min_distance_sq(&mbb_b[ib]) <= eps_sq);
    out.stats.unique_results = out.pairs.len() as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_datagen::{generate, DatasetSpec};

    fn oracle(a: &[SpatialElement], b: &[SpatialElement], eps: f64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for x in a {
            for y in b {
                if x.mbb.min_distance_sq(&y.mbb) <= eps * eps {
                    out.push((x.id, y.id));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn run(a: &[SpatialElement], b: &[SpatialElement], eps: f64) -> Vec<(u64, u64)> {
        let disk_a = Disk::default_in_memory();
        let disk_b = Disk::default_in_memory();
        distance_join(
            &disk_a,
            a,
            &disk_b,
            b,
            eps,
            &IndexConfig::default(),
            &JoinConfig::default(),
        )
        .pairs
    }

    #[test]
    fn epsilon_zero_equals_intersection_join() {
        let a = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(800, 1)
        });
        let b = generate(&DatasetSpec {
            max_side: 8.0,
            ..DatasetSpec::uniform(800, 2)
        });
        assert_eq!(run(&a, &b, 0.0), oracle(&a, &b, 0.0));
    }

    #[test]
    fn matches_oracle_for_various_epsilons() {
        let a = generate(&DatasetSpec {
            max_side: 3.0,
            ..DatasetSpec::uniform(600, 3)
        });
        let b = generate(&DatasetSpec {
            max_side: 3.0,
            ..DatasetSpec::uniform(600, 4)
        });
        for eps in [1.0, 10.0, 50.0] {
            assert_eq!(run(&a, &b, eps), oracle(&a, &b, eps), "eps {eps}");
        }
    }

    #[test]
    fn growing_epsilon_grows_result_monotonically() {
        let a = generate(&DatasetSpec {
            max_side: 2.0,
            ..DatasetSpec::uniform(500, 5)
        });
        let b = generate(&DatasetSpec {
            max_side: 2.0,
            ..DatasetSpec::uniform(500, 6)
        });
        let mut last = 0;
        for eps in [0.0, 5.0, 20.0, 100.0] {
            let n = run(&a, &b, eps).len();
            assert!(n >= last, "eps {eps}: {n} < {last}");
            last = n;
        }
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_epsilon_panics() {
        let a = generate(&DatasetSpec::uniform(10, 7));
        run(&a, &a, -1.0);
    }

    #[test]
    fn refinement_rejects_chebyshev_only_pairs() {
        // Two unit boxes offset by (eps, eps, eps): Chebyshev distance eps
        // (inflated filter admits), Euclidean distance eps*sqrt(3) (must be
        // rejected).
        use tfm_geom::{Aabb, Point3};
        let eps = 5.0;
        let a = vec![SpatialElement::new(
            0,
            Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0)),
        )];
        let b = vec![SpatialElement::new(
            0,
            Aabb::new(
                Point3::new(1.0 + eps, 1.0 + eps, 1.0 + eps),
                Point3::new(2.0 + eps, 2.0 + eps, 2.0 + eps),
            ),
        )];
        assert!(run(&a, &b, eps).is_empty());
        // But an axis-aligned offset of exactly eps is kept.
        let c = vec![SpatialElement::new(
            0,
            Aabb::new(
                Point3::new(1.0 + eps, 0.0, 0.0),
                Point3::new(2.0 + eps, 1.0, 1.0),
            ),
        )];
        assert_eq!(run(&a, &c, eps), vec![(0, 0)]);
    }
}
