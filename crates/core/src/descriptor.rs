//! Space descriptors: the metadata of the three-level hierarchy (paper §IV).

use tfm_geom::Aabb;
use tfm_storage::PageId;

/// Identifier of a space unit within one index (dense, `0..unit_count`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId(pub u32);

/// Identifier of a space node within one index (dense, `0..node_count`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Descriptor of a *space unit* — one disk page of spatial elements
/// (hierarchy level 1).
///
/// Exactly the paper's space descriptor (§IV, Fig. 5): a pointer to the
/// unit's disk page plus **two** bounding boxes. The page MBB tightly
/// encloses the stored elements; the partition MBB is the unit's slab of
/// the STR tiling, needed so neighbouring units leave no gaps for the
/// exploration to fall into.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceUnitDesc {
    /// Unit id (position in the index's unit table).
    pub id: UnitId,
    /// Disk page storing this unit's elements.
    pub page: PageId,
    /// Tight bounding box of the stored elements.
    pub page_mbb: Aabb,
    /// Tiling slab of the unit within its node.
    pub partition_mbb: Aabb,
    /// The node this unit belongs to.
    pub node: NodeId,
    /// Number of elements on the page.
    pub count: u16,
}

/// Descriptor of a *space node* — a page-aligned group of space units
/// (hierarchy level 0).
///
/// Node MBBs (the `tile` field) are the partition MBBs of the node-level
/// STR pass: they tile the dataset extent, which is what makes the
/// adaptive walk's greedy navigation well-defined. `neighbors` is the
/// connectivity information: all nodes whose tiles overlap or touch this
/// node's tile (paper §IV "Connectivity"). Space units inherit their
/// node's neighbour list.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceNode {
    /// Node id (position in the index's node table).
    pub id: NodeId,
    /// The node's tiling box ("space node MBB" of the paper, gap-free).
    pub tile: Aabb,
    /// Tight union of the member units' page MBBs.
    pub page_mbb: Aabb,
    /// Ids of adjacent/overlapping nodes.
    pub neighbors: Vec<NodeId>,
    /// Member units: contiguous range in the index's unit table.
    pub first_unit: u32,
    /// Number of member units.
    pub unit_count: u32,
    /// Hilbert value of the tile center (B+-tree key for walk starts).
    pub hilbert: u64,
}

impl SpaceNode {
    /// Iterates the unit-table indices of this node's member units.
    pub fn unit_range(&self) -> std::ops::Range<usize> {
        self.first_unit as usize..(self.first_unit + self.unit_count) as usize
    }

    /// Number of elements summarized by this node.
    pub fn element_count(&self, units: &[SpaceUnitDesc]) -> usize {
        self.unit_range().map(|u| units[u].count as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfm_geom::Point3;

    #[test]
    fn unit_range_is_contiguous() {
        let node = SpaceNode {
            id: NodeId(0),
            tile: Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)),
            page_mbb: Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)),
            neighbors: vec![],
            first_unit: 10,
            unit_count: 3,
            hilbert: 0,
        };
        assert_eq!(node.unit_range(), 10..13);
    }

    #[test]
    fn element_count_sums_units() {
        let mk_unit = |id: u32, count: u16| SpaceUnitDesc {
            id: UnitId(id),
            page: PageId(id as u64),
            page_mbb: Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)),
            partition_mbb: Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)),
            node: NodeId(0),
            count,
        };
        let units = vec![mk_unit(0, 5), mk_unit(1, 7), mk_unit(2, 11)];
        let node = SpaceNode {
            id: NodeId(0),
            tile: Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)),
            page_mbb: Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)),
            neighbors: vec![],
            first_unit: 0,
            unit_count: 3,
            hilbert: 0,
        };
        assert_eq!(node.element_count(&units), 23);
    }
}
