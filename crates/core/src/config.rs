//! Index and join configuration.

use tfm_memjoin::GridConfig;

/// Configuration of the indexing phase (paper §IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexConfig {
    /// Elements per space unit. `None` packs as many 56-byte records as fit
    /// one disk page (the paper's design: space units are page-aligned).
    pub unit_capacity: Option<usize>,
    /// Space units per space node. `None` packs as many unit descriptors as
    /// fit one disk page.
    pub node_capacity: Option<usize>,
    /// Worker threads for the staged build pipeline (STR passes,
    /// element-page encoding, connectivity). `1` (the default) builds
    /// sequentially; any setting produces **byte-identical** disk pages,
    /// metadata and B+-tree — parallelism only changes wall time. `0` is
    /// clamped to 1.
    pub build_threads: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            unit_capacity: None,
            node_capacity: None,
            build_threads: 1,
        }
    }
}

impl IndexConfig {
    /// Builder: sets the build worker count.
    pub fn with_build_threads(mut self, build_threads: usize) -> Self {
        self.build_threads = build_threads;
        self
    }

    /// Checks the configuration for values that could only fail deep inside
    /// the build (a zero capacity panics in the STR pass, pages that can
    /// never fill, …) and reports them as one clear error up front.
    pub fn validate(&self) -> Result<(), String> {
        if self.unit_capacity == Some(0) {
            return Err(
                "index config: unit_capacity must be at least 1 (a space unit holds \
                 at least one element); use None to fill whole pages"
                    .into(),
            );
        }
        if self.node_capacity == Some(0) {
            return Err(
                "index config: node_capacity must be at least 1 (a space node groups \
                 at least one unit); use None to fill whole pages"
                    .into(),
            );
        }
        Ok(())
    }
}

/// How transformation thresholds are chosen (paper §VI-C, §VII-D2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// The paper's cost model: start from the default thresholds
    /// (t_su = 8, t_so = 27 — "an edge of one MBB is two/three times bigger
    /// than the other one") and update them at runtime from the measured
    /// T_ae, T_io, T_comp and the observed filter rate c_flt after the
    /// first transformation.
    CostModel,
    /// Fixed thresholds. `OverFit` in the paper is `fixed(1.5, 1.5)`;
    /// `UnderFit` is `fixed(1e6, 1e6)`.
    Fixed {
        /// Node → unit split threshold (and its reciprocal for role switches).
        t_su: f64,
        /// Unit → element split threshold.
        t_so: f64,
    },
    /// Disable all transformations ("No TR" in Fig. 13): the join sticks to
    /// the initial guide and node-level layout.
    Disabled,
}

impl ThresholdPolicy {
    /// The paper's OverFit configuration (threshold 1.5 ⇒ many
    /// transformations).
    pub fn over_fit() -> Self {
        ThresholdPolicy::Fixed {
            t_su: 1.5,
            t_so: 1.5,
        }
    }

    /// The paper's UnderFit configuration (threshold 10⁶ ⇒ no
    /// transformations triggered, but role/layout machinery still active).
    pub fn under_fit() -> Self {
        ThresholdPolicy::Fixed {
            t_su: 1e6,
            t_so: 1e6,
        }
    }
}

/// Which dataset initially guides the join (paper: "randomly picks one
/// dataset ... and uses it as the guide").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuidePick {
    /// Dataset A guides first.
    A,
    /// Dataset B guides first.
    B,
}

/// Configuration of the join phase (paper §V–§VI).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinConfig {
    /// Threshold policy for role and layout transformations.
    pub thresholds: ThresholdPolicy,
    /// Initial guide dataset.
    pub first_guide: GuidePick,
    /// Adaptive-walk patience: expansions without distance improvement
    /// before the walk gives up (the paper's `isMovingAway` test).
    pub walk_patience: usize,
    /// Page-cache capacity (pages) per dataset during the join — the
    /// capacity of the shared cache in shared mode, or of each worker's
    /// private pool (split across workers in the parallel path) in
    /// private mode.
    pub pool_pages: usize,
    /// Read element, metadata-adjacent and B+-tree pages through **one
    /// process-wide [`tfm_storage::SharedPageCache`] per dataset**, shared
    /// by all workers (zero-copy pin guards + decoded element-page tier).
    /// `false` restores the per-worker private [`tfm_storage::BufferPool`]s
    /// — the `--private-pool` ablation. Results are byte-identical either
    /// way; only I/O counters change.
    pub shared_cache: bool,
    /// In-memory grid hash join configuration (paper §VII-A).
    pub mem_grid: GridConfig,
    /// Node-level prefilter: join guide and follower page MBBs before
    /// reading pages (paper §V "In-memory Join"). Exposed for ablation.
    pub node_prefilter: bool,
    /// Use the Hilbert B+-tree to find walk start points; when `false` the
    /// walk starts from the follower's first node (the paper's stated
    /// alternative). Exposed for ablation.
    pub hilbert_walk_start: bool,
    /// Parallel path (`tfm-exec`) only: let workers perform role
    /// transformations (guide ↔ follower switches, §VI-A) within their
    /// pivot chunks. Exclusivity across workers comes from the shared
    /// claim bitmap when cross-worker pruning is on; without it, two
    /// workers may redundantly process the same switched pivot (duplicates
    /// are removed by the merge). The sequential join ignores this field.
    pub worker_role_transforms: bool,
    /// Parallel path only: share a lock-free covered-node board across
    /// workers so the to-do-list pruning of §V also drops candidates
    /// another worker already covered. The sequential join ignores this
    /// field.
    pub cross_worker_pruning: bool,
    /// Parallel path only: recorded pivot-cost skew signal in `0.0..=1.0`,
    /// typically `ExecReport::steal_fraction()` from a previous run of the
    /// same workload. The scheduler derives its initial chunk size from
    /// pivot count and worker count, and this signal tilts the trade-off:
    /// high skew → smaller chunks (finer steal granularity), low skew →
    /// larger chunks (longer locality runs). `None` uses the neutral
    /// pivot/worker-derived default. The sequential join ignores this
    /// field.
    pub recorded_steal_skew: Option<f64>,
    /// Replacement policy of the per-dataset caches:
    /// [`tfm_storage::CachePolicy::Clock`] (the default, and the
    /// `--cache-policy clock` ablation) or the scan-resistant
    /// [`tfm_storage::CachePolicy::TwoQ`]. Results are byte-identical
    /// either way — replacement only changes which reads hit.
    pub cache_policy: tfm_storage::CachePolicy,
    /// Parallel path only: prefetch window in pages (capacity of the
    /// bounded [`tfm_storage::PrefetchQueue`] feeding the I/O threads).
    /// `0` (the default) disables join prefetch — every unit page is
    /// demand-paged. Requires `shared_cache`; the sequential join ignores
    /// this field.
    pub readahead: usize,
    /// Parallel path only: dedicated prefetch I/O threads when `readahead`
    /// is non-zero (clamped to at least 1). Ignored when prefetch is off.
    pub io_depth: usize,
}

impl Default for JoinConfig {
    fn default() -> Self {
        Self {
            thresholds: ThresholdPolicy::CostModel,
            first_guide: GuidePick::A,
            walk_patience: 64,
            pool_pages: tfm_storage::DEFAULT_POOL_PAGES,
            shared_cache: true,
            mem_grid: GridConfig::default(),
            node_prefilter: true,
            hilbert_walk_start: true,
            worker_role_transforms: true,
            cross_worker_pruning: true,
            recorded_steal_skew: None,
            cache_policy: tfm_storage::CachePolicy::Clock,
            readahead: 0,
            io_depth: 1,
        }
    }
}

impl JoinConfig {
    /// The "No TR" configuration of Fig. 13 (left).
    pub fn without_transformations() -> Self {
        Self {
            thresholds: ThresholdPolicy::Disabled,
            ..Self::default()
        }
    }

    /// Builder: replaces the threshold policy.
    pub fn with_thresholds(mut self, thresholds: ThresholdPolicy) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Builder: disables role transformations inside parallel workers
    /// (the `--no-transform` escape hatch; layout transformations stay
    /// active, as they are pivot-local).
    pub fn without_worker_transforms(mut self) -> Self {
        self.worker_role_transforms = false;
        self
    }

    /// Builder: disables the shared covered-node board of the parallel
    /// path (the `--no-prune` escape hatch): workers fall back to purely
    /// local to-do-list pruning.
    pub fn without_cross_worker_pruning(mut self) -> Self {
        self.cross_worker_pruning = false;
        self
    }

    /// Builder: disables the shared page cache (the `--private-pool`
    /// ablation): every worker reads through a private buffer pool again.
    pub fn with_private_pools(mut self) -> Self {
        self.shared_cache = false;
        self
    }

    /// Builder: records a pivot-cost skew signal (clamped to `0.0..=1.0`)
    /// for the parallel scheduler's adaptive chunk sizing — pass a previous
    /// run's `ExecReport::steal_fraction()`.
    pub fn with_recorded_skew(mut self, skew: f64) -> Self {
        self.recorded_steal_skew = Some(skew.clamp(0.0, 1.0));
        self
    }

    /// Builder: selects the cache replacement policy.
    pub fn with_cache_policy(mut self, policy: tfm_storage::CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Builder: enables join prefetch with a readahead window of `pages`
    /// (0 disables).
    pub fn with_readahead(mut self, pages: usize) -> Self {
        self.readahead = pages;
        self
    }

    /// Builder: sets the prefetch I/O thread count (clamped to ≥ 1 when
    /// prefetch is active).
    pub fn with_io_depth(mut self, depth: usize) -> Self {
        self.io_depth = depth;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_values() {
        assert_eq!(
            ThresholdPolicy::over_fit(),
            ThresholdPolicy::Fixed {
                t_su: 1.5,
                t_so: 1.5
            }
        );
        assert_eq!(
            ThresholdPolicy::under_fit(),
            ThresholdPolicy::Fixed {
                t_su: 1e6,
                t_so: 1e6
            }
        );
        let no_tr = JoinConfig::without_transformations();
        assert_eq!(no_tr.thresholds, ThresholdPolicy::Disabled);
    }

    #[test]
    fn builder_replaces_thresholds() {
        let c = JoinConfig::default().with_thresholds(ThresholdPolicy::over_fit());
        assert_eq!(c.thresholds, ThresholdPolicy::over_fit());
    }

    #[test]
    fn zero_capacities_are_rejected_with_clear_errors() {
        let bad_unit = IndexConfig {
            unit_capacity: Some(0),
            ..IndexConfig::default()
        };
        let err = bad_unit.validate().expect_err("unit_capacity 0 must fail");
        assert!(err.contains("unit_capacity"), "unhelpful error: {err}");
        let bad_node = IndexConfig {
            node_capacity: Some(0),
            ..IndexConfig::default()
        };
        let err = bad_node.validate().expect_err("node_capacity 0 must fail");
        assert!(err.contains("node_capacity"), "unhelpful error: {err}");
        assert!(IndexConfig::default().validate().is_ok());
    }

    #[test]
    fn build_threads_default_and_builder() {
        assert_eq!(IndexConfig::default().build_threads, 1);
        assert_eq!(
            IndexConfig::default().with_build_threads(4).build_threads,
            4
        );
    }

    #[test]
    fn shared_cache_defaults_on_with_private_ablation() {
        assert!(JoinConfig::default().shared_cache);
        assert!(!JoinConfig::default().with_private_pools().shared_cache);
    }

    #[test]
    fn recorded_skew_is_clamped() {
        assert_eq!(
            JoinConfig::default()
                .with_recorded_skew(7.0)
                .recorded_steal_skew,
            Some(1.0)
        );
        assert_eq!(
            JoinConfig::default()
                .with_recorded_skew(-1.0)
                .recorded_steal_skew,
            Some(0.0)
        );
        assert_eq!(JoinConfig::default().recorded_steal_skew, None);
    }
}
