//! Index and join configuration.

use tfm_memjoin::GridConfig;

/// Configuration of the indexing phase (paper §IV).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IndexConfig {
    /// Elements per space unit. `None` packs as many 56-byte records as fit
    /// one disk page (the paper's design: space units are page-aligned).
    pub unit_capacity: Option<usize>,
    /// Space units per space node. `None` packs as many unit descriptors as
    /// fit one disk page.
    pub node_capacity: Option<usize>,
}

/// How transformation thresholds are chosen (paper §VI-C, §VII-D2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// The paper's cost model: start from the default thresholds
    /// (t_su = 8, t_so = 27 — "an edge of one MBB is two/three times bigger
    /// than the other one") and update them at runtime from the measured
    /// T_ae, T_io, T_comp and the observed filter rate c_flt after the
    /// first transformation.
    CostModel,
    /// Fixed thresholds. `OverFit` in the paper is `fixed(1.5, 1.5)`;
    /// `UnderFit` is `fixed(1e6, 1e6)`.
    Fixed {
        /// Node → unit split threshold (and its reciprocal for role switches).
        t_su: f64,
        /// Unit → element split threshold.
        t_so: f64,
    },
    /// Disable all transformations ("No TR" in Fig. 13): the join sticks to
    /// the initial guide and node-level layout.
    Disabled,
}

impl ThresholdPolicy {
    /// The paper's OverFit configuration (threshold 1.5 ⇒ many
    /// transformations).
    pub fn over_fit() -> Self {
        ThresholdPolicy::Fixed {
            t_su: 1.5,
            t_so: 1.5,
        }
    }

    /// The paper's UnderFit configuration (threshold 10⁶ ⇒ no
    /// transformations triggered, but role/layout machinery still active).
    pub fn under_fit() -> Self {
        ThresholdPolicy::Fixed {
            t_su: 1e6,
            t_so: 1e6,
        }
    }
}

/// Which dataset initially guides the join (paper: "randomly picks one
/// dataset ... and uses it as the guide").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuidePick {
    /// Dataset A guides first.
    A,
    /// Dataset B guides first.
    B,
}

/// Configuration of the join phase (paper §V–§VI).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinConfig {
    /// Threshold policy for role and layout transformations.
    pub thresholds: ThresholdPolicy,
    /// Initial guide dataset.
    pub first_guide: GuidePick,
    /// Adaptive-walk patience: expansions without distance improvement
    /// before the walk gives up (the paper's `isMovingAway` test).
    pub walk_patience: usize,
    /// Buffer-pool capacity (pages) per dataset during the join.
    pub pool_pages: usize,
    /// In-memory grid hash join configuration (paper §VII-A).
    pub mem_grid: GridConfig,
    /// Node-level prefilter: join guide and follower page MBBs before
    /// reading pages (paper §V "In-memory Join"). Exposed for ablation.
    pub node_prefilter: bool,
    /// Use the Hilbert B+-tree to find walk start points; when `false` the
    /// walk starts from the follower's first node (the paper's stated
    /// alternative). Exposed for ablation.
    pub hilbert_walk_start: bool,
    /// Parallel path (`tfm-exec`) only: let workers perform role
    /// transformations (guide ↔ follower switches, §VI-A) within their
    /// pivot chunks. Exclusivity across workers comes from the shared
    /// claim bitmap when cross-worker pruning is on; without it, two
    /// workers may redundantly process the same switched pivot (duplicates
    /// are removed by the merge). The sequential join ignores this field.
    pub worker_role_transforms: bool,
    /// Parallel path only: share a lock-free covered-node board across
    /// workers so the to-do-list pruning of §V also drops candidates
    /// another worker already covered. The sequential join ignores this
    /// field.
    pub cross_worker_pruning: bool,
}

impl Default for JoinConfig {
    fn default() -> Self {
        Self {
            thresholds: ThresholdPolicy::CostModel,
            first_guide: GuidePick::A,
            walk_patience: 64,
            pool_pages: tfm_storage::DEFAULT_POOL_PAGES,
            mem_grid: GridConfig::default(),
            node_prefilter: true,
            hilbert_walk_start: true,
            worker_role_transforms: true,
            cross_worker_pruning: true,
        }
    }
}

impl JoinConfig {
    /// The "No TR" configuration of Fig. 13 (left).
    pub fn without_transformations() -> Self {
        Self {
            thresholds: ThresholdPolicy::Disabled,
            ..Self::default()
        }
    }

    /// Builder: replaces the threshold policy.
    pub fn with_thresholds(mut self, thresholds: ThresholdPolicy) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Builder: disables role transformations inside parallel workers
    /// (the `--no-transform` escape hatch; layout transformations stay
    /// active, as they are pivot-local).
    pub fn without_worker_transforms(mut self) -> Self {
        self.worker_role_transforms = false;
        self
    }

    /// Builder: disables the shared covered-node board of the parallel
    /// path (the `--no-prune` escape hatch): workers fall back to purely
    /// local to-do-list pruning.
    pub fn without_cross_worker_pruning(mut self) -> Self {
        self.cross_worker_pruning = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_values() {
        assert_eq!(
            ThresholdPolicy::over_fit(),
            ThresholdPolicy::Fixed {
                t_su: 1.5,
                t_so: 1.5
            }
        );
        assert_eq!(
            ThresholdPolicy::under_fit(),
            ThresholdPolicy::Fixed {
                t_su: 1e6,
                t_so: 1e6
            }
        );
        let no_tr = JoinConfig::without_transformations();
        assert_eq!(no_tr.thresholds, ThresholdPolicy::Disabled);
    }

    #[test]
    fn builder_replaces_thresholds() {
        let c = JoinConfig::default().with_thresholds(ThresholdPolicy::over_fit());
        assert_eq!(c.thresholds, ThresholdPolicy::over_fit());
    }
}
