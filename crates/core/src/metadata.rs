//! Serialization of the descriptor tables (space nodes + space units).
//!
//! The paper stores metadata about space units in space descriptors and
//! groups them into space nodes, all page-aligned on disk (§IV). Here the
//! whole descriptor table is serialized into a contiguous run of pages at
//! index-build time and read back (sequentially, charged as I/O) when a
//! join starts — the join then navigates the in-memory tables, and only
//! *element* pages are fetched on demand, which matches the paper's
//! observation that metadata comparisons are cheap while element I/O
//! dominates.

use crate::descriptor::{NodeId, SpaceNode, SpaceUnitDesc, UnitId};
use tfm_geom::{Aabb, Point3};
use tfm_storage::PageId;

/// Serializes the descriptor tables into one byte stream.
pub fn encode(nodes: &[SpaceNode], units: &[SpaceUnitDesc]) -> Vec<u8> {
    use bytes_ext::BufMutExt;
    let mut buf = Vec::new();
    buf.put_u64_le_ext(nodes.len() as u64);
    buf.put_u64_le_ext(units.len() as u64);
    for u in units {
        buf.put_u64_le_ext(u.page.0);
        put_aabb(&mut buf, &u.page_mbb);
        put_aabb(&mut buf, &u.partition_mbb);
        buf.put_u32_le_ext(u.node.0);
        buf.put_u16_le_ext(u.count);
    }
    for n in nodes {
        put_aabb(&mut buf, &n.tile);
        put_aabb(&mut buf, &n.page_mbb);
        buf.put_u32_le_ext(n.first_unit);
        buf.put_u32_le_ext(n.unit_count);
        buf.put_u64_le_ext(n.hilbert);
        buf.put_u32_le_ext(n.neighbors.len() as u32);
        for nb in &n.neighbors {
            buf.put_u32_le_ext(nb.0);
        }
    }
    buf
}

/// Decodes descriptor tables from a byte stream produced by [`encode`].
pub fn decode(mut buf: &[u8]) -> (Vec<SpaceNode>, Vec<SpaceUnitDesc>) {
    use bytes_ext::BufExt;
    let n_nodes = buf.get_u64_le_ext() as usize;
    let n_units = buf.get_u64_le_ext() as usize;
    let mut units = Vec::with_capacity(n_units);
    for i in 0..n_units {
        let page = PageId(buf.get_u64_le_ext());
        let page_mbb = get_aabb(&mut buf);
        let partition_mbb = get_aabb(&mut buf);
        let node = NodeId(buf.get_u32_le_ext());
        let count = buf.get_u16_le_ext();
        units.push(SpaceUnitDesc {
            id: UnitId(i as u32),
            page,
            page_mbb,
            partition_mbb,
            node,
            count,
        });
    }
    let mut nodes = Vec::with_capacity(n_nodes);
    for i in 0..n_nodes {
        let tile = get_aabb(&mut buf);
        let page_mbb = get_aabb(&mut buf);
        let first_unit = buf.get_u32_le_ext();
        let unit_count = buf.get_u32_le_ext();
        let hilbert = buf.get_u64_le_ext();
        let n_nb = buf.get_u32_le_ext() as usize;
        let mut neighbors = Vec::with_capacity(n_nb);
        for _ in 0..n_nb {
            neighbors.push(NodeId(buf.get_u32_le_ext()));
        }
        nodes.push(SpaceNode {
            id: NodeId(i as u32),
            tile,
            page_mbb,
            neighbors,
            first_unit,
            unit_count,
            hilbert,
        });
    }
    (nodes, units)
}

pub(crate) fn put_aabb(buf: &mut Vec<u8>, a: &Aabb) {
    use bytes_ext::BufMutExt;
    // Page MBBs of empty units use the empty box (±inf); encode raw bits.
    buf.put_f64_bits(a.min.x);
    buf.put_f64_bits(a.min.y);
    buf.put_f64_bits(a.min.z);
    buf.put_f64_bits(a.max.x);
    buf.put_f64_bits(a.max.y);
    buf.put_f64_bits(a.max.z);
}

pub(crate) fn get_aabb(buf: &mut &[u8]) -> Aabb {
    use bytes_ext::BufExt;
    let min = Point3::new(buf.get_f64_bits(), buf.get_f64_bits(), buf.get_f64_bits());
    let max = Point3::new(buf.get_f64_bits(), buf.get_f64_bits(), buf.get_f64_bits());
    // Bypass Aabb::new's debug validity assertion: the empty box is legal here.
    Aabb { min, max }
}

/// Minimal little-endian buffer helpers over `Vec<u8>` / `&[u8]`.
pub(crate) mod bytes_ext {
    pub trait BufMutExt {
        fn put_u16_le_ext(&mut self, v: u16);
        fn put_u32_le_ext(&mut self, v: u32);
        fn put_u64_le_ext(&mut self, v: u64);
        fn put_f64_bits(&mut self, v: f64);
    }

    impl BufMutExt for Vec<u8> {
        fn put_u16_le_ext(&mut self, v: u16) {
            self.extend_from_slice(&v.to_le_bytes());
        }
        fn put_u32_le_ext(&mut self, v: u32) {
            self.extend_from_slice(&v.to_le_bytes());
        }
        fn put_u64_le_ext(&mut self, v: u64) {
            self.extend_from_slice(&v.to_le_bytes());
        }
        fn put_f64_bits(&mut self, v: f64) {
            self.extend_from_slice(&v.to_le_bytes());
        }
    }

    pub trait BufExt {
        fn get_u16_le_ext(&mut self) -> u16;
        fn get_u32_le_ext(&mut self) -> u32;
        fn get_u64_le_ext(&mut self) -> u64;
        fn get_f64_bits(&mut self) -> f64;
    }

    impl BufExt for &[u8] {
        fn get_u16_le_ext(&mut self) -> u16 {
            let (head, rest) = self.split_at(2);
            *self = rest;
            u16::from_le_bytes(head.try_into().expect("2 bytes"))
        }
        fn get_u32_le_ext(&mut self) -> u32 {
            let (head, rest) = self.split_at(4);
            *self = rest;
            u32::from_le_bytes(head.try_into().expect("4 bytes"))
        }
        fn get_u64_le_ext(&mut self) -> u64 {
            let (head, rest) = self.split_at(8);
            *self = rest;
            u64::from_le_bytes(head.try_into().expect("8 bytes"))
        }
        fn get_f64_bits(&mut self) -> f64 {
            let (head, rest) = self.split_at(8);
            *self = rest;
            f64::from_le_bytes(head.try_into().expect("8 bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tables() -> (Vec<SpaceNode>, Vec<SpaceUnitDesc>) {
        let units = vec![
            SpaceUnitDesc {
                id: UnitId(0),
                page: PageId(100),
                page_mbb: Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0)),
                partition_mbb: Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(2.0, 2.0, 2.0)),
                node: NodeId(0),
                count: 42,
            },
            SpaceUnitDesc {
                id: UnitId(1),
                page: PageId(101),
                page_mbb: Aabb::new(Point3::new(2.0, 0.0, 0.0), Point3::new(3.0, 1.0, 1.0)),
                partition_mbb: Aabb::new(Point3::new(2.0, 0.0, 0.0), Point3::new(4.0, 2.0, 2.0)),
                node: NodeId(0),
                count: 7,
            },
        ];
        let nodes = vec![SpaceNode {
            id: NodeId(0),
            tile: Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(4.0, 2.0, 2.0)),
            page_mbb: Aabb::new(Point3::new(0.0, 0.0, 0.0), Point3::new(3.0, 1.0, 1.0)),
            neighbors: vec![NodeId(3), NodeId(9)],
            first_unit: 0,
            unit_count: 2,
            hilbert: 0xDEADBEEF,
        }];
        (nodes, units)
    }

    #[test]
    fn roundtrip() {
        let (nodes, units) = sample_tables();
        let bytes = encode(&nodes, &units);
        let (dn, du) = decode(&bytes);
        assert_eq!(dn, nodes);
        assert_eq!(du, units);
    }

    #[test]
    fn roundtrip_empty() {
        let bytes = encode(&[], &[]);
        let (dn, du) = decode(&bytes);
        assert!(dn.is_empty());
        assert!(du.is_empty());
    }

    #[test]
    fn empty_box_survives() {
        let (mut nodes, units) = sample_tables();
        nodes[0].page_mbb = Aabb::empty();
        let bytes = encode(&nodes, &units);
        let (dn, _) = decode(&bytes);
        assert!(dn[0].page_mbb.is_empty());
    }
}
