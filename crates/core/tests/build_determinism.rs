//! Build determinism: the staged, parallel index build must produce a disk
//! image (element pages, B+-tree, metadata region) and descriptor tables
//! **byte-identical** to the sequential build at any worker count, and
//! identical query behaviour on top of them.
//!
//! This is the acceptance gate for the `IndexBuildPipeline`: parallelism
//! may only change wall time, never bytes. Checksumming the whole `Disk`
//! (rather than comparing descriptors alone) catches divergence anywhere —
//! page payloads, page order, B+-tree layout, metadata encoding.

use proptest::prelude::*;
use tfm_datagen::{generate, DatasetSpec, Distribution};
use tfm_geom::{Aabb, Point3, SpatialElement};
use tfm_storage::{Disk, PageId};
use transformers::{IndexConfig, TransformersIndex};

/// FNV-1a over every allocated page, chained with the page count — one
/// fingerprint for the whole disk image.
fn disk_fingerprint(disk: &Disk) -> (u64, u64) {
    let mut hash = 0xcbf29ce484222325u64;
    for p in 0..disk.allocated_pages() {
        for b in disk.read_page_vec(PageId(p)) {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    (disk.allocated_pages(), hash)
}

/// Builds on a fresh disk and returns (fingerprint, index).
fn build(elems: &[SpatialElement], cfg: &IndexConfig) -> ((u64, u64), Disk, TransformersIndex) {
    let disk = Disk::in_memory(2048);
    let idx = TransformersIndex::build(&disk, elems.to_vec(), cfg);
    let fp = disk_fingerprint(&disk);
    (fp, disk, idx)
}

fn assert_identical_builds(elems: &[SpatialElement], base: IndexConfig) {
    let (seq_fp, seq_disk, seq_idx) = build(elems, &base);
    let (seq_nodes, seq_units, _) = seq_idx.load_metadata(&seq_disk);
    for threads in [2, 4] {
        let cfg = base.with_build_threads(threads);
        let (fp, disk, idx) = build(elems, &cfg);
        assert_eq!(fp, seq_fp, "disk image diverged at {threads} build threads");
        assert_eq!(idx.nodes(), seq_idx.nodes(), "threads = {threads}");
        assert_eq!(idx.units(), seq_idx.units(), "threads = {threads}");
        assert_eq!(idx.reach_eps(), seq_idx.reach_eps());
        assert_eq!(idx.extent(), seq_idx.extent());
        // Metadata decodes to the same tables from both disks.
        let (nodes, units, _) = idx.load_metadata(&disk);
        assert_eq!(nodes, seq_nodes);
        assert_eq!(units, seq_units);
        // Identical query results through the B+-tree.
        for probe in [
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(500.0, 500.0, 500.0),
            Point3::new(999.0, 1.0, 750.0),
        ] {
            assert_eq!(
                idx.walk_start(&disk, &probe),
                seq_idx.walk_start(&seq_disk, &probe),
                "threads = {threads}, probe = {probe:?}"
            );
        }
    }
}

#[test]
fn uniform_build_is_deterministic_at_any_worker_count() {
    let elems = generate(&DatasetSpec {
        max_side: 6.0,
        ..DatasetSpec::uniform(12_000, 70)
    });
    assert_identical_builds(&elems, IndexConfig::default());
}

#[test]
fn clustered_build_is_deterministic_at_any_worker_count() {
    // Massive clusters skew the per-slab STR work — the stealing path of
    // the pool actually fires here.
    let elems = generate(&DatasetSpec {
        max_side: 4.0,
        ..DatasetSpec::with_distribution(12_000, Distribution::massive_cluster_for(12_000), 71)
    });
    assert_identical_builds(
        &elems,
        IndexConfig {
            unit_capacity: Some(16),
            node_capacity: Some(8),
            ..IndexConfig::default()
        },
    );
}

#[test]
fn duplicate_coordinates_build_is_deterministic() {
    // All-equal sort keys are the stress case for stable-sort equivalence.
    let elems: Vec<SpatialElement> = (0..5000)
        .map(|i| SpatialElement::new(i, Aabb::from_point(Point3::new((i % 7) as f64, 3.0, 3.0))))
        .collect();
    assert_identical_builds(&elems, IndexConfig::default());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn arbitrary_builds_are_deterministic(
        raw in prop::collection::vec(
            (-50.0..50.0f64, -50.0..50.0f64, -50.0..50.0f64, 0.0..4.0f64),
            1..400,
        ),
        unit_cap in 1usize..24,
        node_cap in 1usize..10,
    ) {
        let elems: Vec<SpatialElement> = raw
            .into_iter()
            .enumerate()
            .map(|(id, (x, y, z, side))| {
                SpatialElement::new(
                    id as u64,
                    Aabb::new(
                        Point3::new(x, y, z),
                        Point3::new(x + side, y + side, z + side),
                    ),
                )
            })
            .collect();
        let base = IndexConfig {
            unit_capacity: Some(unit_cap),
            node_capacity: Some(node_cap),
            ..IndexConfig::default()
        };
        let (seq_fp, _, seq_idx) = build(&elems, &base);
        for threads in [2, 4] {
            let (fp, _, idx) = build(&elems, &base.with_build_threads(threads));
            prop_assert_eq!(fp, seq_fp, "threads = {}", threads);
            prop_assert_eq!(idx.nodes(), seq_idx.nodes());
            prop_assert_eq!(idx.units(), seq_idx.units());
        }
    }
}
