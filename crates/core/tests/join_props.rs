//! Property tests: the TRANSFORMERS join must equal the nested-loop oracle
//! on arbitrary inputs, configurations and index geometries.

use proptest::prelude::*;
use tfm_geom::{Aabb, Point3, SpatialElement};
use tfm_memjoin::{canonicalize, nested_loop_join, JoinStats};
use tfm_storage::Disk;
use transformers::{
    transformers_join, GuidePick, IndexConfig, JoinConfig, ThresholdPolicy, TransformersIndex,
};

fn arb_elems(max: usize, span: f64) -> impl Strategy<Value = Vec<SpatialElement>> {
    prop::collection::vec(
        (
            0.0..span,
            0.0..span,
            0.0..span,
            0.0..10.0f64,
            0.0..10.0f64,
            0.0..10.0f64,
        ),
        0..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(id, (x, y, z, dx, dy, dz))| {
                SpatialElement::new(
                    id as u64,
                    Aabb::new(Point3::new(x, y, z), Point3::new(x + dx, y + dy, z + dz)),
                )
            })
            .collect()
    })
}

fn oracle(a: &[SpatialElement], b: &[SpatialElement]) -> Vec<(u64, u64)> {
    let mut s = JoinStats::default();
    canonicalize(nested_loop_join(a, b, &mut s))
}

fn run(
    a: &[SpatialElement],
    b: &[SpatialElement],
    idx_cfg: &IndexConfig,
    join_cfg: &JoinConfig,
) -> Vec<(u64, u64)> {
    let disk_a = Disk::default_in_memory();
    let disk_b = Disk::default_in_memory();
    let idx_a = TransformersIndex::build(&disk_a, a.to_vec(), idx_cfg);
    let idx_b = TransformersIndex::build(&disk_b, b.to_vec(), idx_cfg);
    transformers_join(&idx_a, &disk_a, &idx_b, &disk_b, join_cfg).pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn join_matches_oracle_random_data(
        a in arb_elems(120, 100.0),
        b in arb_elems(120, 100.0),
        unit_cap in 2usize..20,
        node_cap in 2usize..8,
    ) {
        let idx_cfg = IndexConfig {
            unit_capacity: Some(unit_cap),
            node_capacity: Some(node_cap),
            ..IndexConfig::default()
        };
        let got = run(&a, &b, &idx_cfg, &JoinConfig::default());
        prop_assert_eq!(got, oracle(&a, &b));
    }

    #[test]
    fn join_matches_oracle_all_policies(
        a in arb_elems(80, 60.0),
        b in arb_elems(80, 60.0),
        policy_idx in 0usize..4,
        guide_b in any::<bool>(),
    ) {
        let policy = [
            ThresholdPolicy::CostModel,
            ThresholdPolicy::over_fit(),
            ThresholdPolicy::under_fit(),
            ThresholdPolicy::Disabled,
        ][policy_idx];
        let idx_cfg = IndexConfig { unit_capacity: Some(8), node_capacity: Some(4), ..IndexConfig::default() };
        let join_cfg = JoinConfig {
            thresholds: policy,
            first_guide: if guide_b { GuidePick::B } else { GuidePick::A },
            ..JoinConfig::default()
        };
        let got = run(&a, &b, &idx_cfg, &join_cfg);
        prop_assert_eq!(got, oracle(&a, &b));
    }

    #[test]
    fn join_matches_oracle_disjoint_and_overlapping_regions(
        a in arb_elems(60, 50.0),
        mut b in arb_elems(60, 50.0),
        shift in 0.0..200.0f64,
    ) {
        // Shift B so the datasets range from fully overlapping to disjoint.
        for e in &mut b {
            e.mbb = Aabb::new(
                Point3::new(e.mbb.min.x + shift, e.mbb.min.y, e.mbb.min.z),
                Point3::new(e.mbb.max.x + shift, e.mbb.max.y, e.mbb.max.z),
            );
        }
        let idx_cfg = IndexConfig { unit_capacity: Some(8), node_capacity: Some(4), ..IndexConfig::default() };
        let got = run(&a, &b, &idx_cfg, &JoinConfig::default());
        prop_assert_eq!(got, oracle(&a, &b));
    }

    #[test]
    fn join_with_tiny_walk_patience_is_still_correct(
        a in arb_elems(60, 40.0),
        b in arb_elems(60, 40.0),
        patience in 0usize..4,
    ) {
        // A hopeless patience forces the fallback scan: results must not
        // change, only the exploration cost.
        let idx_cfg = IndexConfig { unit_capacity: Some(4), node_capacity: Some(3), ..IndexConfig::default() };
        let join_cfg = JoinConfig { walk_patience: patience, ..JoinConfig::default() };
        let got = run(&a, &b, &idx_cfg, &join_cfg);
        prop_assert_eq!(got, oracle(&a, &b));
    }
}
