//! Property tests for the shared page cache's pin protocol.
//!
//! The central safety claim of [`tfm_storage::SharedPageCache`] is that a
//! live [`tfm_storage::PageRef`] **never observes a recycled frame**:
//! however hard the cache thrashes, the bytes seen through a pin guard
//! are exactly the pinned page's bytes for the guard's whole lifetime.
//! These tests drive tiny caches (heavy eviction pressure) through
//! randomized access traces with randomized pin lifetimes and check every
//! guard against the ground-truth disk image on every step.

use proptest::prelude::*;
use tfm_storage::{Disk, DiskModel, PageId, SharedPageCache};

/// A disk of `pages` pages whose contents are a function of the page id.
fn stamped_disk(pages: u64, page_size: usize) -> Disk {
    let d = Disk::in_memory(page_size).with_model(DiskModel::free());
    let first = d.allocate_contiguous(pages);
    for i in 0..pages {
        let stamp = [(i & 0xff) as u8, (i >> 8) as u8, 0xA5];
        d.write_page(PageId(first.0 + i), &stamp);
    }
    d.reset_stats();
    d
}

fn expected_bytes(page: u64, page_size: usize) -> Vec<u8> {
    let mut v = vec![0u8; page_size];
    v[0] = (page & 0xff) as u8;
    v[1] = (page >> 8) as u8;
    v[2] = 0xA5;
    v
}

proptest! {
    // Single-threaded trace, tiny cache: hold each guard for a random
    // number of further reads and re-verify it before release.
    #[test]
    fn pin_guards_never_observe_a_recycled_frame(
        accesses in prop::collection::vec((0u64..24, 0usize..6), 1..200),
        capacity in 1usize..4,
        shards in 1usize..3,
    ) {
        let page_size = 64;
        let disk = stamped_disk(24, page_size);
        let cache = SharedPageCache::with_shards(&disk, capacity, shards);
        // (guard, page, reads-left-until-release)
        let mut held: Vec<(tfm_storage::PageRef, u64, usize)> = Vec::new();
        for (page, hold) in accesses {
            let guard = cache.read(PageId(page));
            prop_assert_eq!(&*guard, expected_bytes(page, page_size).as_slice());
            held.push((guard, page, hold));
            // Every held guard must still see its original page.
            for (g, p, _) in &held {
                prop_assert_eq!(&**g, expected_bytes(*p, page_size).as_slice());
            }
            held.retain_mut(|(_, _, left)| {
                if *left == 0 {
                    false
                } else {
                    *left -= 1;
                    true
                }
            });
        }
        // Whatever survived the trace is still intact.
        for (g, p, _) in &held {
            prop_assert_eq!(&**g, expected_bytes(*p, page_size).as_slice());
        }
    }

    // The decoded tier obeys the same rule: an `Arc` handed out earlier
    // never changes, even after its frame is evicted and re-decoded.
    #[test]
    fn decoded_pages_are_immutable_under_pressure(
        accesses in prop::collection::vec(0u64..12, 1..120),
    ) {
        use tfm_geom::{Aabb, Point3, SpatialElement};
        let page_size = 128;
        let codec = tfm_storage::ElementPageCodec::new(page_size);
        let disk = Disk::in_memory(page_size).with_model(DiskModel::free());
        let first = disk.allocate_contiguous(12);
        for i in 0..12u64 {
            let e = SpatialElement::new(
                i,
                Aabb::new(
                    Point3::new(i as f64, 0.0, 0.0),
                    Point3::new(i as f64 + 1.0, 1.0, 1.0),
                ),
            );
            disk.write_page(PageId(first.0 + i), &codec.encode(&[e]));
        }
        let cache = SharedPageCache::with_shards(&disk, 2, 1);
        let mut held: Vec<(std::sync::Arc<[SpatialElement]>, u64)> = Vec::new();
        for page in accesses {
            let decoded = cache.read_decoded(&codec, PageId(page));
            prop_assert_eq!(decoded.len(), 1);
            prop_assert_eq!(decoded[0].id, page);
            if held.len() < 8 {
                held.push((decoded, page));
            }
            for (d, p) in &held {
                prop_assert_eq!(d[0].id, *p);
            }
        }
    }
}

/// Multi-threaded hammering of a tiny cache: every read's bytes must match
/// the disk image while guards are held across further reads.
#[test]
fn concurrent_pins_stay_valid_under_thrash() {
    let page_size = 64;
    let pages = 32u64;
    let disk = stamped_disk(pages, page_size);
    // 4 frames over 2 shards for 8 threads: constant eviction + pinning.
    let cache = SharedPageCache::with_shards(&disk, 4, 2);
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let cache = &cache;
            s.spawn(move || {
                let mut held: Vec<(tfm_storage::PageRef, u64)> = Vec::new();
                for i in 0..400u64 {
                    let page = (i * 13 + t * 7) % pages;
                    let guard = cache.read(PageId(page));
                    assert_eq!(&*guard, expected_bytes(page, page_size).as_slice());
                    held.push((guard, page));
                    if held.len() > 3 {
                        held.remove(0);
                    }
                    for (g, p) in &held {
                        assert_eq!(
                            &**g,
                            expected_bytes(*p, page_size).as_slice(),
                            "pinned page {p} changed under thrash"
                        );
                    }
                }
            });
        }
    });
    let stats = cache.stats();
    assert!(stats.evictions > 0, "the trace must thrash: {stats:?}");
    assert_eq!(stats.misses, disk.stats().reads());
}
