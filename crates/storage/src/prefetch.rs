//! The bounded prefetch queue feeding dedicated I/O threads.
//!
//! The serve tier already computes each batch's probe order along the
//! Hilbert curve; the sorted page list a batch will touch is therefore a
//! ready-made *readahead schedule*. A feeder pushes those page ids here,
//! and `io_depth` dedicated I/O threads pop them and land the pages into
//! [`crate::SharedPageCache`] frames via
//! [`crate::SharedPageCache::prefetch_page`] — keeping a configurable
//! queue depth of reads in flight ahead of the workers.
//!
//! The queue is deliberately *lossy on the push side*: [`try_push`]
//! (the only way in) never blocks and drops ids when the queue is at
//! capacity. Readahead is a hint — a dropped id only means the page will
//! be read on demand — and a blocking push from the batch feeder would
//! stall query admission behind the device. The capacity **is** the
//! readahead window: at most that many scheduled pages wait between the
//! feeder and the I/O threads.
//!
//! [`try_push`]: PrefetchQueue::try_push

use crate::PageId;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct QueueState {
    items: VecDeque<PageId>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer queue of page ids to prefetch.
pub struct PrefetchQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    not_empty: Condvar,
}

impl PrefetchQueue {
    /// Creates a queue holding at most `capacity` pending ids (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// The readahead window (maximum pending ids).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues `id` unless the queue is full or closed; never blocks.
    /// Returns whether the id was accepted.
    pub fn try_push(&self, id: PageId) -> bool {
        let mut s = self.state.lock().expect("prefetch queue poisoned");
        if s.closed || s.items.len() >= self.capacity {
            return false;
        }
        s.items.push_back(id);
        drop(s);
        self.not_empty.notify_one();
        true
    }

    /// Blocks until an id is available or the queue is closed and drained;
    /// `None` means the I/O thread should exit.
    pub fn pop(&self) -> Option<PageId> {
        let mut s = self.state.lock().expect("prefetch queue poisoned");
        loop {
            if let Some(id) = s.items.pop_front() {
                return Some(id);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).expect("prefetch queue poisoned");
        }
    }

    /// Closes the queue: pending ids still drain, then every [`pop`]
    /// returns `None`.
    ///
    /// [`pop`]: PrefetchQueue::pop
    pub fn close(&self) {
        let mut s = self.state.lock().expect("prefetch queue poisoned");
        s.closed = true;
        drop(s);
        self.not_empty.notify_all();
    }

    /// Pending ids (diagnostic).
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("prefetch queue poisoned")
            .items
            .len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for PrefetchQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefetchQueue")
            .field("capacity", &self.capacity)
            .field("pending", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_is_bounded_and_lossy() {
        let q = PrefetchQueue::new(2);
        assert!(q.try_push(PageId(0)));
        assert!(q.try_push(PageId(1)));
        assert!(!q.try_push(PageId(2)), "over capacity drops, not blocks");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(PageId(0)));
        assert!(q.try_push(PageId(3)));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = PrefetchQueue::new(4);
        q.try_push(PageId(7));
        q.close();
        assert!(!q.try_push(PageId(8)), "closed queue refuses pushes");
        assert_eq!(q.pop(), Some(PageId(7)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_see_every_id() {
        let q = PrefetchQueue::new(8);
        let total = 200u64;
        std::thread::scope(|s| {
            let consumed: Vec<_> = (0..2)
                .map(|_| {
                    let q = &q;
                    s.spawn(move || {
                        let mut got = 0u64;
                        while q.pop().is_some() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            let mut pushed = 0u64;
            for i in 0..total {
                // Spin until accepted: producers outpace consumers here.
                while !q.try_push(PageId(i)) {
                    std::thread::yield_now();
                }
                pushed += 1;
            }
            q.close();
            let got: u64 = consumed.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(got, pushed);
        });
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = PrefetchQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(PageId(0)));
        assert!(!q.is_empty());
    }
}
