//! Disk device cost model.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A rotational-disk cost model with distance-dependent seeks.
///
/// Every access pays the page transfer time. A *sequential* access (the
/// page is the successor of the previously accessed page) pays nothing
/// else — the head is already there and the platter keeps streaming. Any
/// other access pays:
///
/// * **rotational latency** — on average half a revolution (≈3 ms at
///   10 kRPM), independent of distance;
/// * **seek time** — interpolated between the track-to-track minimum and
///   the full-stroke maximum by the page distance relative to
///   `seek_span_pages`.
///
/// The defaults are calibrated to the paper's hardware (§VII-A: 300 GB
/// 10 kRPM SAS disks): 3 ms rotational, 0.4–6 ms seek, ≈50 µs to transfer
/// an 8 KiB page at ~160 MB/s.
///
/// The distance dependence matters for reproducing the paper's I/O
/// behaviour: TRANSFORMERS' data-oriented layout keeps candidate pages of
/// one pivot *contiguous or nearby*, while PBSM's partition pages scatter
/// across the whole allocation span — both perform "random" reads, but at
/// very different seek distances.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Average rotational latency paid by every non-sequential access.
    pub rotational: Duration,
    /// Track-to-track (minimum) seek time.
    pub seek_min: Duration,
    /// Full-stroke (maximum) seek time.
    pub seek_max: Duration,
    /// Page distance corresponding to a full-stroke seek.
    pub seek_span_pages: u64,
    /// Cost of transferring one page, paid by every access.
    pub transfer_per_page: Duration,
    /// Fixed per-request overhead (command issue, non-coalesced request)
    /// paid by every non-sequential access. Only truly contiguous reads
    /// stream at full bandwidth (the OS readahead / coalescing case).
    pub request_overhead: Duration,
}

impl DiskModel {
    /// Model of the paper's 10 kRPM SAS disk with 8 KiB pages.
    pub fn sas_10k_rpm() -> Self {
        Self {
            rotational: Duration::from_micros(3000),
            seek_min: Duration::from_micros(400),
            seek_max: Duration::from_micros(6000),
            seek_span_pages: 262_144, // 2 GiB of 8 KiB pages
            transfer_per_page: Duration::from_micros(50),
            request_overhead: Duration::from_micros(300),
        }
    }

    /// A model in which I/O is free. Useful for unit tests that only check
    /// access counts.
    pub fn free() -> Self {
        Self {
            rotational: Duration::ZERO,
            seek_min: Duration::ZERO,
            seek_max: Duration::ZERO,
            seek_span_pages: 1,
            transfer_per_page: Duration::ZERO,
            request_overhead: Duration::ZERO,
        }
    }

    /// Cost of one access `gap` pages away from the head's expected
    /// position. `gap == 0` means sequential (successor page).
    ///
    /// This charges the full repositioning (rotational + seek); use
    /// [`cost_for_jump`](Self::cost_for_jump) when the direction is known —
    /// short *forward* skips are much cheaper.
    #[inline]
    pub fn cost_for_gap(&self, gap: u64) -> Duration {
        self.cost_for_jump(true, gap)
            .max(self.cost_for_jump(false, gap))
    }

    /// Cost of one access `gap` pages before (`forward == false`) or after
    /// (`forward == true`) the head's expected position.
    ///
    /// A short forward skip does not pay rotational latency: the head
    /// simply waits for the target sector to rotate underneath, which takes
    /// about as long as transferring the skipped pages would. The positioning
    /// cost of a forward jump is therefore `min(reposition, skip-through)` —
    /// on rotating media, skipping N nearby pages is no cheaper than reading
    /// them. Backward jumps always pay the full repositioning. Every
    /// non-sequential access additionally pays at least the per-request
    /// overhead.
    #[inline]
    pub fn cost_for_jump(&self, forward: bool, gap: u64) -> Duration {
        if gap == 0 {
            return self.transfer_per_page;
        }
        let frac = (gap as f64 / self.seek_span_pages.max(1) as f64).min(1.0);
        let seek = self.seek_min + (self.seek_max - self.seek_min).mul_f64(frac);
        let reposition = self.rotational + seek;
        let positioning = if forward {
            let skip_through = self
                .transfer_per_page
                .mul_f64(gap.min(self.seek_span_pages) as f64);
            reposition.min(skip_through)
        } else {
            reposition
        };
        positioning.max(self.request_overhead) + self.transfer_per_page
    }

    /// Cost of a sequential access.
    #[inline]
    pub fn sequential_cost(&self) -> Duration {
        self.cost_for_gap(0)
    }

    /// Cost of a typical random access (half-stroke seek).
    #[inline]
    pub fn typical_random_cost(&self) -> Duration {
        self.cost_for_gap(self.seek_span_pages / 2)
    }

    /// Back-compat style helper: sequential or typical-random cost.
    #[inline]
    pub fn access_cost(&self, sequential: bool) -> Duration {
        if sequential {
            self.sequential_cost()
        } else {
            self.typical_random_cost()
        }
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        Self::sas_10k_rpm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_cheapest() {
        let m = DiskModel::default();
        assert!(m.sequential_cost() < m.cost_for_gap(1));
        assert!(m.cost_for_gap(1) < m.cost_for_gap(1_000_000));
        assert_eq!(m.sequential_cost(), m.transfer_per_page);
    }

    #[test]
    fn seek_cost_is_monotone_in_distance() {
        let m = DiskModel::default();
        let mut last = m.cost_for_gap(1);
        for gap in [10, 100, 10_000, 100_000, 262_144, 10_000_000] {
            let c = m.cost_for_gap(gap);
            assert!(c >= last, "gap {gap}");
            last = c;
        }
        // Saturates at full stroke.
        assert_eq!(m.cost_for_gap(262_144), m.cost_for_gap(u64::MAX));
    }

    #[test]
    fn near_seek_much_cheaper_than_far_seek() {
        let m = DiskModel::default();
        let near = m.cost_for_gap(100);
        let far = m.cost_for_gap(262_144);
        assert!(far.as_secs_f64() > 2.0 * near.as_secs_f64());
    }

    #[test]
    fn free_model_is_zero() {
        let m = DiskModel::free();
        assert_eq!(m.cost_for_gap(0), Duration::ZERO);
        assert_eq!(m.cost_for_gap(123_456), Duration::ZERO);
    }

    #[test]
    fn access_cost_helper_matches() {
        let m = DiskModel::default();
        assert_eq!(m.access_cost(true), m.sequential_cost());
        assert_eq!(m.access_cost(false), m.typical_random_cost());
    }
}
