//! Fixed-layout codec for storing spatial elements on pages.
//!
//! A page starts with a `u16` element count followed by fixed 56-byte
//! records (`id: u64 LE`, then the six `f64 LE` MBB coordinates). With the
//! default 8 KiB page this yields a capacity of 146 elements per page —
//! this is exactly the paper's *space unit* payload (§IV: "we pack as many
//! elements into a space unit as can fit on a disk page").

use bytes::{Buf, BufMut};
use tfm_geom::{Aabb, Point3, SpatialElement};

/// Bytes per element record: 8 (id) + 6 × 8 (two corners).
pub const RECORD_SIZE: usize = 56;

/// Bytes of page header: the `u16` element count.
pub const HEADER_SIZE: usize = 2;

/// Encoder/decoder for element pages of a fixed page size.
#[derive(Debug, Clone, Copy)]
pub struct ElementPageCodec {
    page_size: usize,
}

impl ElementPageCodec {
    /// Creates a codec for pages of `page_size` bytes.
    ///
    /// # Panics
    /// Panics if the page cannot hold at least one record.
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size >= HEADER_SIZE + RECORD_SIZE,
            "page size {page_size} too small for one element record"
        );
        Self { page_size }
    }

    /// Maximum number of elements that fit on one page.
    #[inline]
    pub fn capacity(&self) -> usize {
        (self.page_size - HEADER_SIZE) / RECORD_SIZE
    }

    /// Serializes up to [`capacity`](Self::capacity) elements into a page
    /// image of exactly `page_size` bytes.
    ///
    /// # Panics
    /// Panics if more elements are given than fit.
    pub fn encode(&self, elements: &[SpatialElement]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.page_size);
        self.encode_into(elements, &mut buf);
        buf
    }

    /// Serializes a page image directly into `buf` (cleared first, reusing
    /// its capacity — no intermediate allocation, unlike `encode`). The
    /// write counterpart of [`decode_into`](Self::decode_into): the build
    /// pipeline's page-encode stages reuse one buffer across pages.
    ///
    /// # Panics
    /// Panics if more elements are given than fit.
    pub fn encode_into(&self, elements: &[SpatialElement], buf: &mut Vec<u8>) {
        assert!(
            elements.len() <= self.capacity(),
            "{} elements exceed page capacity {}",
            elements.len(),
            self.capacity()
        );
        buf.clear();
        buf.reserve(self.page_size);
        buf.put_u16_le(elements.len() as u16);
        for e in elements {
            buf.put_u64_le(e.id);
            buf.put_f64_le(e.mbb.min.x);
            buf.put_f64_le(e.mbb.min.y);
            buf.put_f64_le(e.mbb.min.z);
            buf.put_f64_le(e.mbb.max.x);
            buf.put_f64_le(e.mbb.max.y);
            buf.put_f64_le(e.mbb.max.z);
        }
        buf.resize(self.page_size, 0);
    }

    /// Deserializes the elements stored in a page image.
    ///
    /// # Panics
    /// Panics if the page is shorter than its declared payload.
    pub fn decode(&self, page: &[u8]) -> Vec<SpatialElement> {
        let mut out = Vec::new();
        self.decode_into(page, &mut out);
        out
    }

    /// Decodes a page directly into `out` (reusing its capacity — no
    /// intermediate allocation, unlike `decode`).
    pub fn decode_into(&self, page: &[u8], out: &mut Vec<SpatialElement>) {
        let mut buf = page;
        let count = buf.get_u16_le() as usize;
        assert!(
            page.len() >= HEADER_SIZE + count * RECORD_SIZE,
            "corrupt element page: count {count} does not fit {} bytes",
            page.len()
        );
        out.clear();
        out.reserve(count);
        for _ in 0..count {
            let id = buf.get_u64_le();
            let min = Point3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
            let max = Point3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
            out.push(SpatialElement::new(id, Aabb::new(min, max)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_PAGE_SIZE;

    fn elem(id: u64, lo: f64) -> SpatialElement {
        SpatialElement::new(
            id,
            Aabb::new(
                Point3::new(lo, lo + 1.0, lo + 2.0),
                Point3::new(lo + 3.0, lo + 4.0, lo + 5.0),
            ),
        )
    }

    #[test]
    fn default_page_capacity_matches_paper_math() {
        let c = ElementPageCodec::new(DEFAULT_PAGE_SIZE);
        assert_eq!(c.capacity(), (8192 - 2) / 56); // 146
    }

    #[test]
    fn roundtrip_full_page() {
        let c = ElementPageCodec::new(DEFAULT_PAGE_SIZE);
        let elems: Vec<_> = (0..c.capacity() as u64)
            .map(|i| elem(i, i as f64))
            .collect();
        let page = c.encode(&elems);
        assert_eq!(page.len(), DEFAULT_PAGE_SIZE);
        assert_eq!(c.decode(&page), elems);
    }

    #[test]
    fn roundtrip_empty_and_partial() {
        let c = ElementPageCodec::new(512);
        assert_eq!(c.decode(&c.encode(&[])), vec![]);
        let elems = vec![elem(7, 0.5), elem(9, -3.25)];
        assert_eq!(c.decode(&c.encode(&elems)), elems);
    }

    #[test]
    #[should_panic(expected = "exceed page capacity")]
    fn overfull_page_panics() {
        let c = ElementPageCodec::new(HEADER_SIZE + RECORD_SIZE); // capacity 1
        let elems = vec![elem(0, 0.0), elem(1, 1.0)];
        c.encode(&elems);
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_encode() {
        let c = ElementPageCodec::new(512);
        let elems = vec![elem(7, 0.5), elem(9, -3.25)];
        let mut buf = Vec::new();
        c.encode_into(&elems, &mut buf);
        assert_eq!(buf, c.encode(&elems));
        // Reuse with different (and empty) content: cleared each time.
        c.encode_into(&[elem(1, 1.0)], &mut buf);
        assert_eq!(buf, c.encode(&[elem(1, 1.0)]));
        c.encode_into(&[], &mut buf);
        assert_eq!(buf, c.encode(&[]));
        assert_eq!(buf.len(), 512);
    }

    #[test]
    fn decode_into_reuses_buffer() {
        let c = ElementPageCodec::new(512);
        let page = c.encode(&[elem(1, 1.0)]);
        let mut buf = Vec::with_capacity(10);
        c.decode_into(&page, &mut buf);
        assert_eq!(buf.len(), 1);
        c.decode_into(&c.encode(&[]), &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn negative_and_fractional_coords_survive() {
        let c = ElementPageCodec::new(512);
        let e = SpatialElement::new(
            u64::MAX,
            Aabb::new(
                Point3::new(-1e9, -0.001, 1e-12),
                Point3::new(-1e8, 0.001, 2e-12),
            ),
        );
        assert_eq!(c.decode(&c.encode(&[e])), vec![e]);
    }
}
