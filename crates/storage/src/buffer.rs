//! A small LRU buffer pool.
//!
//! The paper's experiments run with cold *OS* caches (§VII-A) but every
//! join implementation still owns an in-process buffer: the synchronized
//! R-Tree revisits nodes, TRANSFORMERS' crawl can touch a follower page
//! from several pivots, and PBSM streams partitions. To keep the comparison
//! fair, every approach in this reproduction reads data pages through a
//! [`BufferPool`] of the same default capacity; only pool *misses* reach
//! the [`Disk`] and are charged I/O.

use crate::{Disk, PageId};
use std::collections::{BTreeMap, HashMap};

/// Default pool capacity in pages: 1024 × 8 KiB = 8 MiB.
pub const DEFAULT_POOL_PAGES: usize = 1024;

/// A least-recently-used page cache in front of a [`Disk`].
pub struct BufferPool<'d> {
    disk: &'d Disk,
    capacity: usize,
    /// page -> (lru stamp, data)
    pages: HashMap<PageId, (u64, Vec<u8>)>,
    /// stamp -> page (inverse index for O(log n) eviction)
    lru: BTreeMap<u64, PageId>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl<'d> BufferPool<'d> {
    /// Creates a pool of `capacity` pages over `disk`.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(disk: &'d Disk, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one page");
        Self {
            disk,
            capacity,
            pages: HashMap::with_capacity(capacity),
            lru: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Creates a pool with the default capacity.
    pub fn with_default_capacity(disk: &'d Disk) -> Self {
        Self::new(disk, DEFAULT_POOL_PAGES)
    }

    /// The underlying disk.
    pub fn disk(&self) -> &'d Disk {
        self.disk
    }

    /// Reads a page, from cache if possible. Returns a reference valid
    /// until the next call that can evict.
    pub fn read(&mut self, id: PageId) -> &[u8] {
        self.clock += 1;
        let stamp = self.clock;
        if let Some((old, _)) = self.pages.get_mut(&id) {
            self.hits += 1;
            let old_stamp = *old;
            *old = stamp;
            self.lru.remove(&old_stamp);
            self.lru.insert(stamp, id);
        } else {
            self.misses += 1;
            if self.pages.len() >= self.capacity {
                // Evict the least recently used page.
                let (_, victim) = self.lru.pop_first().expect("pool non-empty at capacity");
                self.pages.remove(&victim);
            }
            let data = self.disk.read_page_vec(id);
            self.pages.insert(id, (stamp, data));
            self.lru.insert(stamp, id);
        }
        &self.pages.get(&id).expect("just inserted").1
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (disk reads) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops all cached pages (does not reset hit/miss counters).
    pub fn clear(&mut self) {
        self.pages.clear();
        self.lru.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskModel;

    fn disk_with_pages(n: u64, page_size: usize) -> Disk {
        let d = Disk::in_memory(page_size).with_model(DiskModel::free());
        let first = d.allocate_contiguous(n);
        for i in 0..n {
            d.write_page(PageId(first.0 + i), &[i as u8]);
        }
        d.reset_stats();
        d
    }

    #[test]
    fn hit_avoids_disk() {
        let d = disk_with_pages(4, 16);
        let mut pool = BufferPool::new(&d, 2);
        assert_eq!(pool.read(PageId(0))[0], 0);
        assert_eq!(pool.read(PageId(0))[0], 0);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
        assert_eq!(d.stats().reads(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let d = disk_with_pages(3, 16);
        let mut pool = BufferPool::new(&d, 2);
        pool.read(PageId(0));
        pool.read(PageId(1));
        pool.read(PageId(0)); // refresh 0; LRU is now 1
        pool.read(PageId(2)); // evicts 1
        assert_eq!(d.stats().reads(), 3);
        pool.read(PageId(0)); // still cached
        assert_eq!(d.stats().reads(), 3);
        pool.read(PageId(1)); // was evicted -> miss
        assert_eq!(d.stats().reads(), 4);
    }

    #[test]
    fn clear_forces_reread() {
        let d = disk_with_pages(1, 16);
        let mut pool = BufferPool::new(&d, 4);
        pool.read(PageId(0));
        pool.clear();
        pool.read(PageId(0));
        assert_eq!(d.stats().reads(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_panics() {
        let d = disk_with_pages(1, 16);
        let _ = BufferPool::new(&d, 0);
    }

    #[test]
    fn capacity_one_thrashes_correctly() {
        let d = disk_with_pages(2, 16);
        let mut pool = BufferPool::new(&d, 1);
        assert_eq!(pool.read(PageId(0))[0], 0);
        assert_eq!(pool.read(PageId(1))[0], 1);
        assert_eq!(pool.read(PageId(0))[0], 0);
        assert_eq!(d.stats().reads(), 3);
    }
}
