//! A small private page cache with CLOCK (second-chance) replacement.
//!
//! The paper's experiments run with cold *OS* caches (§VII-A) but every
//! join implementation still owns an in-process buffer: the synchronized
//! R-Tree revisits nodes, TRANSFORMERS' crawl can touch a follower page
//! from several pivots, and PBSM streams partitions. To keep the comparison
//! fair, every approach in this reproduction reads data pages through a
//! [`BufferPool`] of the same default capacity; only pool *misses* reach
//! the [`Disk`] and are charged I/O.
//!
//! The pool runs on the same [`crate::clock`] CLOCK ring as the shards of
//! the process-wide [`crate::SharedPageCache`]: a hit costs one hash
//! lookup and one reference-bit store (the previous LRU paid two
//! `BTreeMap` updates per read), and a miss recycles the victim frame's
//! buffer in place instead of allocating a fresh `Vec` per page.

use crate::clock::ClockRing;
use crate::{Disk, PageId};

/// Default pool capacity in pages: 1024 × 8 KiB = 8 MiB.
pub const DEFAULT_POOL_PAGES: usize = 1024;

/// A private CLOCK page cache in front of a [`Disk`].
///
/// For a cache *shared* by concurrent readers use
/// [`crate::SharedPageCache`]; this type is `&mut self` and belongs to one
/// owner (a join side, a serve session, a baseline's read loop).
pub struct BufferPool<'d> {
    disk: &'d Disk,
    ring: ClockRing<Vec<u8>>,
    hits: u64,
    misses: u64,
}

impl<'d> BufferPool<'d> {
    /// Creates a pool of `capacity` pages over `disk`.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(disk: &'d Disk, capacity: usize) -> Self {
        Self {
            disk,
            ring: ClockRing::new(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Creates a pool with the default capacity.
    pub fn with_default_capacity(disk: &'d Disk) -> Self {
        Self::new(disk, DEFAULT_POOL_PAGES)
    }

    /// The underlying disk.
    pub fn disk(&self) -> &'d Disk {
        self.disk
    }

    /// Reads a page, from cache if possible. Returns a reference valid
    /// until the next call that can evict.
    pub fn read(&mut self, id: PageId) -> &[u8] {
        if let Some(i) = self.ring.find(id.0) {
            self.hits += 1;
            return self.ring.payload_mut(i);
        }
        self.misses += 1;
        let page_size = self.disk.page_size();
        // The victim's buffer is recycled in place; only a growing pool
        // (or an all-pinned ring, impossible here) allocates.
        let slot = self.ring.insert(id.0, |_| true, || vec![0u8; page_size]);
        self.disk.read_page(id, slot.payload);
        slot.payload
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (disk reads) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops all cached pages (does not reset hit/miss counters).
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskModel;

    fn disk_with_pages(n: u64, page_size: usize) -> Disk {
        let d = Disk::in_memory(page_size).with_model(DiskModel::free());
        let first = d.allocate_contiguous(n);
        for i in 0..n {
            d.write_page(PageId(first.0 + i), &[i as u8]);
        }
        d.reset_stats();
        d
    }

    #[test]
    fn hit_avoids_disk() {
        let d = disk_with_pages(4, 16);
        let mut pool = BufferPool::new(&d, 2);
        assert_eq!(pool.read(PageId(0))[0], 0);
        assert_eq!(pool.read(PageId(0))[0], 0);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
        assert_eq!(d.stats().reads(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let d = disk_with_pages(3, 16);
        let mut pool = BufferPool::new(&d, 2);
        pool.read(PageId(0));
        pool.read(PageId(1));
        pool.read(PageId(0)); // refresh 0; second-chance victim is now 1
        pool.read(PageId(2)); // evicts 1
        assert_eq!(d.stats().reads(), 3);
        pool.read(PageId(0)); // still cached
        assert_eq!(d.stats().reads(), 3);
        pool.read(PageId(1)); // was evicted -> miss
        assert_eq!(d.stats().reads(), 4);
    }

    #[test]
    fn clear_forces_reread() {
        let d = disk_with_pages(1, 16);
        let mut pool = BufferPool::new(&d, 4);
        pool.read(PageId(0));
        pool.clear();
        pool.read(PageId(0));
        assert_eq!(d.stats().reads(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_panics() {
        let d = disk_with_pages(1, 16);
        let _ = BufferPool::new(&d, 0);
    }

    #[test]
    fn capacity_one_thrashes_correctly() {
        let d = disk_with_pages(2, 16);
        let mut pool = BufferPool::new(&d, 1);
        assert_eq!(pool.read(PageId(0))[0], 0);
        assert_eq!(pool.read(PageId(1))[0], 1);
        assert_eq!(pool.read(PageId(0))[0], 0);
        assert_eq!(d.stats().reads(), 3);
    }

    #[test]
    fn recycled_frames_return_fresh_bytes() {
        // Thrash a capacity-1 pool across distinct pages: every miss
        // recycles the same buffer, which must always end up holding the
        // newly requested page's bytes.
        let d = disk_with_pages(8, 16);
        let mut pool = BufferPool::new(&d, 1);
        for round in 0..3 {
            for i in 0..8u64 {
                assert_eq!(pool.read(PageId(i))[0], i as u8, "round {round}");
            }
        }
        assert_eq!(pool.hits(), 0);
        assert_eq!(pool.misses(), 24);
    }
}
